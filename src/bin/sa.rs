//! `sa` — an interactive approximate-query shell over TPC-H-style data.
//!
//! The tool the paper envisions: type a `TABLESAMPLE` aggregate query, get an
//! unbiased estimate with confidence intervals (and, with `GROUP BY`,
//! per-group intervals). Commands:
//!
//! ```text
//! sa --tpch 0.01 [--seed 42]            # start with generated data
//! sa --tpch 1.0 --persist ./tpch1       # generate once, write .sac files
//! sa --data ./tpch1 --query "SELECT …"  # reopen memory-mapped (out of core)
//! sa --tpch 0.01 --query "SELECT …"     # one-shot, non-interactive
//! sa --online --query "SELECT … WITHIN 5 PERCENT CONFIDENCE 95"
//!                                       # one-shot online aggregation
//! sa --connect HOST:PORT --query "…"    # run against a remote sa-server
//! sa --connect HOST:PORT --stats        # dump a remote server's metrics
//! sa --tpch 0.01 --online --query "…" --stats-json out.json
//!                                       # write engine metrics as JSON on exit
//! ```
//!
//! `--seed` seeds both the data generator and the sampling operators, so a
//! given invocation is fully reproducible. `--chunk N` sets the online
//! chunk size; `--jobs N` drives the online loop with N shard-parallel
//! worker threads (merged per snapshot; `--jobs 1`, the default, is the
//! classic deterministic single-threaded loop).
//!
//! `--connect ADDR` turns the binary into a thin client for `sa-server`:
//! the query is sent over the line protocol, progress (`SNAP`/`GROUP`) and
//! final (`FINAL`) lines are relayed to stdout, and the process exits 0 on
//! `DONE` and 1 on `ERR`.
//!
//! Inside the shell:
//!
//! ```text
//! SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT);
//! \online SELECT …      progressive estimation with live snapshots
//!                       (add WITHIN ε PERCENT CONFIDENCE γ to stop early)
//! \exact SELECT …       run without sampling (ground truth)
//! \trace SELECT …       show the SOA rewrite trace and top GUS table
//! \tables               list tables
//! \seed N               set the sampling seed
//! \chunk N              set the online chunk size (rows)
//! \jobs N               set the online worker count (1 = sequential)
//! \adaptive on|off      grow online chunks as the estimate stabilizes
//! \shuffle on|off       visit blocks in a seeded random order (restores
//!                       the random-scan-order assumption on sorted data)
//! \subsample N          estimate variance from ~N tuples (§7); 0 = off
//! \stats                dump engine metrics (Prometheus text format)
//! \quit
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

#[allow(deprecated)]
use sampling_algebra::exec::approx_group_query;
use sampling_algebra::exec::{exact_group_query, GroupedApproxResult};
use sampling_algebra::prelude::*;
use sampling_algebra::sql::plan_grouped_sql;

/// Shell state: the engine plus the knobs the `\…` commands adjust.
struct Shell {
    engine: Engine,
    seed: u64,
    subsample: Option<u64>,
    confidence: f64,
    chunk_rows: usize,
    jobs: usize,
    adaptive_chunks: bool,
    shuffle_scan: bool,
    deadline: Option<std::time::Duration>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.005f64;
    let mut seed = 42u64;
    let mut chunk_rows = 1024usize;
    let mut jobs = 1usize;
    let mut adaptive_chunks = false;
    let mut shuffle_scan = false;
    let mut online = false;
    let mut one_shot: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut persist_dir: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut stats = false;
    let mut stats_json: Option<String> = None;
    let mut deadline: Option<std::time::Duration> = None;
    let mut fault_spec: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tpch" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--tpch needs a scale factor"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--chunk" => {
                chunk_rows = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| die("--chunk needs a positive row count"));
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| die("--jobs needs a positive worker count"));
            }
            "--adaptive-chunks" => adaptive_chunks = true,
            "--shuffle-scan" => shuffle_scan = true,
            "--online" => online = true,
            "--query" => {
                one_shot = Some(
                    it.next()
                        .unwrap_or_else(|| die("--query needs SQL"))
                        .clone(),
                );
            }
            "--connect" => {
                connect = Some(
                    it.next()
                        .unwrap_or_else(|| die("--connect needs HOST:PORT"))
                        .clone(),
                );
            }
            "--persist" => {
                persist_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--persist needs a directory"))
                        .clone(),
                );
            }
            "--data" => {
                data_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--data needs a directory"))
                        .clone(),
                );
            }
            "--deadline" => {
                deadline = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .map(std::time::Duration::from_millis)
                        .unwrap_or_else(|| die("--deadline needs milliseconds")),
                );
            }
            "--fault" => {
                fault_spec = Some(
                    it.next()
                        .unwrap_or_else(|| die("--fault needs `site=spec,…`"))
                        .clone(),
                );
            }
            "--stats" => stats = true,
            "--stats-json" => {
                stats_json = Some(
                    it.next()
                        .unwrap_or_else(|| die("--stats-json needs a file path"))
                        .clone(),
                );
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: sa [--tpch SCALE | --data DIR] [--persist DIR] [--seed N] \
                     [--chunk N] [--jobs N] [--adaptive-chunks] [--shuffle-scan] [--online] \
                     [--deadline MS] [--fault SPEC] [--connect HOST:PORT] [--query SQL] \
                     [--stats] [--stats-json PATH]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }

    if let Some(spec) = &fault_spec {
        sampling_algebra::fault::install(spec, seed)
            .unwrap_or_else(|e| die(&format!("bad --fault: {e}")));
        eprintln!("fault injection armed: {spec} (seed {seed})");
    }

    if let Some(addr) = connect {
        if stats {
            run_stats_client(&addr);
        }
        let sql = one_shot.unwrap_or_else(|| die("--connect needs --query SQL"));
        run_client(&addr, seed, shuffle_scan, deadline, &sql);
    }

    let catalog = match &data_dir {
        Some(dir) => {
            eprintln!("opening mapped catalog from {dir} …");
            sampling_algebra::storage::open_catalog_dir(std::path::Path::new(dir))
                .unwrap_or_else(|e| die(&format!("cannot open --data {dir}: {e}")))
        }
        None => {
            eprintln!("generating TPC-H data at scale {scale} (seed {seed}) …");
            generate(&TpchConfig::scale(scale).with_seed(seed))
        }
    };
    if let Some(dir) = &persist_dir {
        let written =
            sampling_algebra::storage::persist_catalog(&catalog, std::path::Path::new(dir))
                .unwrap_or_else(|e| die(&format!("cannot persist to {dir}: {e}")));
        for (name, bytes) in &written {
            eprintln!("wrote {dir}/{name}.sac ({bytes} bytes)");
        }
        if one_shot.is_none() {
            // Persist-only invocation: the data is on disk, nothing to run.
            return;
        }
    }
    // The same seed drives the sampling operators: one `--seed` makes the
    // whole run — data, samples, online loop — reproducible. Metrics are
    // always on in the shell so `\stats` / `--stats-json` have data.
    let mut shell = Shell {
        engine: Engine::builder(catalog).metrics(true).build(),
        seed,
        subsample: None,
        confidence: 0.95,
        chunk_rows,
        jobs,
        adaptive_chunks,
        shuffle_scan,
        deadline,
    };

    if let Some(sql) = one_shot {
        if online {
            run_online_mode(&mut shell, &sql);
        } else {
            run_line(&mut shell, &sql);
        }
        write_stats_json(&shell, stats_json.as_deref());
        return;
    }
    if online {
        die("--online needs --query SQL (or use \\online inside the shell)");
    }

    eprintln!("sa — sampling-algebra shell. \\quit to exit, \\tables for tables.");
    let stdin = std::io::stdin();
    loop {
        eprint!("sa> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        run_line(&mut shell, line);
    }
    write_stats_json(&shell, stats_json.as_deref());
}

/// Dump the engine's metrics snapshot as JSON to `path` (no-op without one).
fn write_stats_json(shell: &Shell, path: Option<&str>) {
    let Some(path) = path else { return };
    match std::fs::write(path, shell.engine.metrics().to_json()) {
        Ok(()) => eprintln!("wrote engine metrics to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Thin client for `sa-server`: send `SEED` (plus `SHUFFLE on` /
/// `DEADLINE` when asked) then `QUERY`, relay response lines to stdout
/// until the terminator, exit 0 on `DONE` / 1 on `ERR`.
fn run_client(
    addr: &str,
    seed: u64,
    shuffle: bool,
    deadline: Option<std::time::Duration>,
    sql: &str,
) -> ! {
    let stream =
        TcpStream::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect {addr}: {e}")));
    let mut tx = stream
        .try_clone()
        .unwrap_or_else(|e| die(&format!("cannot clone socket: {e}")));
    let sql = sql.replace('\n', " ");
    writeln!(tx, "SEED {seed}")
        .and_then(|_| {
            if shuffle {
                writeln!(tx, "SHUFFLE on")
            } else {
                Ok(())
            }
        })
        .and_then(|_| match deadline {
            Some(d) => writeln!(tx, "DEADLINE {}", d.as_millis()),
            None => Ok(()),
        })
        .and_then(|_| writeln!(tx, "QUERY {sql}"))
        .unwrap_or_else(|e| {
            die(&format!("cannot send query: {e}"));
        });
    let _ = tx.flush();
    let mut failed = false;
    for line in BufReader::new(stream).lines() {
        let line = line.unwrap_or_else(|e| die(&format!("connection lost: {e}")));
        match line.as_str() {
            "OK" => continue, // SEED acknowledgement
            "DONE" => std::process::exit(if failed { 1 } else { 0 }),
            other => {
                println!("{other}");
                if other.starts_with("ERR ") {
                    failed = true;
                }
            }
        }
    }
    die("server closed the connection before DONE");
}

/// Thin client for the `STATS` request: relay the Prometheus dump to stdout.
fn run_stats_client(addr: &str) -> ! {
    let stream =
        TcpStream::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect {addr}: {e}")));
    let mut tx = stream
        .try_clone()
        .unwrap_or_else(|e| die(&format!("cannot clone socket: {e}")));
    writeln!(tx, "STATS").unwrap_or_else(|e| die(&format!("cannot send request: {e}")));
    let _ = tx.flush();
    for line in BufReader::new(stream).lines() {
        let line = line.unwrap_or_else(|e| die(&format!("connection lost: {e}")));
        if line == "DONE" {
            std::process::exit(0);
        }
        if let Some(msg) = line.strip_prefix("ERR ") {
            // A server without STATS support replies ERR with no DONE.
            die(&format!("server rejected STATS: {msg}"));
        }
        println!("{line}");
    }
    die("server closed the connection before DONE");
}

fn run_line(shell: &mut Shell, line: &str) {
    if let Some(rest) = line.strip_prefix('\\') {
        let (cmd, arg) = rest.split_once(' ').unwrap_or((rest, ""));
        match cmd {
            "tables" => {
                for (name, table) in shell.engine.catalog().iter() {
                    println!(
                        "{name:<12} {:>10} rows   {}",
                        table.row_count(),
                        table.schema()
                    );
                }
            }
            "seed" => match arg.trim().parse() {
                Ok(s) => {
                    shell.seed = s;
                    println!("seed = {s}");
                }
                Err(_) => println!("\\seed needs a number"),
            },
            "subsample" => match arg.trim().parse::<u64>() {
                Ok(0) => {
                    shell.subsample = None;
                    println!("sub-sampling off");
                }
                Ok(n) => {
                    shell.subsample = Some(n);
                    println!("variance from ~{n} tuples (§7)");
                }
                Err(_) => println!("\\subsample needs a number (0 = off)"),
            },
            "chunk" => match arg.trim().parse::<usize>() {
                Ok(n) if n > 0 => {
                    shell.chunk_rows = n;
                    println!("chunk = {n} rows");
                }
                _ => println!("\\chunk needs a positive row count"),
            },
            "jobs" => match arg.trim().parse::<usize>() {
                Ok(n) if n > 0 => {
                    shell.jobs = n;
                    println!("jobs = {n} worker{}", if n == 1 { "" } else { "s" });
                }
                _ => println!("\\jobs needs a positive worker count"),
            },
            "adaptive" => match arg.trim() {
                "on" => {
                    shell.adaptive_chunks = true;
                    println!("adaptive chunks on (grow up to 64× once the CI stalls)");
                }
                "off" => {
                    shell.adaptive_chunks = false;
                    println!("adaptive chunks off");
                }
                _ => println!("\\adaptive needs `on` or `off`"),
            },
            "shuffle" => match arg.trim() {
                "on" => {
                    shell.shuffle_scan = true;
                    println!("shuffled scan on (seeded random block order)");
                }
                "off" => {
                    shell.shuffle_scan = false;
                    println!("shuffled scan off (physical block order)");
                }
                _ => println!("\\shuffle needs `on` or `off`"),
            },
            "online" => run_online_mode(shell, arg),
            "exact" => run_exact(shell, arg),
            "trace" => run_trace(shell, arg),
            "stats" => print!("{}", shell.engine.render_prometheus()),
            _ => println!("unknown command \\{cmd}"),
        }
        return;
    }
    run_estimate(shell, line);
}

// The batch path stays on the low-level exec entry points: the `\subsample`
// knob (§7 sub-sampled variance) is exec-layer plumbing the Engine API does
// not surface.
#[allow(deprecated)]
fn run_estimate(shell: &mut Shell, sql: &str) {
    let (plan, group_by) = match plan_grouped_sql(sql, shell.engine.catalog()) {
        Ok(p) => p,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    let opts = ApproxOptions {
        seed: shell.seed,
        confidence: shell.confidence,
        subsample_target: shell.subsample,
    };
    if group_by.is_empty() {
        match approx_query(&plan, shell.engine.catalog(), &opts) {
            Ok(r) => print_scalar(&r),
            Err(e) => println!("error: {e}"),
        }
    } else {
        match approx_group_query(&plan, &group_by, shell.engine.catalog(), &opts) {
            Ok(r) => print_grouped(&r),
            Err(e) => println!("error: {e}"),
        }
    }
    shell.seed = shell.seed.wrapping_add(1); // fresh sample next time
}

fn print_scalar(r: &ApproxResult) {
    println!(
        "{:<16} {:>16} {:>14} {:>34}",
        "aggregate", "estimate", "std err", "95% normal CI"
    );
    for a in &r.aggs {
        let (se, ci) = match (&a.variance, &a.ci_normal) {
            (Some(v), Some(ci)) => (format!("{:.4}", v.sqrt()), format!("{ci}")),
            _ => ("—".into(), "(not estimable)".into()),
        };
        let mut row = format!("{:<16} {:>16.4} {:>14} {:>34}", a.name, a.estimate, se, ci);
        if let Some(q) = a.quantile_bound {
            row.push_str(&format!("   quantile bound: {q:.4}"));
        }
        println!("{row}");
    }
    println!(
        "({} result tuples; variance from {}; top GUS a = {:.4e})",
        r.result_rows,
        r.variance_rows,
        r.analysis.gus.a()
    );
}

fn print_grouped(r: &GroupedApproxResult) {
    println!(
        "{:<24} {:<12} {:>16} {:>34} {:>8}",
        r.group_exprs.join(", "),
        "aggregate",
        "estimate",
        "95% normal CI",
        "tuples"
    );
    for g in &r.groups {
        let key: Vec<String> = g.key.iter().map(|v| v.to_string()).collect();
        for a in &g.aggs {
            let ci = a
                .ci_normal
                .as_ref()
                .map(|ci| format!("{ci}"))
                .unwrap_or_else(|| "(not estimable)".into());
            println!(
                "{:<24} {:<12} {:>16.4} {:>34} {:>8}",
                key.join(","),
                a.name,
                a.estimate,
                ci,
                g.sample_rows
            );
        }
    }
    println!(
        "({} observed groups, {} result tuples)",
        r.groups.len(),
        r.result_rows
    );
}

/// Progressive estimation through the engine: print one line (scalar) or one
/// table (grouped) per snapshot, then the final estimates and why the query
/// stopped. A `WITHIN … CONFIDENCE …` clause in the SQL sets the stopping
/// rule; scalar vs. grouped is decided by `GROUP BY`.
fn run_online_mode(shell: &mut Shell, sql: &str) {
    let mut builder = shell
        .engine
        .session()
        .query(sql)
        .seed(shell.seed)
        .chunk_rows(shell.chunk_rows)
        .confidence(shell.confidence)
        .jobs(shell.jobs)
        .adaptive_chunks(shell.adaptive_chunks)
        .shuffle_scan(shell.shuffle_scan);
    if let Some(d) = shell.deadline {
        builder = builder.deadline(d);
    }
    let result = builder.run_with({
        let mut header = false;
        move |snap| match &snap {
            Snapshot::Scalar(s) => {
                if !header {
                    header = true;
                    println!(
                        "{:>10} {:>9} {:>16} {:>14} {:>8} {:>9}",
                        "rows", "scanned", "estimate", "±half-width", "rel", "elapsed"
                    );
                }
                print_snapshot_line(s);
            }
            Snapshot::Grouped(s) => print_grouped_snapshot(s),
        }
    });
    match result {
        Ok(r) => print_online_summary(&r),
        Err(e) => println!("error: {e}"),
    }
    shell.seed = shell.seed.wrapping_add(1); // fresh sample next time
}

/// Smallest per-relation scan fraction — the pessimistic "scanned" column.
fn min_scan_fraction(progress: &[(u64, u64)]) -> f64 {
    progress
        .iter()
        .map(|(c, n)| if *n == 0 { 1.0 } else { *c as f64 / *n as f64 })
        .fold(1.0f64, f64::min)
}

fn print_snapshot_line(s: &ProgressSnapshot) {
    // Lead aggregate drives the live line; the summary prints all of them.
    let a = &s.aggs[0];
    let (half, rel) = match &a.ci_normal {
        Some(ci) => (
            format!("{:.2}", ci.width() / 2.0),
            format!("{:.2}%", ci.relative_half_width() * 100.0),
        ),
        None => ("—".into(), "—".into()),
    };
    println!(
        "{:>10} {:>8.1}% {:>16.4} {:>14} {:>8} {:>7}ms",
        s.rows,
        min_scan_fraction(&s.progress) * 100.0,
        a.estimate,
        half,
        rel,
        s.elapsed.as_millis()
    );
}

/// One compact table per grouped snapshot: a chunk header line, then one
/// line per (group, aggregate). Deterministic for a fixed seed — no wall
/// times — so seeded runs are byte-reproducible.
fn print_grouped_snapshot(s: &GroupedProgressSnapshot) {
    let worst = s
        .rel_half_width
        .map(|r| format!("{:.2}%", r * 100.0))
        .unwrap_or_else(|| "—".into());
    println!(
        "[chunk {:>4}] {:>9} rows {:>6.1}% scanned {:>3} groups (+{} new) worst rel {}",
        s.chunk,
        s.rows,
        min_scan_fraction(&s.progress) * 100.0,
        s.groups.len(),
        s.new_groups,
        worst
    );
    for g in &s.groups {
        let key: Vec<String> = g.key.iter().map(|v| v.to_string()).collect();
        for a in &g.aggs {
            let (half, rel) = match &a.ci_normal {
                Some(ci) => (
                    format!("{:.2}", ci.width() / 2.0),
                    format!("{:.2}%", ci.relative_half_width() * 100.0),
                ),
                None => ("—".into(), "—".into()),
            };
            let mark = if g.converged {
                "  ok"
            } else if !g.tracked {
                "  (untracked)"
            } else {
                ""
            };
            println!(
                "    {:<20} {:<12} {:>16.4} {:>14} {:>8}{}",
                key.join(","),
                a.name,
                a.estimate,
                half,
                rel,
                mark
            );
        }
    }
}

/// The final estimates, rendered per result shape.
fn print_online_summary(r: &QueryResult) {
    match &r.snapshot {
        Snapshot::Scalar(s) => {
            println!(
                "stopped: {} after {} rows in {} chunks ({} ms)",
                r.reason,
                s.rows,
                r.chunks,
                s.elapsed.as_millis()
            );
            println!(
                "{:<16} {:>16} {:>14} {:>34}",
                "aggregate", "estimate", "std err", "final normal CI"
            );
            for a in &s.aggs {
                let (se, ci) = match (&a.variance, &a.ci_normal) {
                    (Some(v), Some(ci)) => (format!("{:.4}", v.sqrt()), format!("{ci}")),
                    _ => ("—".into(), "(not estimable)".into()),
                };
                println!("{:<16} {:>16.4} {:>14} {:>34}", a.name, a.estimate, se, ci);
            }
        }
        Snapshot::Grouped(s) => {
            println!(
                "stopped: {} after {} rows in {} chunks ({} ms)",
                r.reason,
                s.rows,
                r.chunks,
                s.elapsed.as_millis()
            );
            println!(
                "{:<20} {:<12} {:>16} {:>14} {:>34} {:>8}",
                s.group_exprs.join(", "),
                "aggregate",
                "estimate",
                "std err",
                "final normal CI",
                "tuples"
            );
            for g in &s.groups {
                let key: Vec<String> = g.key.iter().map(|v| v.to_string()).collect();
                for a in &g.aggs {
                    let (se, ci) = match (&a.variance, &a.ci_normal) {
                        (Some(v), Some(ci)) => (format!("{:.4}", v.sqrt()), format!("{ci}")),
                        _ => ("—".into(), "(not estimable)".into()),
                    };
                    println!(
                        "{:<20} {:<12} {:>16.4} {:>14} {:>34} {:>8}",
                        key.join(","),
                        a.name,
                        a.estimate,
                        se,
                        ci,
                        g.sample_rows
                    );
                }
            }
            println!("({} observed groups)", s.groups.len());
        }
    }
}

fn run_exact(shell: &Shell, sql: &str) {
    let (plan, group_by) = match plan_grouped_sql(sql, shell.engine.catalog()) {
        Ok(p) => p,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    if group_by.is_empty() {
        match exact_query(&plan, shell.engine.catalog()) {
            Ok(vals) => println!("exact: {vals:?}"),
            Err(e) => println!("error: {e}"),
        }
    } else {
        match exact_group_query(&plan, &group_by, shell.engine.catalog()) {
            Ok(groups) => {
                for (key, vals) in groups {
                    let key: Vec<String> = key.iter().map(|v| v.to_string()).collect();
                    println!("{:<24} {vals:?}", key.join(","));
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}

fn run_trace(shell: &Shell, sql: &str) {
    let (plan, _) = match plan_grouped_sql(sql, shell.engine.catalog()) {
        Ok(p) => p,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    println!("plan:\n{}", plan.display_tree());
    match rewrite(&plan, shell.engine.catalog()) {
        Ok(analysis) => {
            println!("rewrite steps:\n{}", analysis.trace.render());
            println!("top GUS:\n{}", analysis.gus_table());
        }
        Err(e) => println!("error: {e}"),
    }
}
