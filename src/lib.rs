//! # sampling-algebra
//!
//! A complete, from-scratch implementation of **“A Sampling Algebra for
//! Aggregate Estimation”** (Nirkhiwale, Dobra, Jermaine; VLDB 2013): the GUS
//! sampling algebra, SOA-equivalent plan rewriting, and the SBox estimator
//! that turns any `TABLESAMPLE` aggregate query into an unbiased estimate
//! with confidence intervals — plus every substrate the paper needs (a small
//! relational engine with lineage, sampling operators, a SQL front-end, a
//! TPC-H-style generator and baseline estimators).
//!
//! ## The one-paragraph version of the paper
//!
//! Any uniform sampling scheme (Bernoulli, fixed-size WOR, block-level
//! `SYSTEM`, stacks and combinations thereof) is a *Generalized Uniform
//! Sampling* (GUS) process, describable by a first-order inclusion
//! probability `a` and pair-inclusion probabilities `b_T` indexed by the set
//! of base relations `T` two result tuples share lineage on. GUS operators
//! commute with selections and joins up to *second-order analytical (SOA)
//! equivalence* — equality of the mean and variance of every SUM-like
//! aggregate — so any plan collapses to a single GUS above a sampling-free
//! plan. Theorem 1 then gives the exact estimator variance as a linear
//! combination of group-by-lineage second moments `y_S`, which can
//! themselves be estimated unbiasedly from the sample. Confidence intervals
//! follow from normal or Chebyshev bounds.
//!
//! ## Quick start
//!
//! ```
//! use sampling_algebra::prelude::*;
//!
//! // A toy catalog (use sa_tpch::generate for realistic data).
//! let mut catalog = Catalog::new();
//! let schema = Schema::new(vec![
//!     Field::new("k", DataType::Int),
//!     Field::new("v", DataType::Float),
//! ]).unwrap();
//! let mut b = TableBuilder::new("t", schema);
//! for i in 0..1000 { b.push_row(&[Value::Int(i), Value::Float(1.0)]).unwrap(); }
//! catalog.register(b.finish().unwrap()).unwrap();
//!
//! // An Engine owns the catalog; sessions build queries fluently.
//! let engine = Engine::new(catalog);
//!
//! // The paper's interface: SQL with TABLESAMPLE and QUANTILE bounds.
//! let plan = plan_sql(
//!     "SELECT QUANTILE(SUM(v), 0.05) AS lo, QUANTILE(SUM(v), 0.95) AS hi \
//!      FROM t TABLESAMPLE (20 PERCENT)",
//!     engine.catalog(),
//! ).unwrap();
//! let out = engine.session().query_plan(&plan).batch().unwrap();
//! let result = out.as_scalar().unwrap();
//! let (lo, hi) = (
//!     result.aggs[0].quantile_bound.unwrap(),
//!     result.aggs[1].quantile_bound.unwrap(),
//! );
//! assert!(lo < hi);
//! // The true answer is 1000; the 90% interval should usually contain it.
//! assert!(lo < 1000.0 + 200.0 && hi > 1000.0 - 200.0);
//! ```

#![warn(missing_docs)]

pub use sa_baselines as baselines;
pub use sa_core as core;
pub use sa_exec as exec;
pub use sa_expr as expr;
pub use sa_fault as fault;
pub use sa_online as online;
pub use sa_plan as plan;
pub use sa_sampling as sampling;
pub use sa_server as server;
pub use sa_sql as sql;
pub use sa_storage as storage;
pub use sa_tpch as tpch;

/// The most common imports in one place.
pub mod prelude {
    pub use sa_baselines::{bootstrap, compare_estimators, naive_clt, oracle_variance};
    pub use sa_core::{
        chebyshev_ci, normal_ci, quantile_bound, ConfidenceInterval, EstimateReport,
        GroupedMomentAccumulator, GusParams, LineageBernoulli, LineageSchema, MomentAccumulator,
        RelSet, SBox,
    };
    #[allow(deprecated)]
    pub use sa_exec::approx_query;
    pub use sa_exec::{
        exact_query, execute, open_stream, open_stream_partitioned, ApproxOptions, ApproxResult,
        ChunkStream, ExecOptions,
    };
    pub use sa_expr::{col, lit, Expr};
    #[allow(deprecated)]
    pub use sa_online::{
        run_online, run_online_grouped, run_online_grouped_sql, run_online_sql,
        GroupedOnlineOptions, OnlineOptions,
    };
    pub use sa_online::{
        BatchOutput, Engine, EngineBuilder, Error as OnlineError, GroupedOnlineResult,
        GroupedProgressSnapshot, OnlineResult, ProgressSnapshot, QueryBuilder, QueryHandle,
        QueryOptions, QueryResult, Session, Snapshot,
    };
    pub use sa_plan::{
        render_gus_table, rewrite, AggFunc, AggSpec, LogicalPlan, SoaAnalysis, StopReason,
        StoppingRule,
    };
    pub use sa_sampling::{LineageUnit, SamplingMethod};
    pub use sa_sql::plan_sql;
    pub use sa_storage::{Catalog, DataType, Field, Schema, Table, TableBuilder, Value};
    pub use sa_tpch::{generate, TpchConfig};
}
