//! Quickstart: the paper's introduction query, end to end.
//!
//! Generates TPC-H-style data, runs the `TABLESAMPLE` query through the SQL
//! front-end, and prints the estimate, both confidence intervals, the
//! `QUANTILE` view bounds, and the exact answer for comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sampling_algebra::prelude::*;

fn main() {
    // 1. Data: TPC-H at a laptop scale (orders ≈ 15k, lineitem ≈ 60k).
    let catalog = generate(&TpchConfig::scale(0.01).with_seed(42));
    let li = catalog.get("lineitem").unwrap().row_count();
    let ord = catalog.get("orders").unwrap().row_count();
    println!("data: lineitem = {li} rows, orders = {ord} rows\n");

    // The engine owns the catalog; every query goes through a session.
    let engine = Engine::new(catalog);

    // 2. The paper's Query 1 (Section 1), verbatim.
    let sql = "SELECT SUM(l_discount*(1.0-l_tax)) AS revenue_discount \
               FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) \
               WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0";
    println!("query:\n  {sql}\n");
    let plan = plan_sql(sql, engine.catalog()).expect("valid SQL");

    // 3. Approximate answer with confidence intervals (the paper's one-shot
    //    estimator, via the session's `.batch()` terminal).
    let result = engine
        .session()
        .query_plan(&plan)
        .seed(7)
        .confidence(0.95)
        .batch()
        .expect("estimable plan");
    let result = result.as_scalar().expect("scalar query");
    let agg = &result.aggs[0];
    println!(
        "result tuples from the sampled plan : {}",
        result.result_rows
    );
    println!("estimate                             : {:.2}", agg.estimate);
    println!(
        "std error                            : {:.2}",
        agg.variance.unwrap().sqrt()
    );
    println!(
        "95% normal interval                  : {}",
        agg.ci_normal.as_ref().unwrap()
    );
    println!(
        "95% Chebyshev interval               : {}",
        agg.ci_chebyshev.as_ref().unwrap()
    );

    // 4. The paper's APPROX view: one-sided quantile bounds.
    let view = plan_sql(
        "CREATE VIEW APPROX (lo, hi) AS \
         SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05), \
                QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95) \
         FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) \
         WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0",
        engine.catalog(),
    )
    .unwrap();
    let v = engine.session().query_plan(&view).batch().unwrap();
    let v = v.as_scalar().unwrap();
    println!(
        "APPROX view (lo, hi)                 : ({:.2}, {:.2})",
        v.aggs[0].quantile_bound.unwrap(),
        v.aggs[1].quantile_bound.unwrap()
    );

    // 5. Ground truth (runs the sampling-free plan).
    let exact = exact_query(&plan, engine.catalog()).unwrap()[0];
    println!("exact answer                         : {exact:.2}");
    let err = (agg.estimate - exact).abs() / exact * 100.0;
    println!("relative error of the estimate       : {err:.2}%");

    // 6. What the analysis derived: the single top-level GUS.
    println!("\nSOA analysis — top GUS quasi-operator:");
    println!("{}", result.analysis.gus_table());
}
