//! Online aggregation: watch the estimate converge, stop when it is good
//! enough.
//!
//! Runs the paper's kind of `TABLESAMPLE` aggregate progressively through
//! the [`Engine`]/[`Session`] API: the sampled plan streams in chunks, the
//! incremental accumulator keeps estimate/variance O(1)-readable, and the
//! query stops as soon as the 95% interval is within ±2% of the estimate —
//! then compares against the batch answer over the full sample and the
//! exact answer. A second act does the same for a `GROUP BY` query with
//! **per-group** stopping: the query only quits once every return flag's
//! interval is tight enough.
//!
//! ```sh
//! cargo run --release --example online_aggregation
//! ```

use sampling_algebra::exec::exact_group_query;
use sampling_algebra::prelude::*;
use sampling_algebra::sql::{plan_online_grouped_sql, plan_online_sql};

fn main() {
    // 1. Data: TPC-H at a scale where batch execution is already noticeable.
    let catalog = generate(&TpchConfig::scale(0.01).with_seed(42));
    let li = catalog.get("lineitem").unwrap().row_count();
    println!("data: lineitem = {li} rows\n");

    // The engine owns the catalog and the serving policy; sessions hand out
    // queries with one fluent surface.
    let engine = Engine::new(catalog);

    // 2. The query carries its own stopping rule in SQL.
    let sql = "SELECT SUM(l_extendedprice * l_discount) AS revenue \
               FROM lineitem TABLESAMPLE (25 PERCENT) \
               WITHIN 2 PERCENT CONFIDENCE 95";
    println!("query:\n  {sql}\n");

    // 3. Progressive run on a worker thread: `.online()` returns a handle
    //    whose snapshot iterator streams live progress.
    println!(
        "{:>8} {:>9} {:>16} {:>12} {:>8}",
        "rows", "scanned", "estimate", "±half", "rel"
    );
    let handle = engine
        .session()
        .query(sql)
        .seed(7)
        .chunk_rows(2000)
        .online()
        .expect("query admitted");
    for snap in handle.snapshots() {
        let s = snap.as_scalar().expect("scalar query");
        let a = &s.aggs[0];
        let (half, rel) = match &a.ci_normal {
            Some(ci) => (
                format!("{:.0}", ci.width() / 2.0),
                format!("{:.2}%", ci.relative_half_width() * 100.0),
            ),
            None => ("—".into(), "—".into()),
        };
        let scanned = s
            .progress
            .iter()
            .map(|(c, n)| if *n == 0 { 1.0 } else { *c as f64 / *n as f64 })
            .fold(1.0f64, f64::min);
        println!(
            "{:>8} {:>8.1}% {:>16.2} {:>12} {:>8}",
            s.rows,
            scanned * 100.0,
            a.estimate,
            half,
            rel
        );
    }
    let result = handle.wait().expect("online run succeeds");

    println!(
        "\nstopped: {} after {} of the sample's tuples ({} chunks)\n",
        result.reason,
        result.snapshot.rows(),
        result.chunks
    );

    // 4. Compare: online early stop vs batch over the full sample vs exact.
    let (plan, _) = plan_online_sql(sql, engine.catalog()).unwrap();
    let batch = engine.session().query_plan(&plan).seed(7).batch().unwrap();
    let batch = batch.as_scalar().unwrap();
    let exact = exact_query(&plan, engine.catalog()).unwrap()[0];
    let online_est = result.snapshot.as_scalar().unwrap().aggs[0].estimate;
    println!("online estimate (early stop)  : {online_est:.2}");
    println!(
        "batch estimate (full sample)  : {:.2}",
        batch.aggs[0].estimate
    );
    println!("exact answer                  : {exact:.2}");
    println!(
        "online error vs exact         : {:.2}%  (target was ±2% at 95%)",
        (online_est - exact).abs() / exact * 100.0
    );
    let ci = result.snapshot.as_scalar().unwrap().aggs[0]
        .ci_normal
        .unwrap();
    println!(
        "final interval contains exact : {}",
        if ci.contains(exact) { "yes" } else { "no" }
    );

    // 5. Grouped online aggregation: every group carries its own interval,
    //    and the stopping rule is judged per group — the query runs until the
    //    slowest group's interval is within ±5%. `GROUP BY` in the SQL is all
    //    it takes: the result comes back as the grouped Snapshot variant.
    //    (For long-tailed group counts, `.ci_top_k(k)` would let the K
    //    heaviest groups drive termination; three flags need no policy.)
    let gsql = "SELECT l_returnflag, SUM(l_extendedprice) AS revenue \
                FROM lineitem TABLESAMPLE (25 PERCENT) \
                GROUP BY l_returnflag \
                WITHIN 5 PERCENT CONFIDENCE 95";
    println!("\ngrouped query:\n  {gsql}\n");
    let grouped = engine
        .session()
        .query(gsql)
        .seed(7)
        .chunk_rows(2000)
        .run_with(|snap| {
            let s = snap.as_grouped().expect("grouped query");
            let per_group: Vec<String> = s
                .groups
                .iter()
                .map(|g| {
                    format!(
                        "{}={:.3e}{}",
                        g.key[0],
                        g.aggs[0].estimate,
                        if g.converged { "*" } else { "" }
                    )
                })
                .collect();
            println!(
                "{:>8} rows  {:>2} groups (+{} new)  worst rel {:>6}  [{}]",
                s.rows,
                s.groups.len(),
                s.new_groups,
                s.rel_half_width
                    .map(|r| format!("{:.2}%", r * 100.0))
                    .unwrap_or_else(|| "—".into()),
                per_group.join(" ")
            );
        })
        .expect("grouped online run succeeds");
    println!(
        "\nstopped: {} after {} tuples ({} chunks); * marks converged groups\n",
        grouped.reason,
        grouped.snapshot.rows(),
        grouped.chunks
    );

    // 6. Per-group comparison against the exact grouped answer.
    let (gplan, group_by, _) = plan_online_grouped_sql(gsql, engine.catalog()).unwrap();
    let exact_groups = exact_group_query(&gplan, &group_by, engine.catalog()).unwrap();
    println!(
        "{:<6} {:>16} {:>16} {:>9} {:>9}",
        "flag", "estimate", "exact", "error", "covered"
    );
    for g in &grouped.snapshot.as_grouped().unwrap().groups {
        let truth = exact_groups[&g.key][0];
        let est = g.aggs[0].estimate;
        let ci = g.aggs[0].ci_normal.as_ref().unwrap();
        println!(
            "{:<6} {:>16.2} {:>16.2} {:>8.2}% {:>9}",
            g.key[0].to_string(),
            est,
            truth,
            (est - truth).abs() / truth * 100.0,
            if ci.contains(truth) { "yes" } else { "no" }
        );
    }

    // 7. Shard parallelism: the same query over 4 worker threads. Each
    //    worker consumes a disjoint slice of the sampled plan into a
    //    thread-local accumulator; the coordinator merges per-shard deltas
    //    at every snapshot and judges the stopping rule on the global
    //    state. At forced exhaustion the merged readout equals the batch
    //    estimator on the realized sample (to 1e-9) at any worker count.
    println!("\nsame scalar query, 4 worker threads (--jobs 4):");
    let mut ticks = 0u64;
    let parallel = engine
        .session()
        .query(sql)
        .seed(7)
        .chunk_rows(2000)
        .jobs(4)
        .run_with(|_| ticks += 1)
        .expect("parallel run");
    println!(
        "stopped: {} after {} tuples in {} snapshot ticks; estimate {:.2} \
         (sequential early stop was {:.2})",
        parallel.reason,
        parallel.snapshot.rows(),
        ticks,
        parallel.snapshot.as_scalar().unwrap().aggs[0].estimate,
        online_est
    );
}
