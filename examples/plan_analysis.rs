//! Reproduce the paper's Figure 4 walk-through: a four-relation plan with
//! three sampling operators, transformed step by step into a single
//! top-level GUS quasi-operator, with every intermediate coefficient table.
//!
//! ```sh
//! cargo run --release --example plan_analysis
//! ```

use sampling_algebra::prelude::*;

fn main() {
    // Catalog at the paper's cardinality for orders (150 000) so the
    // printed coefficients match Figure 4 exactly.
    let mut catalog = Catalog::new();
    for (name, key, rows) in [
        ("lineitem", "l_orderkey", 600_000u64),
        ("orders", "o_orderkey", 150_000),
        ("customer", "c_custkey", 15_000),
        ("part", "p_partkey", 20_000),
    ] {
        let schema = Schema::new(vec![Field::new(key, DataType::Int)]).unwrap();
        let mut b = TableBuilder::new(name, schema);
        b.reserve(rows as usize);
        for i in 0..rows {
            b.push_row(&[Value::Int(i as i64)]).unwrap();
        }
        catalog.register(b.finish().unwrap()).unwrap();
    }

    // Figure 4(a): ((B0.1(l) ⋈ W1000(o)) ⋈ c) ⋈ B0.5(p), then SUM.
    let plan = LogicalPlan::scan("lineitem")
        .sample(SamplingMethod::Bernoulli { p: 0.1 })
        .join_on(
            LogicalPlan::scan("orders").sample(SamplingMethod::Wor { size: 1000 }),
            col("l_orderkey").eq(col("o_orderkey")),
        )
        .join_on(
            LogicalPlan::scan("customer"),
            col("o_orderkey").eq(col("c_custkey")), // schematic, as in the figure
        )
        .join_on(
            LogicalPlan::scan("part").sample(SamplingMethod::Bernoulli { p: 0.5 }),
            col("l_orderkey").eq(col("p_partkey")),
        )
        .aggregate(vec![AggSpec::count_star("c")]);

    println!("input plan (Figure 4.a):\n{}", plan.display_tree());

    let analysis = rewrite(&plan, &catalog).expect("analyzable plan");

    println!("rewrite steps (Figures 4.b–4.e):");
    println!("{}", analysis.trace.render());

    println!("sampling-free core plan:\n{}", analysis.core.display_tree());

    println!("top GUS quasi-operator G(a123, b̄123) — Figure 4's final table:");
    println!("{}", analysis.gus_table());

    // The paper's printed gold values for spot comparison.
    println!("paper gold values: a123 = 3.334e-4, b123_∅ = 1.11e-7, b123_locp = 3.334e-4");
    let b_locp = analysis
        .gus
        .b_named(&["lineitem", "orders", "customer", "part"])
        .unwrap();
    println!(
        "ours             : a123 = {:.4e}, b123_∅ = {:.3e}, b123_locp = {:.4e}",
        analysis.gus.a(),
        analysis.gus.b(RelSet::EMPTY),
        b_locp
    );

    // Variance machinery preview: the c_S coefficients of Theorem 1.
    println!("\nTheorem 1 coefficients c_S (Möbius transform of b̄):");
    let c = analysis.gus.c_coeffs();
    for (idx, coeff) in c.iter().enumerate() {
        let set = RelSet::from_bits(idx as u32);
        println!(
            "  c{:<36} = {:>12.4e}",
            analysis.gus.schema().display_set(set),
            coeff
        );
    }
}
