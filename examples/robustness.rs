//! Section 8 application: **the database as a sample**.
//!
//! Treat the stored data as a 99% Bernoulli sample of a slightly larger
//! hypothetical database; a query whose estimator variance is large under
//! that view is *fragile* — its answer would move a lot if 1% of tuples
//! were lost. We compare a robust aggregate (many small contributions)
//! against a fragile one (dominated by a few giant tuples).
//!
//! ```sh
//! cargo run --release --example robustness
//! ```

use sampling_algebra::prelude::*;

/// Relative standard error of `SUM(f)` when the stored table is viewed as a
/// `keep`-rate Bernoulli sample of a hypothetical complete database.
fn robustness_rse(values: &[f64], keep: f64) -> f64 {
    let gus = GusParams::bernoulli("data", keep).expect("valid rate");
    let mut sbox = SBox::new(gus);
    for (i, v) in values.iter().enumerate() {
        sbox.push_scalar(&[i as u64], *v).expect("scalar push");
    }
    let report = sbox.finish().expect("estimable");
    report.std_error(0).expect("variance available") / report.estimate[0].abs()
}

fn main() {
    let catalog = generate(&TpchConfig::scale(0.01).with_seed(1));
    let li = catalog.get("lineitem").unwrap();

    // Aggregate 1 (robust): SUM(l_quantity) — uniform small contributions.
    let qty: Vec<f64> = {
        let c = li.column_by_name("l_quantity").unwrap();
        (0..li.row_count() as usize)
            .map(|r| c.f64_at(r).unwrap())
            .collect()
    };

    // Aggregate 2 (fragile): the same column with a handful of synthetic
    // mega-rows injected, as if a few tuples dominated the total.
    let mut spiky = qty.clone();
    let total: f64 = qty.iter().sum();
    for v in spiky.iter_mut().take(3) {
        *v = total / 4.0; // three tuples now carry ~75% of the new total
    }

    println!("database-as-a-sample robustness analysis (99% Bernoulli view)\n");
    println!(
        "{:<28} {:>14} {:>14}",
        "aggregate", "rel. std err", "verdict"
    );
    for (name, data) in [("SUM(l_quantity)", &qty), ("SUM(spiky variant)", &spiky)] {
        let rse = robustness_rse(data, 0.99);
        let verdict = if rse < 0.005 { "robust" } else { "FRAGILE" };
        println!("{name:<28} {:>13.4}% {verdict:>14}", rse * 100.0);
    }

    // Sensitivity sweep: how the fragility signal grows as the assumed loss
    // rate grows (1% … 20%).
    println!("\nsensitivity sweep: relative std err vs assumed tuple-loss rate");
    println!(
        "{:<12} {:>16} {:>16}",
        "loss rate", "SUM(l_quantity)", "spiky variant"
    );
    for loss in [0.01, 0.02, 0.05, 0.1, 0.2] {
        let keep = 1.0 - loss;
        println!(
            "{:<12} {:>15.4}% {:>15.4}%",
            format!("{:.0}%", loss * 100.0),
            robustness_rse(&qty, keep) * 100.0,
            robustness_rse(&spiky, keep) * 100.0
        );
    }
    println!(
        "\nreading: the spiky aggregate's interval blows up — its answer hinges on \
         a few tuples; the uniform aggregate barely notices the loss."
    );
}
