//! Section 8 application: **choosing sampling parameters**, plus the
//! Section 7 sub-sampled variance estimator.
//!
//! One instrumented run of a sampled join produces unbiased `Ŷ_S` moment
//! estimates; plugging other designs' GUS coefficients into the same `Ŷ_S`
//! predicts the error each design *would* have had — letting a user pick
//! sampling rates before paying for them. The example then shows the
//! Section 7 trick: variance from a ~10k-tuple lineage-hash sub-sample.
//!
//! ```sh
//! cargo run --release --example sampling_design
//! ```

// This example deliberately drives the low-level batch entry point: the
// Section 7 sub-sampled variance estimator (`subsample_target`) is
// exec-layer plumbing the Engine API does not surface.
#![allow(deprecated)]

use sampling_algebra::prelude::*;
use std::time::Instant;

fn main() {
    let catalog = generate(&TpchConfig::scale(0.01).with_seed(5));

    // The instrumented pilot run: a half-rate Bernoulli on both sides.
    let sql = "SELECT SUM(l_quantity) \
               FROM lineitem TABLESAMPLE (50 PERCENT), orders TABLESAMPLE (50 PERCENT) \
               WHERE l_orderkey = o_orderkey";
    let plan = plan_sql(sql, &catalog).unwrap();
    let pilot = approx_query(
        &plan,
        &catalog,
        &ApproxOptions {
            seed: 2,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    println!("pilot query:\n  {sql}");
    println!(
        "pilot estimate: {:.0} (rel err bound ±{:.2}% at 95%)\n",
        pilot.aggs[0].estimate,
        pilot.aggs[0]
            .ci_normal
            .as_ref()
            .unwrap()
            .relative_half_width()
            * 100.0
    );

    // Predict the precision of alternative designs from the pilot's Ŷ_S.
    println!("predicted 95% relative half-width for alternative designs:");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "orders \\ li", "5%", "10%", "25%", "50%"
    );
    for p_orders in [0.05, 0.1, 0.25, 0.5] {
        let mut row = format!("{:<14}", format!("{:.0}%", p_orders * 100.0));
        for p_li in [0.05, 0.1, 0.25, 0.5] {
            let design = GusParams::bernoulli("lineitem", p_li)
                .unwrap()
                .join(&GusParams::bernoulli("orders", p_orders).unwrap())
                .unwrap();
            let var = pilot.report.predict_variance(&design, 0).unwrap();
            let rel = 1.96 * var.sqrt() / pilot.aggs[0].estimate * 100.0;
            row.push_str(&format!(" {:>11.2}%", rel));
        }
        println!("{row}");
    }
    println!(
        "\nreading: pick the cheapest cell meeting your error budget — predicted \
         from ONE pilot run, no re-execution."
    );

    // Section 7: full-sample vs sub-sampled variance estimation.
    println!("\nSection 7 — sub-sampled variance estimation:");
    let t0 = Instant::now();
    let full = approx_query(
        &plan,
        &catalog,
        &ApproxOptions {
            seed: 2,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    let t_full = t0.elapsed();
    let t0 = Instant::now();
    let sub = approx_query(
        &plan,
        &catalog,
        &ApproxOptions {
            seed: 2,
            confidence: 0.95,
            subsample_target: Some(10_000),
        },
    )
    .unwrap();
    let t_sub = t0.elapsed();
    println!("{:<26} {:>14} {:>14}", "", "full sample", "sub-sampled");
    println!(
        "{:<26} {:>14} {:>14}",
        "tuples used for variance", full.variance_rows, sub.variance_rows
    );
    println!(
        "{:<26} {:>14.2} {:>14.2}",
        "std error estimate",
        full.aggs[0].variance.unwrap().sqrt(),
        sub.aggs[0].variance.unwrap().sqrt()
    );
    println!(
        "{:<26} {:>14?} {:>14?}",
        "wall time (exec+analyze)", t_full, t_sub
    );
    println!(
        "\npoint estimates agree exactly ({:.0}): the sub-sample only serves the \
         variance terms.",
        sub.aggs[0].estimate
    );
}
