#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! GROUP BY estimation end to end: SQL with `GROUP BY` → per-group
//! estimates with per-group confidence intervals, validated against exact
//! per-group answers on TPC-H data.

use sampling_algebra::exec::{approx_group_query, exact_group_query};
use sampling_algebra::prelude::*;
use sampling_algebra::sql::plan_grouped_sql;

fn tpch() -> Catalog {
    generate(&TpchConfig::scale(0.002).with_seed(13))
}

#[test]
fn group_by_returnflag_coverage() {
    let cat = tpch();
    let (plan, group_by) = plan_grouped_sql(
        "SELECT l_returnflag, SUM(l_quantity) AS qty, COUNT(*) AS n \
         FROM lineitem TABLESAMPLE (25 PERCENT) \
         GROUP BY l_returnflag",
        &cat,
    )
    .unwrap();
    let exact = exact_group_query(&plan, &group_by, &cat).unwrap();
    assert_eq!(exact.len(), 3); // A, N, R

    let r = approx_group_query(
        &plan,
        &group_by,
        &cat,
        &ApproxOptions {
            seed: 5,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    assert_eq!(r.groups.len(), 3);
    for g in &r.groups {
        let truth = &exact[&g.key];
        let ci_qty = g.aggs[0].ci_chebyshev.as_ref().unwrap();
        let ci_n = g.aggs[1].ci_chebyshev.as_ref().unwrap();
        assert!(
            ci_qty.contains(truth[0]),
            "{:?}: qty {ci_qty} misses {}",
            g.key,
            truth[0]
        );
        assert!(
            ci_n.contains(truth[1]),
            "{:?}: n {ci_n} misses {}",
            g.key,
            truth[1]
        );
        assert!(g.sample_rows > 0);
    }
}

#[test]
fn group_by_unbiased_per_group() {
    let cat = tpch();
    let (plan, group_by) = plan_grouped_sql(
        "SELECT o_orderstatus, SUM(o_totalprice) AS total \
         FROM orders TABLESAMPLE (30 PERCENT) \
         GROUP BY o_orderstatus",
        &cat,
    )
    .unwrap();
    let exact = exact_group_query(&plan, &group_by, &cat).unwrap();
    let trials = 150u64;
    let mut sums: std::collections::BTreeMap<Vec<Value>, f64> = Default::default();
    for seed in 0..trials {
        let r = approx_group_query(
            &plan,
            &group_by,
            &cat,
            &ApproxOptions {
                seed,
                confidence: 0.95,
                subsample_target: None,
            },
        )
        .unwrap();
        for g in &r.groups {
            *sums.entry(g.key.clone()).or_insert(0.0) += g.aggs[0].estimate;
        }
    }
    for (key, total) in sums {
        let mean = total / trials as f64;
        let truth = exact[&key][0];
        assert!(
            (mean - truth).abs() < 0.05 * truth,
            "{key:?}: mean {mean} vs {truth}"
        );
    }
}

#[test]
fn group_by_on_sampled_join() {
    let cat = tpch();
    let (plan, group_by) = plan_grouped_sql(
        "SELECT o_orderpriority, SUM(l_quantity) AS qty \
         FROM lineitem TABLESAMPLE (20 PERCENT), orders TABLESAMPLE (40 PERCENT) \
         WHERE l_orderkey = o_orderkey \
         GROUP BY o_orderpriority",
        &cat,
    )
    .unwrap();
    let exact = exact_group_query(&plan, &group_by, &cat).unwrap();
    assert_eq!(exact.len(), 5); // 5 priorities
    let r = approx_group_query(
        &plan,
        &group_by,
        &cat,
        &ApproxOptions {
            seed: 11,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    let mut covered = 0;
    for g in &r.groups {
        if g.aggs[0]
            .ci_chebyshev
            .as_ref()
            .unwrap()
            .contains(exact[&g.key][0])
        {
            covered += 1;
        }
    }
    assert!(covered >= 4, "only {covered}/5 groups covered");
}

#[test]
fn sql_group_by_validation() {
    let cat = tpch();
    // Non-aggregate select item without GROUP BY.
    assert!(plan_grouped_sql("SELECT l_returnflag, SUM(l_quantity) FROM lineitem", &cat).is_err());
    // Select item not in GROUP BY.
    assert!(plan_grouped_sql(
        "SELECT l_linenumber, SUM(l_quantity) FROM lineitem GROUP BY l_returnflag",
        &cat
    )
    .is_err());
    // plan_sql rejects GROUP BY with a pointer to the grouped API.
    let err = sampling_algebra::sql::plan_sql(
        "SELECT SUM(l_quantity) FROM lineitem GROUP BY l_returnflag",
        &cat,
    )
    .unwrap_err();
    assert!(err.to_string().contains("plan_grouped_sql"), "{err}");
    // Scalar queries still parse through the grouped API with empty keys.
    let (_, group_by) = plan_grouped_sql("SELECT SUM(l_quantity) FROM lineitem", &cat).unwrap();
    assert!(group_by.is_empty());
}

#[test]
fn group_by_expression_keys() {
    // Group by a computed expression (quantity bucket).
    let cat = tpch();
    let (plan, group_by) = plan_grouped_sql(
        "SELECT SUM(l_extendedprice) AS v \
         FROM lineitem TABLESAMPLE (30 PERCENT) \
         GROUP BY l_quantity > 25.0",
        &cat,
    )
    .unwrap();
    let r = approx_group_query(
        &plan,
        &group_by,
        &cat,
        &ApproxOptions {
            seed: 2,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    assert_eq!(r.groups.len(), 2); // true / false buckets
    let exact = exact_group_query(&plan, &group_by, &cat).unwrap();
    for g in &r.groups {
        let truth = exact[&g.key][0];
        assert!(g.aggs[0].ci_chebyshev.as_ref().unwrap().contains(truth));
    }
}
