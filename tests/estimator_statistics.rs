#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Statistical validation of the estimator across repeated sampled
//! executions: unbiasedness of the point estimate (Theorem 1), unbiasedness
//! of the variance estimate (the Section 6.3 `Ŷ_S` recursion), empirical
//! confidence-interval coverage (Section 6.4), and the Section 7
//! sub-sampled variance estimator.
//!
//! All randomness is seeded, so these tests are deterministic despite being
//! Monte-Carlo in nature.

use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use sampling_algebra::prelude::*;

/// Fact table `t` (rows with values 1..7 cycling, keys fanning out 40×) and
/// dimension `d` (50 rows, w = key mod 5).
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for i in 0..2000 {
        b.push_row(&[Value::Int(i % 50), Value::Float(1.0 + (i % 7) as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    let schema = Schema::new(vec![
        Field::new("dk", DataType::Int),
        Field::new("w", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("d", schema);
    for i in 0..50 {
        b.push_row(&[Value::Int(i), Value::Float((i % 5) as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

/// The two-table sampled join the paper's Query 1 is shaped like.
fn join_plan() -> LogicalPlan {
    LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.3 })
        .join_on(
            LogicalPlan::scan("d").sample(SamplingMethod::Wor { size: 25 }),
            col("k").eq(col("dk")),
        )
        .aggregate(vec![AggSpec::sum(col("v").mul(col("w")), "s")])
}

fn run_trials(plan: &LogicalPlan, cat: &Catalog, trials: u64) -> Vec<ApproxResult> {
    (0..trials)
        .map(|seed| {
            approx_query(
                plan,
                cat,
                &ApproxOptions {
                    seed,
                    confidence: 0.95,
                    subsample_target: None,
                },
            )
            .unwrap()
        })
        .collect()
}

#[test]
fn point_estimate_is_unbiased_on_sampled_join() {
    let cat = catalog();
    let plan = join_plan();
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let oracle = oracle_variance(&plan, &cat).unwrap();
    let trials = 300;
    let runs = run_trials(&plan, &cat, trials);
    let mean: f64 = runs.iter().map(|r| r.aggs[0].estimate).sum::<f64>() / trials as f64;
    // Monte-Carlo error of the mean: σ/√trials; allow 4 of them.
    let mc_sigma = (oracle / trials as f64).sqrt();
    assert!(
        (mean - exact).abs() < 4.0 * mc_sigma,
        "mean {mean} vs exact {exact} (mc σ {mc_sigma})"
    );
}

#[test]
fn variance_estimate_is_unbiased() {
    let cat = catalog();
    let plan = join_plan();
    let oracle = oracle_variance(&plan, &cat).unwrap();
    let trials = 300;
    let runs = run_trials(&plan, &cat, trials);
    let mean_var: f64 = runs
        .iter()
        .map(|r| r.report.raw_variance(0).unwrap())
        .sum::<f64>()
        / trials as f64;
    // Unbiasedness within 20% (the variance of σ̂² involves 4th moments).
    assert!(
        (mean_var - oracle).abs() < 0.2 * oracle,
        "mean σ̂² {mean_var} vs oracle {oracle}"
    );
}

#[test]
fn normal_interval_coverage_near_nominal() {
    let cat = catalog();
    let plan = join_plan();
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let trials = 300;
    let runs = run_trials(&plan, &cat, trials);
    let covered = runs
        .iter()
        .filter(|r| r.aggs[0].ci_normal.as_ref().unwrap().contains(exact))
        .count();
    let rate = covered as f64 / trials as f64;
    // 95% nominal; accept [0.88, 1.0] (binomial noise + mild non-normality).
    assert!(rate >= 0.88, "normal CI coverage {rate}");
}

#[test]
fn chebyshev_interval_coverage_at_least_nominal() {
    let cat = catalog();
    let plan = join_plan();
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let trials = 200;
    let runs = run_trials(&plan, &cat, trials);
    let covered = runs
        .iter()
        .filter(|r| r.aggs[0].ci_chebyshev.as_ref().unwrap().contains(exact))
        .count();
    let rate = covered as f64 / trials as f64;
    assert!(rate >= 0.97, "Chebyshev coverage {rate} (should be ≈ 1)");
}

#[test]
fn count_estimate_unbiased() {
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.2 })
        .join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")))
        .aggregate(vec![AggSpec::count_star("c")]);
    let exact = exact_query(&plan, &cat).unwrap()[0];
    assert_eq!(exact, 2000.0); // every t row matches exactly one d row
    let trials = 200;
    let runs = run_trials(&plan, &cat, trials);
    let mean: f64 = runs.iter().map(|r| r.aggs[0].estimate).sum::<f64>() / trials as f64;
    assert!((mean - exact).abs() < 0.05 * exact, "mean {mean}");
}

#[test]
fn avg_delta_method_concentrates_on_truth() {
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.3 })
        .aggregate(vec![AggSpec::avg(col("v"), "a")]);
    // truth: mean of 1 + (i%7) over 2000 rows.
    let exact: f64 = (0..2000).map(|i| 1.0 + (i % 7) as f64).sum::<f64>() / 2000.0;
    let trials = 200;
    let runs = run_trials(&plan, &cat, trials);
    let mut covered = 0;
    for r in &runs {
        let a = &r.aggs[0];
        if a.ci_normal.as_ref().unwrap().contains(exact) {
            covered += 1;
        }
    }
    let rate = covered as f64 / trials as f64;
    assert!(rate >= 0.85, "AVG delta-method coverage {rate}");
}

#[test]
fn subsampled_variance_estimator_tracks_oracle() {
    // Section 7: estimating Ŷ_S from a lineage-hash sub-sample must still
    // give an (approximately) unbiased variance estimate.
    let cat = catalog();
    let plan = join_plan();
    let oracle = oracle_variance(&plan, &cat).unwrap();
    let trials = 200;
    let mean_var: f64 = (0..trials)
        .map(|seed| {
            approx_query(
                &plan,
                &cat,
                &ApproxOptions {
                    seed,
                    confidence: 0.95,
                    subsample_target: Some(150),
                },
            )
            .unwrap()
            .report
            .raw_variance(0)
            .unwrap()
        })
        .sum::<f64>()
        / trials as f64;
    assert!(
        (mean_var - oracle).abs() < 0.35 * oracle,
        "sub-sampled mean σ̂² {mean_var} vs oracle {oracle}"
    );
}

#[test]
fn system_block_sampling_estimates_correctly() {
    // Block-level sampling with strongly correlated blocks: the GUS analysis
    // at block granularity must stay unbiased and near-nominal in coverage.
    let mut c = Catalog::new();
    let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
    let mut b = TableBuilder::new("blocks", schema).with_block_rows(20);
    for i in 0..2000 {
        // Values correlated within a block: block j holds value j+1.
        b.push_row(&[Value::Float((i / 20 + 1) as f64)]).unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    let plan = LogicalPlan::scan("blocks")
        .sample(SamplingMethod::System { p: 0.3 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let exact = exact_query(&plan, &c).unwrap()[0];
    let trials = 300;
    let runs = run_trials(&plan, &c, trials);
    let mean: f64 = runs.iter().map(|r| r.aggs[0].estimate).sum::<f64>() / trials as f64;
    assert!(
        (mean - exact).abs() < 0.03 * exact,
        "mean {mean} vs {exact}"
    );
    let covered = runs
        .iter()
        .filter(|r| r.aggs[0].ci_normal.as_ref().unwrap().contains(exact))
        .count();
    let rate = covered as f64 / trials as f64;
    assert!(rate >= 0.88, "SYSTEM coverage {rate}");
}

#[test]
fn union_of_two_samples_analyzed_correctly() {
    // Proposition 7: two independent Bernoulli samples of the same table,
    // unioned (dedup by lineage), behave as Bernoulli(1-(1-p)(1-q)).
    let cat = catalog();
    let p = 0.2;
    let q = 0.25;
    let g_union = GusParams::bernoulli("t", p)
        .unwrap()
        .union(&GusParams::bernoulli("t", q).unwrap())
        .unwrap();
    let exact: f64 = (0..2000).map(|i| 1.0 + (i % 7) as f64).sum();
    let trials = 400;
    let mut estimates = Vec::new();
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let t = cat.get("t").unwrap();
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sbox = SBox::new(g_union.clone());
        for rid in 0..t.row_count() {
            let in1 = rng.random::<f64>() < p;
            let in2 = rng.random::<f64>() < q;
            if in1 || in2 {
                let v = t
                    .column_by_name("t.v")
                    .unwrap()
                    .f64_at(rid as usize)
                    .unwrap();
                sbox.push_scalar(&[rid], v).unwrap();
            }
        }
        estimates.push(sbox.finish().unwrap());
    }
    let mean: f64 = estimates.iter().map(|r| r.estimate[0]).sum::<f64>() / trials as f64;
    assert!(
        (mean - exact).abs() < 0.02 * exact,
        "mean {mean} vs {exact}"
    );
    // Coverage under the union analysis.
    let covered = estimates
        .iter()
        .filter(|r| r.ci_normal(0, 0.95).unwrap().contains(exact))
        .count();
    assert!(
        covered as f64 / trials as f64 >= 0.9,
        "union coverage {}",
        covered as f64 / trials as f64
    );
}
