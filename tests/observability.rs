//! Observability end to end: the metrics a seeded run must pin exactly,
//! the Prometheus series a scrape must expose, and the invariant the whole
//! layer hangs on — instrumentation never perturbs the realized sample.

use sampling_algebra::online::{EventKind, Registry};
use sampling_algebra::prelude::*;

/// `t(k, v)`: `rows` rows, v cycling 1..=7 (mean 4.0), k cycling 0..10.
fn catalog(rows: i64) -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for i in 0..rows {
        b.push_row(&[Value::Int(i % 10), Value::Float(1.0 + (i % 7) as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

const SQL: &str = "SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)";

/// A seeded single-session exhaustion run pins the whole counter surface
/// deterministically: rows are consumed once, every chunk snapshots, the
/// stop fires at 100% scan, and the journal tells the story in order.
#[test]
fn seeded_run_pins_the_metrics_surface() {
    let rows = 4096u64;
    let engine = Engine::builder(catalog(rows as i64)).metrics(true).build();
    let r = engine
        .session()
        .query(SQL)
        .seed(11)
        .chunk_rows(512)
        .run()
        .unwrap();
    assert_eq!(r.reason, StopReason::Exhausted);

    let m = engine.metrics();
    assert_eq!(m.counter("sa_sessions_opened_total"), Some(1));
    assert_eq!(m.counter("sa_queries_started_total"), Some(1));
    assert_eq!(
        m.counter("sa_queries_finished_total{reason=\"exhausted\"}"),
        Some(1)
    );
    assert_eq!(m.counter("sa_queries_rejected_total"), Some(0));
    assert_eq!(m.counter("sa_query_errors_total"), Some(0));
    // 4096 rows in 512-row chunks: 8 full chunks plus the empty read that
    // detects exhaustion — 9 snapshots. Consumed rows are *sample* rows
    // (tuples that survived the 50% TABLESAMPLE), each counted once.
    assert_eq!(m.counter("sa_snapshots_emitted_total"), Some(r.chunks));
    assert_eq!(r.chunks, 9);
    let sample_rows = r.snapshot.rows();
    assert!(sample_rows > 0 && sample_rows < rows);
    assert_eq!(m.counter("sa_rows_consumed_total"), Some(sample_rows));
    assert_eq!(m.gauge("sa_active_queries"), Some(0));
    let dur = m.histogram("sa_query_duration_us").unwrap();
    assert_eq!(dur.count, 1);
    let ttfs = m.histogram("sa_time_to_first_snapshot_us").unwrap();
    assert_eq!(ttfs.count, 1);
    assert!(ttfs.max <= dur.max);
    // Exhaustion stops at exactly 100% of the scan.
    let permille = m.histogram("sa_stop_scan_permille").unwrap();
    assert_eq!((permille.count, permille.max), (1, 1000));

    // The journal: started, 9 snapshots (cumulative sample rows), then the
    // rule that stopped the query.
    let (events, dropped) = engine.registry().events();
    assert_eq!(dropped, 0);
    assert_eq!(events.len(), 11);
    assert!(matches!(events[0].kind, EventKind::QueryStarted { .. }));
    let mut prev = 0;
    for (i, e) in events[1..10].iter().enumerate() {
        let EventKind::SnapshotEmitted { rows, .. } = e.kind else {
            panic!("event {i} should be a snapshot: {:?}", e.kind)
        };
        assert!(rows >= prev, "sample rows grow monotonically");
        prev = rows;
    }
    assert_eq!(prev, sample_rows);
    let EventKind::RuleFired {
        reason,
        scan_permille,
        ..
    } = events[10].kind
    else {
        panic!("last event should be the rule: {:?}", events[10].kind)
    };
    assert_eq!((reason, scan_permille), ("exhausted", 1000));
}

/// Shared-scan accounting through `engine.scan_stats()`: one query over the
/// hub gathers each row once and serves each gathered row once.
#[test]
fn scan_stats_report_gathered_and_served_rows() {
    let rows = 3000u64;
    let engine = Engine::builder(catalog(rows as i64))
        .shared_scans(true)
        // A bus size that divides the table keeps the head on revolution
        // boundaries, so gathered/served counts are exact.
        .scan_window(250, 1 << 17)
        .metrics(true)
        .build();
    let r = engine
        .session()
        .query(SQL)
        .seed(5)
        .chunk_rows(256)
        .run()
        .unwrap();
    assert_eq!(r.reason, StopReason::Exhausted);

    let stats = engine.scan_stats("t").unwrap();
    assert_eq!(stats.rows_gathered, rows);
    assert_eq!(stats.rows_served, rows);
    assert_eq!(stats.attached, 0, "cursor detached at query end");
    let m = engine.metrics();
    assert_eq!(m.counter("sa_shared_scan_rows_gathered_total"), Some(rows));
    assert_eq!(m.counter("sa_shared_scan_rows_served_total"), Some(rows));
    assert_eq!(m.counter("sa_shared_scan_attach_total"), Some(1));
    assert_eq!(m.counter("sa_shared_scan_detach_total"), Some(1));
}

/// The Prometheus dump carries every series the scrape contract names,
/// with `# TYPE` lines and quantile samples.
#[test]
fn prometheus_dump_exposes_the_contract_series() {
    let engine = Engine::builder(catalog(2000))
        .shared_scans(true)
        .scan_window(250, 1 << 17)
        .metrics(true)
        .build();
    engine.session().query(SQL).seed(3).run().unwrap();

    let dump = engine.render_prometheus();
    for series in [
        "# TYPE sa_queries_started_total counter",
        "# TYPE sa_queries_finished_total counter",
        "sa_queries_finished_total{reason=\"exhausted\"} 1",
        "sa_queries_finished_total{reason=\"cancelled\"} 0",
        "sa_queries_rejected_total 0",
        "# TYPE sa_active_queries gauge",
        "# TYPE sa_query_duration_us summary",
        "sa_query_duration_us{quantile=\"0.5\"}",
        "sa_query_duration_us{quantile=\"0.99\"}",
        "sa_query_duration_us_count 1",
        "sa_time_to_first_snapshot_us{quantile=\"0.95\"}",
        "sa_stop_scan_permille_count 1",
        "sa_shared_scan_rows_gathered_total 2000",
        "sa_shared_scan_rows_served_total 2000",
        // SUM(v) reads only column 1 of t(k, v): the engine serves it from
        // a column-pruned hub, labeled with its column set.
        "sa_shared_scan_attached{table=\"t\",cols=\"1\"} 0",
        "sa_shared_scan_head{table=\"t\",cols=\"1\"} 2000",
    ] {
        assert!(dump.contains(series), "missing `{series}` in:\n{dump}");
    }
}

/// The layer's load-bearing invariant: metrics on vs. off, same (plan,
/// seed) — byte-identical realized samples, estimates, and snapshot
/// cadence. Instrumentation observes the run; it never joins it.
#[test]
fn instrumentation_never_perturbs_the_realized_sample() {
    let run = |metrics: bool| {
        let engine = Engine::builder(catalog(5000))
            .shared_scans(true)
            .metrics(metrics)
            .build();
        let r = engine
            .session()
            .query("SELECT SUM(v) AS s, AVG(v) AS a FROM t TABLESAMPLE (40 PERCENT)")
            .seed(77)
            .chunk_rows(300)
            .run()
            .unwrap();
        let snap = r.snapshot.as_scalar().unwrap().clone();
        (r.reason, r.chunks, snap)
    };
    let (reason_on, chunks_on, snap_on) = run(true);
    let (reason_off, chunks_off, snap_off) = run(false);
    assert_eq!(reason_on, reason_off);
    assert_eq!(chunks_on, chunks_off);
    assert_eq!(snap_on.rows, snap_off.rows);
    assert_eq!(snap_on.progress, snap_off.progress);
    for (on, off) in snap_on.aggs.iter().zip(&snap_off.aggs) {
        assert_eq!(
            on.estimate.to_bits(),
            off.estimate.to_bits(),
            "estimate {} drifted under instrumentation",
            on.name
        );
        assert_eq!(
            on.variance.map(f64::to_bits),
            off.variance.map(f64::to_bits),
            "variance {} drifted under instrumentation",
            on.name
        );
    }
}

/// Disabled registries stay invisible: no counters, no events, an empty
/// dump — and the handles still work as no-ops.
#[test]
fn metrics_off_is_a_clean_no_op() {
    let engine = Engine::new(catalog(1000));
    engine.session().query(SQL).seed(1).run().unwrap();
    let m = engine.metrics();
    assert!(m.counters.is_empty() && m.gauges.is_empty() && m.histograms.is_empty());
    assert_eq!(engine.registry().events().0.len(), 0);
    assert_eq!(engine.render_prometheus(), "");

    let reg = Registry::disabled();
    let c = reg.counter("nope");
    c.inc();
    assert_eq!(c.get(), 0);
}
