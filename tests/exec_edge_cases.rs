#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Executor and estimator edge cases: empty inputs, extreme values,
//! operator interleavings, and plan shapes at the boundaries of what the
//! engine supports.

use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use sampling_algebra::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema.clone());
    for i in 0..100 {
        b.push_row(&[Value::Int(i % 10), Value::Float(i as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    let b = TableBuilder::new("empty", schema);
    c.register(b.finish().unwrap()).unwrap();
    c
}

#[test]
fn empty_table_through_whole_pipeline() {
    let cat = catalog();
    let plan = LogicalPlan::scan("empty")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .aggregate(vec![AggSpec::sum(col("v"), "s"), AggSpec::count_star("n")]);
    let r = approx_query(&plan, &cat, &ApproxOptions::default()).unwrap();
    assert_eq!(r.aggs[0].estimate, 0.0);
    assert_eq!(r.aggs[1].estimate, 0.0);
    assert_eq!(r.result_rows, 0);
    assert_eq!(exact_query(&plan, &cat).unwrap(), vec![0.0, 0.0]);
}

#[test]
fn join_with_empty_side_yields_zero() {
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .join_on(
            LogicalPlan::scan_as("empty", "e"),
            col("t.k").eq(col("e.k")),
        )
        .aggregate(vec![AggSpec::count_star("n")]);
    let r = approx_query(&plan, &cat, &ApproxOptions::default()).unwrap();
    assert_eq!(r.aggs[0].estimate, 0.0);
}

#[test]
fn projection_between_sample_and_aggregate() {
    // Lineage must survive a projection that renames and transforms.
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.6 })
        .project(vec![(col("v").mul(lit(2.0)), "vv".into())])
        .aggregate(vec![AggSpec::sum(col("vv"), "s")]);
    let exact = exact_query(&plan, &cat).unwrap()[0];
    assert_eq!(exact, 2.0 * (0..100).sum::<i64>() as f64);
    let trials = 120u64;
    let mean: f64 = (0..trials)
        .map(|seed| {
            approx_query(
                &plan,
                &cat,
                &ApproxOptions {
                    seed,
                    confidence: 0.95,
                    subsample_target: None,
                },
            )
            .unwrap()
            .aggs[0]
                .estimate
        })
        .sum::<f64>()
        / trials as f64;
    assert!(
        (mean - exact).abs() < 0.05 * exact,
        "mean {mean} vs {exact}"
    );
}

#[test]
fn filter_between_sample_and_join() {
    // σ between the sampler and the join must not disturb the analysis
    // (Prop 5); the GUS stays Bernoulli(0.5).
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .filter(col("v").gt_eq(lit(10.0)))
        .join_on(LogicalPlan::scan_as("t", "u"), lit(true))
        .aggregate(vec![AggSpec::count_star("n")]);
    // Wait: "t" scanned twice needs distinct aliases — the second scan uses
    // alias "u", so lineage schemas stay disjoint.
    let analysis = rewrite(&plan, &cat).unwrap();
    assert_eq!(analysis.schema.n(), 2);
    assert!((analysis.gus.a() - 0.5).abs() < 1e-12);
}

#[test]
fn huge_values_do_not_overflow() {
    let gus = GusParams::bernoulli("r", 0.5).unwrap();
    let mut sbox = SBox::new(gus);
    for i in 0..100u64 {
        sbox.push_scalar(&[i], 1e150).unwrap();
    }
    let rep = sbox.finish().unwrap();
    assert!(rep.estimate[0].is_finite());
    // Variance involves squares of 1e150 sums → saturates to +inf; the
    // estimate itself must stay finite and correct.
    assert!((rep.estimate[0] - 100.0 * 1e150 / 0.5).abs() < 1e140);
}

#[test]
fn negative_and_cancelling_values() {
    // f values cancelling to ~zero: estimate near zero, variance positive.
    let cat = {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
        let mut b = TableBuilder::new("pm", schema);
        for i in 0..200 {
            b.push_row(&[Value::Float(if i % 2 == 0 { 1.0 } else { -1.0 })])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    };
    let plan = LogicalPlan::scan("pm")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let r = approx_query(
        &plan,
        &cat,
        &ApproxOptions {
            seed: 3,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.aggs[0].estimate.abs() < 60.0);
    assert!(r.aggs[0].variance.unwrap() > 0.0);
    // Exact answer 0 should be inside the Chebyshev interval.
    assert!(r.aggs[0].ci_chebyshev.as_ref().unwrap().contains(0.0));
}

#[test]
fn aliased_same_table_join_is_analyzable() {
    // Self-join *with aliases* is allowed by the engine (distinct lineage
    // names); the paper's ban is on shared lineage, which aliasing avoids
    // at the cost of treating the two scans as independent relations.
    let cat = catalog();
    let plan = LogicalPlan::scan_as("t", "a")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .join_on(
            LogicalPlan::scan_as("t", "b").sample(SamplingMethod::Bernoulli { p: 0.5 }),
            col("a.k").eq(col("b.k")),
        )
        .aggregate(vec![AggSpec::count_star("n")]);
    let analysis = rewrite(&plan, &cat).unwrap();
    assert_eq!(analysis.schema.n(), 2);
    assert!((analysis.gus.a() - 0.25).abs() < 1e-12);
    // Executes fine too.
    let r = approx_query(&plan, &cat, &ApproxOptions::default()).unwrap();
    assert!(r.aggs[0].estimate >= 0.0);
}

#[test]
fn wor_of_entire_table_is_exact() {
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Wor { size: 100 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let r = approx_query(&plan, &cat, &ApproxOptions::default()).unwrap();
    let exact = exact_query(&plan, &cat).unwrap()[0];
    assert!((r.aggs[0].estimate - exact).abs() < 1e-9);
    assert!(r.aggs[0].variance.unwrap() < 1e-6);
}

#[test]
fn quantile_on_count_and_avg() {
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .aggregate(vec![
            AggSpec::count_star("n").with_quantile(0.9),
            AggSpec::avg(col("v"), "a").with_quantile(0.9),
        ]);
    let r = approx_query(&plan, &cat, &ApproxOptions::default()).unwrap();
    for a in &r.aggs {
        let q = a.quantile_bound.unwrap();
        assert!(q >= a.estimate, "0.9-quantile below the point estimate");
    }
}

#[test]
fn zero_probability_sampler_estimate_degenerate() {
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.0 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    // a = 0: nothing can be estimated; surfaced as an error, not a panic.
    assert!(approx_query(&plan, &cat, &ApproxOptions::default()).is_err());
}
