//! Seeded chaos suite: deterministic fault injection against the full
//! serving stack. Pins the robustness invariants:
//!
//! - a worker panic at a chunk boundary is contained: the query completes
//!   `reason=degraded` (scalar AND grouped), no poisoned lock escapes, and
//!   admission slots / shared-scan cursors all return to zero;
//! - a hard deadline cancels-and-reports the last valid snapshot;
//! - transient injected I/O faults are retried and leave the estimate
//!   byte-identical to a fault-free run (`f64::to_bits`);
//! - a torn page surfaces as a typed corruption error, never a panic;
//! - with no faults armed, repeated seeded runs are byte-identical;
//! - everything injected is visible in the metrics dump.
//!
//! The failpoint registry is process-global, so every test here holds one
//! static mutex (with poison recovery — a failing chaos test must not
//! wedge its siblings).

use std::sync::Mutex;
use std::time::Duration;

use sampling_algebra::fault;
use sampling_algebra::prelude::*;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// `t(k, v)`: `rows` rows, v cycling 1..=7 (mean 4.0), k cycling 0..10.
fn catalog(rows: i64) -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for i in 0..rows {
        b.push_row(&[Value::Int(i % 10), Value::Float(1.0 + (i % 7) as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

const SUM: &str = "SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)";
const GROUPED_SUM: &str = "SELECT k, SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT) GROUP BY k";

#[test]
fn worker_panic_degrades_scalar_query_and_releases_everything() {
    let _g = guard();
    fault::reset();
    let engine = Engine::builder(catalog(50_000))
        .metrics(true)
        .shared_scans(true)
        .build();
    fault::install("worker.chunk.panic=hit:3", 1).unwrap();
    let run = engine
        .session()
        .query(SUM)
        .seed(1)
        .jobs(4)
        .chunk_rows(512)
        .run();
    fault::reset();
    let run = run.unwrap();
    assert_eq!(run.reason, StopReason::Degraded, "{:?}", run.reason);
    let Snapshot::Scalar(s) = &run.snapshot else {
        panic!("scalar query");
    };
    assert!(s.aggs[0].estimate.is_finite());
    // The contained panic must give back the admission slot and any scan
    // cursor, and must be counted.
    assert_eq!(engine.active_queries(), 0);
    let attached = engine.scan_stats("t").map_or(0, |st| st.attached);
    assert_eq!(attached, 0, "degraded query leaked a scan cursor");
    assert!(
        engine
            .metrics()
            .counter("sa_worker_panics_contained_total")
            .unwrap_or(0)
            >= 1
    );
    assert_eq!(
        engine
            .metrics()
            .counter("sa_queries_finished_total{reason=\"degraded\"}"),
        Some(1)
    );
    // No poisoned lock escaped: the same engine must serve the next query
    // (same shards, same pools) to clean exhaustion.
    let clean = engine
        .session()
        .query(SUM)
        .seed(2)
        .jobs(4)
        .chunk_rows(512)
        .run()
        .unwrap();
    assert_eq!(clean.reason, StopReason::Exhausted);
}

#[test]
fn worker_panic_degrades_grouped_query_too() {
    let _g = guard();
    fault::reset();
    let engine = Engine::builder(catalog(50_000)).metrics(true).build();
    fault::install("worker.chunk.panic=hit:4", 2).unwrap();
    let run = engine
        .session()
        .query(GROUPED_SUM)
        .seed(3)
        .jobs(4)
        .chunk_rows(512)
        .run();
    fault::reset();
    let run = run.unwrap();
    assert_eq!(run.reason, StopReason::Degraded, "{:?}", run.reason);
    let Snapshot::Grouped(s) = &run.snapshot else {
        panic!("grouped query");
    };
    for g in &s.groups {
        assert!(g.aggs[0].estimate.is_finite());
    }
    assert_eq!(engine.active_queries(), 0);
    let clean = engine
        .session()
        .query(GROUPED_SUM)
        .seed(4)
        .jobs(4)
        .run()
        .unwrap();
    assert_eq!(clean.reason, StopReason::Exhausted);
    let Snapshot::Grouped(s) = &clean.snapshot else {
        panic!("grouped query");
    };
    assert_eq!(s.groups.len(), 10);
}

#[test]
fn deadline_cancels_and_reports_the_last_valid_snapshot() {
    let _g = guard();
    fault::reset();
    let engine = Engine::builder(catalog(800_000)).metrics(true).build();
    let run = engine
        .session()
        .query(SUM)
        .seed(5)
        .chunk_rows(512)
        .deadline(Duration::from_millis(1))
        .run()
        .unwrap();
    assert_eq!(run.reason, StopReason::Deadline, "{:?}", run.reason);
    let Snapshot::Scalar(s) = &run.snapshot else {
        panic!("scalar query");
    };
    // The deadline fired mid-scan: a strict prefix was absorbed, and the
    // readout over it is a well-formed estimate (Prop 8 — the prefix is a
    // WOR(consumed, N) sample; see docs/estimation-notes.md §9).
    assert!(s.rows > 0, "deadline before the first chunk");
    assert!(s.aggs[0].estimate.is_finite());
    assert!(s.aggs[0].ci_normal.is_some());
    assert_eq!(
        engine
            .metrics()
            .counter("sa_queries_finished_total{reason=\"deadline\"}"),
        Some(1)
    );
    assert_eq!(engine.active_queries(), 0);
}

/// With nothing armed, a seeded run is a pure function of (query, seed):
/// rerunning must reproduce the estimate to the bit.
#[test]
fn failpoints_disabled_runs_are_byte_identical() {
    let _g = guard();
    fault::reset();
    let estimate = |seed: u64| -> u64 {
        let engine = Engine::builder(catalog(20_000)).build();
        let run = engine
            .session()
            .query(SUM)
            .seed(seed)
            .chunk_rows(512)
            .run()
            .unwrap();
        assert_eq!(run.reason, StopReason::Exhausted);
        let Snapshot::Scalar(s) = &run.snapshot else {
            panic!("scalar query");
        };
        s.aggs[0].estimate.to_bits()
    };
    assert_eq!(estimate(11), estimate(11));
    assert_ne!(estimate(11), estimate(12), "different seeds, same sample?");
}

/// Benign fault sites (latency, retried transient I/O) perturb timing but
/// never data: the estimate stays byte-identical to the fault-free run,
/// which existing suites pin equal to the batch estimator on the same
/// realized sample.
#[test]
fn retried_and_delayed_faults_leave_the_estimate_byte_identical() {
    let _g = guard();
    fault::reset();
    let run_once = || -> u64 {
        let engine = Engine::builder(catalog(20_000)).build();
        let run = engine
            .session()
            .query(SUM)
            .seed(21)
            .chunk_rows(512)
            .run()
            .unwrap();
        assert_eq!(run.reason, StopReason::Exhausted);
        let Snapshot::Scalar(s) = &run.snapshot else {
            panic!("scalar query");
        };
        s.aggs[0].estimate.to_bits()
    };
    let clean = run_once();

    let retries_before = sampling_algebra::storage::retries_total();
    fault::install(
        "storage.page_read.io=hit:1,storage.page_read.latency=hit:2",
        21,
    )
    .unwrap();
    let faulted = run_once();
    let fired = fault::total_fired();
    fault::reset();
    assert!(fired >= 2, "both sites should have fired, got {fired}");
    assert!(
        sampling_algebra::storage::retries_total() > retries_before,
        "the transient i/o fault must go through the retry path"
    );
    assert_eq!(
        clean, faulted,
        "benign faults must not change the realized estimate"
    );
}

#[test]
fn torn_page_surfaces_as_a_typed_error_not_a_panic() {
    let _g = guard();
    fault::reset();
    let engine = Engine::builder(catalog(20_000)).metrics(true).build();
    fault::install("storage.page_read.torn=hit:1", 31).unwrap();
    let result = engine.session().query(SUM).seed(31).run();
    fault::reset();
    let err = result.expect_err("a torn page must fail the query");
    let msg = err.to_string().to_lowercase();
    assert!(msg.contains("corrupt") || msg.contains("torn"), "{msg}");
    assert_eq!(engine.active_queries(), 0, "failed query leaked its slot");
    // The engine survives: the next query runs clean.
    let clean = engine.session().query(SUM).seed(32).run().unwrap();
    assert_eq!(clean.reason, StopReason::Exhausted);
}

/// A persistent (non-transient) I/O fault exhausts the bounded retries and
/// surfaces as a typed I/O error.
#[test]
fn persistent_io_fault_exhausts_retries_into_a_typed_error() {
    let _g = guard();
    fault::reset();
    let engine = Engine::builder(catalog(20_000)).build();
    fault::install("storage.page_read.io=1.0", 41).unwrap();
    let result = engine.session().query(SUM).seed(41).run();
    fault::reset();
    let err = result.expect_err("a persistent i/o fault must fail the query");
    let msg = err.to_string();
    assert!(msg.contains("i/o fault persisted"), "{msg}");
    assert_eq!(engine.active_queries(), 0);
}

/// Everything injected is observable: site counters and storage retry /
/// corruption totals ride along in the Prometheus dump.
#[test]
fn injected_faults_surface_in_the_metrics_dump() {
    let _g = guard();
    fault::reset();
    let engine = Engine::builder(catalog(20_000)).metrics(true).build();
    fault::install("storage.page_read.latency=hit:1", 51).unwrap();
    let run = engine.session().query(SUM).seed(51).run();
    let dump = engine.render_prometheus();
    fault::reset();
    run.unwrap();
    assert!(dump.contains("sa_storage_read_retries_total"), "{dump}");
    assert!(dump.contains("sa_storage_corrupt_pages_total"), "{dump}");
    assert!(
        dump.contains("sa_fault_site_evals_total{site=\"storage.page_read.latency\"}"),
        "{dump}"
    );
    assert!(
        dump.contains("sa_fault_site_fired_total{site=\"storage.page_read.latency\"} 1"),
        "{dump}"
    );
}
