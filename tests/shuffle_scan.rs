//! Scan-order robustness: the opt-in seeded shuffled scan.
//!
//! Online aggregation's population scaling treats the scanned prefix as a
//! without-replacement draw from the table — an assumption a physically
//! *sorted* table violates as badly as possible. These tests pin both
//! sides of the trade: on a value-sorted table, mid-scan intervals keep
//! missing the truth until `shuffle_scan` restores the random-order
//! assumption, and the shuffled scan itself stays byte-reproducible per
//! seed, composes with union plans and partitioned workers, and bypasses
//! shared-scan hubs instead of corrupting them.

use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use sampling_algebra::prelude::*;

/// A worst-case table for prefix scaling: 20 000 rows whose values grow
/// with physical position (`v = i`), in 64-row blocks so the shuffle has
/// enough blocks to permute. `SUM(v)` truth is 19 999·20 000/2.
fn sorted_catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema).with_block_rows(64);
    for i in 0..20_000 {
        b.push_row(&[Value::Int(i % 10), Value::Float(i as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

const TRUTH: f64 = 19_999.0 * 20_000.0 / 2.0;

fn sum_plan(p: f64) -> LogicalPlan {
    LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p })
        .aggregate(vec![AggSpec::sum(col("v"), "s")])
}

fn mid_scan_covers(engine: &Engine, seed: u64, shuffle: bool) -> bool {
    let r = engine
        .session()
        .query_plan(&sum_plan(0.5))
        .seed(seed)
        .chunk_rows(256)
        .confidence(0.99)
        .rows(1000)
        .shuffle_scan(shuffle)
        .run()
        .unwrap();
    assert_eq!(r.reason, StopReason::RowBudget, "seed {seed} ran dry");
    let Snapshot::Scalar(s) = r.snapshot else {
        panic!()
    };
    assert!(
        s.progress.iter().any(|&(c, a)| c < a),
        "seed {seed} exhausted the scan"
    );
    s.aggs[0]
        .ci_chebyshev
        .as_ref()
        .is_some_and(|ci| ci.contains(TRUTH))
}

/// The adversarial case the shuffle exists for: on a value-sorted table a
/// mid-scan 99% Chebyshev interval almost never contains the truth under
/// the physical scan order (the prefix only saw the smallest values), and
/// almost always does once the block order is shuffled.
#[test]
fn sorted_table_mid_scan_needs_the_shuffle() {
    let engine = Engine::new(sorted_catalog());
    let physical: u32 = (0..10)
        .filter(|&s| mid_scan_covers(&engine, s, false))
        .count() as u32;
    let shuffled: u32 = (0..10)
        .filter(|&s| mid_scan_covers(&engine, s, true))
        .count() as u32;
    assert!(
        physical <= 2,
        "physical order covered {physical}/10 on a sorted table — the \
         adversarial setup lost its teeth"
    );
    assert!(shuffled >= 8, "shuffled order covered only {shuffled}/10");
}

/// `(seed, shuffle_scan)` fully determines the run: two identical
/// invocations produce bit-identical snapshot sequences, and a different
/// seed produces a different one.
#[test]
fn shuffled_replays_are_byte_identical() {
    let engine = Engine::new(sorted_catalog());
    let trace = |seed: u64| {
        let mut snaps: Vec<(u64, u64)> = Vec::new();
        engine
            .session()
            .query_plan(&sum_plan(0.5))
            .seed(seed)
            .chunk_rows(256)
            .rows(1500)
            .shuffle_scan(true)
            .run_with(|s| {
                if let Snapshot::Scalar(p) = s {
                    snaps.push((p.rows, p.aggs[0].estimate.to_bits()));
                }
            })
            .unwrap();
        snaps
    };
    let a = trace(7);
    let b = trace(7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must replay byte-identically");
    assert_ne!(a, trace(8), "different seeds must shuffle differently");
}

/// The shuffle composes with a `UnionSamples` plan: every branch scans the
/// same permuted block order, dedup still works on physical lineage, and
/// the mid-scan interval covers the truth on the sorted table.
#[test]
fn shuffle_composes_with_union_plans() {
    let engine = Engine::new(sorted_catalog());
    let branch = || LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.3 });
    let plan = branch()
        .union_samples(branch())
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let mut covered = 0u32;
    for seed in 0..10u64 {
        let r = engine
            .session()
            .query_plan(&plan)
            .seed(seed)
            .chunk_rows(256)
            .confidence(0.99)
            .rows(1200)
            .shuffle_scan(true)
            .run()
            .unwrap();
        assert_eq!(r.reason, StopReason::RowBudget);
        let Snapshot::Scalar(s) = r.snapshot else {
            panic!()
        };
        if s.aggs[0]
            .ci_chebyshev
            .as_ref()
            .is_some_and(|ci| ci.contains(TRUTH))
        {
            covered += 1;
        }
    }
    assert!(covered >= 8, "union+shuffle covered only {covered}/10");
}

/// `--jobs N` slices the shuffled block permutation across workers: the
/// run completes, stays deterministic per seed, and the exhaustive
/// estimate lands on the truth's scale (it is a plain Bernoulli sample of
/// the whole table, just gathered in a different order).
#[test]
fn shuffle_composes_with_partitioned_workers() {
    let engine = Engine::new(sorted_catalog());
    let run = || {
        let r = engine
            .session()
            .query_plan(&sum_plan(0.5))
            .seed(13)
            .chunk_rows(512)
            .jobs(3)
            .shuffle_scan(true)
            .run()
            .unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        let Snapshot::Scalar(s) = r.snapshot else {
            panic!()
        };
        s.aggs[0].estimate
    };
    let e1 = run();
    assert_eq!(
        e1.to_bits(),
        run().to_bits(),
        "parallel shuffle must replay"
    );
    assert!(
        (e1 - TRUTH).abs() < 0.05 * TRUTH,
        "exhaustive estimate {e1} vs truth {TRUTH}"
    );
}

/// A shuffled query on a shared-scan engine silently takes a private
/// stream instead of the sequential broadcast hub — the hub is never even
/// created — so co-running physical-order queries keep their bus.
#[test]
fn shuffle_bypasses_shared_scan_hubs() {
    let engine = Engine::builder(sorted_catalog()).shared_scans(true).build();
    let r = engine
        .session()
        .query_plan(&sum_plan(0.5))
        .seed(3)
        .rows(1000)
        .shuffle_scan(true)
        .run()
        .unwrap();
    assert_eq!(r.reason, StopReason::RowBudget);
    assert!(
        engine.scan_stats("t").is_none(),
        "shuffled query must not open a shared-scan hub"
    );
    // A physical-order query on the same engine still rides the hub.
    engine
        .session()
        .query_plan(&sum_plan(0.5))
        .seed(3)
        .rows(1000)
        .run()
        .unwrap();
    assert!(engine.scan_stats("t").is_some());
}
