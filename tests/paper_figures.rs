//! Integration tests pinning every number the paper prints (Figures 1–5,
//! Examples 1–6) through the *public* API: SQL text → parser → binder →
//! SOA rewriter → GUS coefficients.
//!
//! The paper prints 4 significant digits; assertions use matching absolute
//! tolerances.

use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use sampling_algebra::prelude::*;
use sampling_algebra::sampling::measure_single_relation;

/// Catalog with the paper's cardinalities: orders = 150 000 (Example 1).
fn paper_catalog() -> Catalog {
    let mut c = Catalog::new();
    let mk = |name: &str, key: &str, rows: u64| {
        let schema = Schema::new(vec![
            Field::new(key, DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new(name, schema);
        b.reserve(rows as usize);
        for i in 0..rows {
            b.push_row(&[Value::Int((i % 1000) as i64), Value::Float(1.0)])
                .unwrap();
        }
        b.finish().unwrap()
    };
    c.register(mk("lineitem", "l_orderkey", 6000)).unwrap();
    c.register(mk("orders", "o_orderkey", 150_000)).unwrap();
    c.register(mk("customer", "c_custkey", 1000)).unwrap();
    c.register(mk("part", "p_partkey", 1000)).unwrap();
    c
}

#[test]
fn figure1_bernoulli_closed_form_and_empirical() {
    // Closed form: a = p, b_∅ = p², b_R = p.
    let g = GusParams::bernoulli("r", 0.1).unwrap();
    assert!((g.a() - 0.1).abs() < 1e-12);
    assert!((g.b(RelSet::EMPTY) - 0.01).abs() < 1e-12);
    assert!((g.b(RelSet::singleton(0)) - 0.1).abs() < 1e-12);

    // Empirical: run the actual sampler and measure.
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
    let mut b = TableBuilder::new("r", schema);
    for i in 0..100 {
        b.push_row(&[Value::Int(i)]).unwrap();
    }
    let table = b.finish().unwrap();
    let emp =
        measure_single_relation(&SamplingMethod::Bernoulli { p: 0.1 }, &table, 20_000, 1).unwrap();
    assert!((emp.a - 0.1).abs() < 0.01, "a = {}", emp.a);
    assert!((emp.b_empty - 0.01).abs() < 0.005, "b_∅ = {}", emp.b_empty);
}

#[test]
fn figure1_wor_closed_form_and_empirical() {
    // Closed form with the paper's numbers: WOR(1000, 150000).
    let g = GusParams::wor("o", 1000, 150_000).unwrap();
    assert!((g.a() - 6.667e-3).abs() < 1e-6);
    assert!((g.b(RelSet::EMPTY) - 4.44e-5).abs() < 1e-7);
    assert!((g.b(RelSet::singleton(0)) - 6.667e-3).abs() < 1e-6);

    // Empirical at a small scale: WOR(10, 100).
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
    let mut b = TableBuilder::new("o", schema);
    for i in 0..100 {
        b.push_row(&[Value::Int(i)]).unwrap();
    }
    let table = b.finish().unwrap();
    let emp =
        measure_single_relation(&SamplingMethod::Wor { size: 10 }, &table, 20_000, 2).unwrap();
    assert!((emp.a - 0.1).abs() < 0.01);
    let b_expect = 10.0 * 9.0 / (100.0 * 99.0);
    assert!((emp.b_empty - b_expect).abs() < 0.004);
}

#[test]
fn example1_and_3_query1_via_sql() {
    // The introduction's query, straight through the SQL front-end.
    let catalog = paper_catalog();
    let plan = plan_sql(
        "SELECT SUM(lineitem.v) \
         FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) \
         WHERE l_orderkey = o_orderkey AND lineitem.v > 0.0",
        &catalog,
    )
    .unwrap();
    let analysis = rewrite(&plan, &catalog).unwrap();
    let g = &analysis.gus;
    let b = |names: &[&str]| g.b_named(names).unwrap();
    // Example 1/3 gold values.
    assert!((g.a() - 6.667e-4).abs() < 1e-7);
    assert!((b(&[]) - 4.44e-7).abs() < 5e-10);
    assert!((b(&["orders"]) - 6.667e-5).abs() < 5e-8);
    assert!((b(&["lineitem"]) - 4.44e-6).abs() < 5e-9);
    assert!((b(&["lineitem", "orders"]) - 6.667e-4).abs() < 1e-7);
}

#[test]
fn example2_single_method_gus_translations() {
    // Example 2: the two sampling methods of Query 1 as GUS.
    // B(0.1) on lineitem: a=0.1, b_∅=0.01, b_l=0.1.
    let gb = GusParams::bernoulli("l", 0.1).unwrap();
    assert!((gb.a() - 0.1).abs() < 1e-12);
    assert!((gb.b_named::<&str>(&[]).unwrap() - 0.01).abs() < 1e-12);
    assert!((gb.b_named(&["l"]).unwrap() - 0.1).abs() < 1e-12);
    // WOR(1000/150000): a=6.667e-3, b_∅=4.44e-5, b_o=6.667e-3.
    let gw = GusParams::wor("o", 1000, 150_000).unwrap();
    assert!((gw.a() - 6.667e-3).abs() < 1e-6);
    assert!((gw.b_named::<&str>(&[]).unwrap() - 4.44e-5).abs() < 1e-7);
    assert!((gw.b_named(&["o"]).unwrap() - 6.667e-3).abs() < 1e-6);
}

#[test]
fn figure4_example4_full_coefficient_table() {
    // The four-relation plan of Figure 4, built via the plan API with the
    // exact sampling methods of the figure, checked against all 16 printed
    // b-coefficients of G(a₁₂₃).
    let catalog = paper_catalog();
    let plan = LogicalPlan::scan("lineitem")
        .sample(SamplingMethod::Bernoulli { p: 0.1 })
        .join_on(
            LogicalPlan::scan("orders").sample(SamplingMethod::Wor { size: 1000 }),
            col("l_orderkey").eq(col("o_orderkey")),
        )
        .join_on(LogicalPlan::scan("customer"), lit(true))
        .join_on(
            LogicalPlan::scan("part").sample(SamplingMethod::Bernoulli { p: 0.5 }),
            lit(true),
        )
        .aggregate(vec![AggSpec::sum(col("lineitem.v"), "s")]);
    let analysis = rewrite(&plan, &catalog).unwrap();
    let g = &analysis.gus;
    let b = |names: &[&str]| g.b_named(names).unwrap();

    let gold: &[(&[&str], f64)] = &[
        (&[], 1.11e-7),
        (&["part"], 2.22e-7),
        (&["customer"], 1.11e-7),
        (&["customer", "part"], 2.22e-7),
        (&["orders"], 1.667e-5),
        (&["orders", "part"], 3.335e-5),
        (&["orders", "customer"], 1.667e-5),
        (&["orders", "customer", "part"], 3.335e-5),
        (&["lineitem"], 1.11e-6),
        (&["lineitem", "part"], 2.22e-6),
        (&["lineitem", "customer"], 1.11e-6),
        (&["lineitem", "customer", "part"], 2.22e-6),
        (&["lineitem", "orders"], 1.667e-4),
        (&["lineitem", "orders", "part"], 3.334e-4),
        (&["lineitem", "orders", "customer"], 1.667e-4),
        (&["lineitem", "orders", "customer", "part"], 3.334e-4),
    ];
    assert!((g.a() - 3.334e-4).abs() < 1e-7, "a = {}", g.a());
    for (names, expect) in gold {
        let got = b(names);
        assert!(
            (got - expect).abs() < 1.5e-3 * expect,
            "b{names:?} = {got:.4e}, expected {expect:.4e}"
        );
    }

    // The intermediate G(a₁₂) of Figure 4 (after the first join).
    let g12 = GusParams::bernoulli("lineitem", 0.1)
        .unwrap()
        .join(&GusParams::wor("orders", 1000, 150_000).unwrap())
        .unwrap();
    assert!((g12.a() - 6.667e-4).abs() < 1e-7);
    assert!((g12.b_named::<&str>(&[]).unwrap() - 4.44e-7).abs() < 5e-10);
}

#[test]
fn example5_bidimensional_bernoulli_composition() {
    // B(0.2, 0.3) via composition: a₃=0.06, b₃∅=0.0036, b₃o=0.012,
    // b₃l=0.018, b₃lo=0.06.
    let g = GusParams::bernoulli("l", 0.2)
        .unwrap()
        .compose(&GusParams::bernoulli("o", 0.3).unwrap())
        .unwrap();
    let b = |names: &[&str]| g.b_named(names).unwrap();
    assert!((g.a() - 0.06).abs() < 1e-12);
    assert!((b(&[]) - 0.0036).abs() < 1e-12);
    assert!((b(&["o"]) - 0.012).abs() < 1e-12);
    assert!((b(&["l"]) - 0.018).abs() < 1e-12);
    assert!((b(&["l", "o"]) - 0.06).abs() < 1e-12);
}

#[test]
fn figure5_example6_subsampled_plan_coefficients() {
    // Figure 5: Query 1's G(a₁₂) compacted with the bi-dimensional
    // B(0.2, 0.3) sub-sampler → G(a₁₂₃) with a=4e-5, b∅=1.598e-9,
    // b_o=8e-7, b_l=7.992e-8, b_lo=4e-5.
    let g12 = GusParams::bernoulli("l", 0.1)
        .unwrap()
        .join(&GusParams::wor("o", 1000, 150_000).unwrap())
        .unwrap();
    let schema = g12.schema().clone();
    let sub = LineageBernoulli::new(schema, &[0.2, 0.3], 7).unwrap();
    let g123 = g12.compact(&sub.gus()).unwrap();
    let b = |names: &[&str]| g123.b_named(names).unwrap();
    assert!((g123.a() - 4.0e-5).abs() < 1e-8, "a = {}", g123.a());
    assert!((b(&[]) - 1.598e-9).abs() < 2e-12, "b∅ = {:e}", b(&[]));
    assert!((b(&["o"]) - 8.0e-7).abs() < 1e-9);
    assert!((b(&["l"]) - 7.992e-8).abs() < 1e-10);
    assert!((b(&["l", "o"]) - 4.0e-5).abs() < 1e-8);
    assert!(g123.is_proper());
}

#[test]
fn figure2_rewrite_trace_mirrors_the_three_stages() {
    // Figure 2: (a) sampling operators → (b) GUS quasi-operators →
    // (c) single top GUS. The trace must show translation then join-merge.
    let catalog = paper_catalog();
    let plan = plan_sql(
        "SELECT SUM(lineitem.v) \
         FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) \
         WHERE l_orderkey = o_orderkey",
        &catalog,
    )
    .unwrap();
    let analysis = rewrite(&plan, &catalog).unwrap();
    use sampling_algebra::plan::Rule;
    let rules: Vec<Rule> = analysis.trace.steps.iter().map(|s| s.rule).collect();
    let first_translate = rules
        .iter()
        .position(|r| *r == Rule::TranslateSampling)
        .unwrap();
    let join_merge = rules.iter().position(|r| *r == Rule::JoinCommute).unwrap();
    assert!(first_translate < join_merge);
    // Final GUS is the one the figure derives.
    assert!((analysis.gus.a() - 6.667e-4).abs() < 1e-7);
}
