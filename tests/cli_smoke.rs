//! Smoke tests for the `sa` shell binary: one-shot queries, grouped output,
//! and the interactive command loop over a pipe.

use std::io::Write;
use std::process::{Command, Stdio};

fn sa() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_sa"));
    c.arg("--tpch").arg("0.001").arg("--seed").arg("7");
    c
}

/// Wall-clock columns differ run to run; drop them, compare the rest.
fn strip_times(s: &str) -> String {
    s.lines()
        .map(|l| {
            let t = l.trim_end();
            if t.ends_with("ms)") {
                // "stopped: … (N ms)" → drop the parenthetical.
                t.rsplit_once(" (").map(|(h, _)| h).unwrap_or(t).to_string()
            } else if t.ends_with("ms") {
                // snapshot line → drop the trailing elapsed column.
                t.rsplit_once(' ').map(|(h, _)| h).unwrap_or(t).to_string()
            } else {
                t.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn one_shot_scalar_query() {
    let out = sa()
        .arg("--query")
        .arg("SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (20 PERCENT)")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("estimate"), "{stdout}");
    assert!(stdout.contains('q'), "{stdout}");
    assert!(stdout.contains("normal"), "{stdout}");
}

#[test]
fn one_shot_grouped_query() {
    let out = sa()
        .arg("--query")
        .arg(
            "SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (30 PERCENT) \
             GROUP BY l_returnflag",
        )
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("observed groups"), "{stdout}");
    // All three return flags should appear at 30%.
    for flag in ["A", "N", "R"] {
        assert!(stdout.contains(flag), "missing group {flag}: {stdout}");
    }
}

#[test]
fn interactive_commands() {
    let mut child = sa()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("piped stdin");
    writeln!(stdin, "\\tables").unwrap();
    writeln!(stdin, "\\seed 9").unwrap();
    writeln!(
        stdin,
        "SELECT COUNT(*) AS n FROM orders TABLESAMPLE (50 PERCENT);"
    )
    .unwrap();
    writeln!(stdin, "\\exact SELECT COUNT(*) AS n FROM orders").unwrap();
    writeln!(
        stdin,
        "\\trace SELECT COUNT(*) FROM orders TABLESAMPLE (50 PERCENT)"
    )
    .unwrap();
    writeln!(stdin, "\\quit").unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lineitem"), "{stdout}"); // \tables
    assert!(stdout.contains("seed = 9"), "{stdout}");
    assert!(stdout.contains("estimate"), "{stdout}");
    assert!(stdout.contains("exact"), "{stdout}");
    assert!(stdout.contains("rewrite steps"), "{stdout}"); // \trace
    assert!(stdout.contains("top GUS"), "{stdout}");
}

#[test]
fn jobs_flag_drives_parallel_online_query() {
    // The shard-parallel path end to end: --jobs 4 must run the online
    // query to a stop and print the same summary shape as --jobs 1.
    let out = Command::new(env!("CARGO_BIN_EXE_sa"))
        .args([
            "--tpch", "0.002", "--seed", "7", "--chunk", "600", "--jobs", "4", "--online",
        ])
        .arg("--query")
        .arg(
            "SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (60 PERCENT) \
             WITHIN 5 PERCENT CONFIDENCE 95",
        )
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stopped: ci-converged"), "{stdout}");
    assert!(stdout.contains("final normal CI"), "{stdout}");
}

#[test]
fn jobs_zero_flag_rejected() {
    let out = sa()
        .args(["--jobs", "0", "--online"])
        .arg("--query")
        .arg("SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (20 PERCENT)")
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "--jobs 0 must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jobs"), "{stderr}");
}

#[test]
fn interactive_jobs_command() {
    let mut child = sa()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("piped stdin");
    writeln!(stdin, "\\jobs 0").unwrap(); // rejected, session survives
    writeln!(stdin, "\\jobs 2").unwrap();
    writeln!(
        stdin,
        "\\online SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (40 PERCENT)"
    )
    .unwrap();
    writeln!(stdin, "\\quit").unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\\jobs needs a positive worker count"),
        "{stdout}"
    );
    assert!(stdout.contains("jobs = 2 workers"), "{stdout}");
    assert!(stdout.contains("stopped: exhausted"), "{stdout}");
}

#[test]
fn one_shot_online_query_with_stopping_rule() {
    // Deterministic workload (fixed --seed): the ε/δ rule must fire before
    // the 60% sample drains, and the run must say so.
    let out = Command::new(env!("CARGO_BIN_EXE_sa"))
        .args([
            "--tpch", "0.002", "--seed", "7", "--chunk", "600", "--online",
        ])
        .arg("--query")
        .arg(
            "SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (60 PERCENT) \
             WITHIN 5 PERCENT CONFIDENCE 95",
        )
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stopped: ci-converged"), "{stdout}");
    // Live progress lines: header plus at least two snapshots.
    assert!(stdout.contains("±half-width"), "{stdout}");
    assert!(stdout.matches("ms").count() >= 2, "{stdout}");
    assert!(stdout.contains("final normal CI"), "{stdout}");
    // Reproducible: the same seed gives byte-identical progress.
    let again = Command::new(env!("CARGO_BIN_EXE_sa"))
        .args([
            "--tpch", "0.002", "--seed", "7", "--chunk", "600", "--online",
        ])
        .arg("--query")
        .arg(
            "SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (60 PERCENT) \
             WITHIN 5 PERCENT CONFIDENCE 95",
        )
        .output()
        .expect("binary runs");
    assert_eq!(
        strip_times(&stdout),
        strip_times(&String::from_utf8_lossy(&again.stdout))
    );
}

#[test]
fn one_shot_online_grouped_query_with_per_group_stopping() {
    // GROUP BY + WITHIN: live per-group snapshot tables, per-group stopping,
    // and byte-identical output across two runs with the same seed.
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_sa"))
            .args([
                "--tpch", "0.002", "--seed", "42", "--chunk", "800", "--online",
            ])
            .arg("--query")
            .arg(
                "SELECT l_returnflag, SUM(l_quantity) AS q \
                 FROM lineitem TABLESAMPLE (30 PERCENT) \
                 GROUP BY l_returnflag \
                 WITHIN 10 PERCENT CONFIDENCE 95",
            )
            .output()
            .expect("binary runs")
    };
    let out = run();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Live per-group snapshot tables: chunk headers plus one line per group.
    assert!(stdout.contains("groups (+"), "{stdout}");
    assert!(stdout.contains("worst rel"), "{stdout}");
    for flag in ["A", "N", "R"] {
        assert!(
            stdout.matches(&format!("\n    {flag}")).count() >= 2,
            "expected repeated snapshot lines for group {flag}: {stdout}"
        );
    }
    // Per-group stopping fired before exhaustion, and the summary table
    // reports every group.
    assert!(stdout.contains("stopped: ci-converged"), "{stdout}");
    assert!(stdout.contains("final normal CI"), "{stdout}");
    assert!(stdout.contains("(3 observed groups)"), "{stdout}");
    // Reproducible: the same seed gives byte-identical progress.
    let again = run();
    assert_eq!(
        strip_times(&stdout),
        strip_times(&String::from_utf8_lossy(&again.stdout))
    );
}

#[test]
fn chunk_zero_flag_rejected() {
    // Regression: `--chunk 0` must be rejected at the CLI boundary with a
    // clear error instead of degenerating the pull loop into 1-row chunks.
    let out = Command::new(env!("CARGO_BIN_EXE_sa"))
        .args(["--tpch", "0.001", "--chunk", "0", "--online"])
        .arg("--query")
        .arg("SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (20 PERCENT)")
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "--chunk 0 must fail");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("positive row count"), "{stderr}");
}

#[test]
fn interactive_chunk_zero_rejected_and_session_survives() {
    // Regression: `\chunk 0` is refused, the previous chunk size stays in
    // effect, and the shell keeps working.
    let mut child = sa()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("piped stdin");
    writeln!(stdin, "\\chunk 500").unwrap();
    writeln!(stdin, "\\chunk 0").unwrap();
    writeln!(
        stdin,
        "\\online SELECT COUNT(*) AS n FROM orders TABLESAMPLE (80 PERCENT)"
    )
    .unwrap();
    writeln!(stdin, "\\quit").unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chunk = 500"), "{stdout}");
    assert!(stdout.contains("positive row count"), "{stdout}");
    assert!(stdout.contains("stopped: exhausted"), "{stdout}");
}

#[test]
fn interactive_online_command() {
    let mut child = sa()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("piped stdin");
    writeln!(stdin, "\\chunk 500").unwrap();
    writeln!(
        stdin,
        "\\online SELECT COUNT(*) AS n FROM orders TABLESAMPLE (80 PERCENT)"
    )
    .unwrap();
    writeln!(stdin, "\\online SELECT nope FROM nothing").unwrap();
    writeln!(stdin, "\\quit").unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chunk = 500"), "{stdout}");
    // No accuracy clause → the loop drains the sample.
    assert!(stdout.contains("stopped: exhausted"), "{stdout}");
    assert!(stdout.contains("final normal CI"), "{stdout}");
    // Errors are values; the shell survives them.
    assert!(stdout.contains("error:"), "{stdout}");
}

#[test]
fn bad_sql_reports_error_and_continues() {
    let mut child = sa()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("piped stdin");
    writeln!(stdin, "SELECT FROM nothing").unwrap();
    writeln!(
        stdin,
        "SELECT COUNT(*) AS n FROM orders TABLESAMPLE (10 PERCENT);"
    )
    .unwrap();
    writeln!(stdin, "\\quit").unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error:"), "{stdout}");
    assert!(stdout.contains("estimate"), "survived the error: {stdout}");
}
