//! Smoke tests for the `sa` shell binary: one-shot queries, grouped output,
//! and the interactive command loop over a pipe.

use std::io::Write;
use std::process::{Command, Stdio};

fn sa() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_sa"));
    c.arg("--tpch").arg("0.001").arg("--seed").arg("7");
    c
}

#[test]
fn one_shot_scalar_query() {
    let out = sa()
        .arg("--query")
        .arg("SELECT SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (20 PERCENT)")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("estimate"), "{stdout}");
    assert!(stdout.contains('q'), "{stdout}");
    assert!(stdout.contains("normal"), "{stdout}");
}

#[test]
fn one_shot_grouped_query() {
    let out = sa()
        .arg("--query")
        .arg(
            "SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem TABLESAMPLE (30 PERCENT) \
             GROUP BY l_returnflag",
        )
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("observed groups"), "{stdout}");
    // All three return flags should appear at 30%.
    for flag in ["A", "N", "R"] {
        assert!(stdout.contains(flag), "missing group {flag}: {stdout}");
    }
}

#[test]
fn interactive_commands() {
    let mut child = sa()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("piped stdin");
    writeln!(stdin, "\\tables").unwrap();
    writeln!(stdin, "\\seed 9").unwrap();
    writeln!(
        stdin,
        "SELECT COUNT(*) AS n FROM orders TABLESAMPLE (50 PERCENT);"
    )
    .unwrap();
    writeln!(stdin, "\\exact SELECT COUNT(*) AS n FROM orders").unwrap();
    writeln!(
        stdin,
        "\\trace SELECT COUNT(*) FROM orders TABLESAMPLE (50 PERCENT)"
    )
    .unwrap();
    writeln!(stdin, "\\quit").unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lineitem"), "{stdout}"); // \tables
    assert!(stdout.contains("seed = 9"), "{stdout}");
    assert!(stdout.contains("estimate"), "{stdout}");
    assert!(stdout.contains("exact"), "{stdout}");
    assert!(stdout.contains("rewrite steps"), "{stdout}"); // \trace
    assert!(stdout.contains("top GUS"), "{stdout}");
}

#[test]
fn bad_sql_reports_error_and_continues() {
    let mut child = sa()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("piped stdin");
    writeln!(stdin, "SELECT FROM nothing").unwrap();
    writeln!(
        stdin,
        "SELECT COUNT(*) AS n FROM orders TABLESAMPLE (10 PERCENT);"
    )
    .unwrap();
    writeln!(stdin, "\\quit").unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error:"), "{stdout}");
    assert!(stdout.contains("estimate"), "survived the error: {stdout}");
}
