//! Pushdown actually prunes — pinned through the scan observability
//! counters, not timings.
//!
//! A two-column query over a 16-column table must gather exactly the two
//! needed segments (`sa_scan_cols_gathered_total`, counted once per
//! logical scan, so the pin is `--jobs`-independent); a selective
//! predicate fused into the scan must drop its rows *before* batch
//! materialization (`rows_gathered < rows_scanned`) and skip whole pages
//! whose rows all fail (`pages_skipped > 0`). All of it holds on both
//! backends — in-RAM and memory-mapped — sequentially and at 4 workers,
//! and the engine surfaces the same counters end to end.

use std::sync::OnceLock;

use sampling_algebra::exec::{open_stream_partitioned, ExecOptions, ScanObs};
use sampling_algebra::online::Registry;
use sampling_algebra::prelude::*;
use sampling_algebra::storage::{open_catalog_dir, persist_catalog};

const ROWS: i64 = 2048;
const BLOCK: usize = 64;

/// `w`: 16 Int columns over 2048 rows, block size 64. `c3` is the block
/// ordinal (constant within a block, so an equality predicate on it keeps
/// exactly one 64-row block); `c11` varies per row.
fn build_catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(
        (0..16)
            .map(|i| Field::new(format!("c{i}"), DataType::Int))
            .collect(),
    )
    .unwrap();
    let mut b = TableBuilder::new("w", schema).with_block_rows(BLOCK);
    for i in 0..ROWS {
        let row: Vec<Value> = (0..16)
            .map(|col| match col {
                3 => Value::Int(i / BLOCK as i64),
                11 => Value::Int(i),
                _ => Value::Int(col * 1000 + i % 7),
            })
            .collect();
        b.push_row(&row).unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

fn mapped_catalog() -> Catalog {
    static DIR: OnceLock<std::path::PathBuf> = OnceLock::new();
    let dir = DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("sa-scan-pushdown-{}", std::process::id()));
        persist_catalog(&build_catalog(), &dir).unwrap();
        dir
    });
    open_catalog_dir(dir).unwrap()
}

/// `SELECT c11 FROM w WHERE c3 = 5` as a stream plan: reads columns
/// {3, 11} of 16, keeps exactly one block's 64 rows.
fn two_col_plan() -> LogicalPlan {
    LogicalPlan::scan("w")
        .filter(col("c3").eq(lit(5i64)))
        .project(vec![(col("c11"), "x".into())])
}

/// Drain `plan` over `catalog` with `jobs` workers and a live scan-obs
/// registry; returns (rows yielded, metrics snapshot).
fn drain(
    catalog: &Catalog,
    plan: &LogicalPlan,
    jobs: usize,
) -> (usize, sampling_algebra::online::MetricsSnapshot) {
    let registry = Registry::new();
    let opts = ExecOptions {
        seed: 7,
        scan_obs: ScanObs::new(&registry),
        ..Default::default()
    };
    let streams = open_stream_partitioned(plan, catalog, &opts, jobs).unwrap();
    let mut rows = 0;
    for s in streams {
        rows += s.collect_rows(100).unwrap().len();
    }
    (rows, registry.snapshot())
}

#[test]
fn two_column_query_gathers_two_segments_and_skips_failed_pages() {
    for catalog in [build_catalog(), mapped_catalog()] {
        for jobs in [1usize, 4] {
            let (rows, m) = drain(&catalog, &two_col_plan(), jobs);
            // The predicate keeps exactly block 5: 64 of 2048 rows.
            assert_eq!(rows, BLOCK, "jobs={jobs}");
            // 2 of 16 column segments, counted once per logical scan —
            // identical at any worker count.
            assert_eq!(
                m.counter("sa_scan_cols_gathered_total"),
                Some(2),
                "jobs={jobs}"
            );
            // Every row had its chance; only the survivors were ever
            // materialized into a batch.
            assert_eq!(
                m.counter("sa_scan_rows_scanned_total"),
                Some(ROWS as u64),
                "jobs={jobs}"
            );
            assert_eq!(
                m.counter("sa_scan_rows_gathered_total"),
                Some(BLOCK as u64),
                "jobs={jobs}"
            );
            // 31 of 32 blocks hold no survivor: whole pages are skipped.
            let skipped = m.counter("sa_scan_pages_skipped_total").unwrap();
            assert!(skipped > 0, "jobs={jobs}: expected page skips, got 0");
        }
    }
}

/// Without a predicate the scan still prunes columns but gathers every row
/// — `rows_gathered == rows_scanned` separates projection pruning from
/// predicate pushdown in the counters.
#[test]
fn projection_only_prunes_columns_not_rows() {
    let plan = LogicalPlan::scan("w").project(vec![(col("c11"), "x".into())]);
    for catalog in [build_catalog(), mapped_catalog()] {
        let (rows, m) = drain(&catalog, &plan, 1);
        assert_eq!(rows, ROWS as usize);
        assert_eq!(m.counter("sa_scan_cols_gathered_total"), Some(1));
        assert_eq!(m.counter("sa_scan_rows_scanned_total"), Some(ROWS as u64));
        assert_eq!(m.counter("sa_scan_rows_gathered_total"), Some(ROWS as u64));
        assert_eq!(m.counter("sa_scan_pages_skipped_total"), Some(0));
    }
}

/// `disable_pushdown` restores the unpruned scan: all 16 segments, every
/// row materialized — and the realized output is identical either way.
#[test]
fn disabling_pushdown_gathers_everything_with_identical_output() {
    let plan = two_col_plan();
    let catalog = mapped_catalog();
    let registry = Registry::new();
    let off = ExecOptions {
        seed: 7,
        disable_pushdown: true,
        scan_obs: ScanObs::new(&registry),
        ..Default::default()
    };
    let rows_off: Vec<_> = open_stream_partitioned(&plan, &catalog, &off, 1)
        .unwrap()
        .remove(0)
        .collect_rows(100)
        .unwrap();
    let m = registry.snapshot();
    assert_eq!(m.counter("sa_scan_cols_gathered_total"), Some(16));
    assert_eq!(m.counter("sa_scan_rows_gathered_total"), Some(ROWS as u64));

    let on = ExecOptions {
        seed: 7,
        ..Default::default()
    };
    let rows_on: Vec<_> = open_stream_partitioned(&plan, &catalog, &on, 1)
        .unwrap()
        .remove(0)
        .collect_rows(100)
        .unwrap();
    assert_eq!(rows_on, rows_off);
}

/// The engine wires the same counters end to end: an aggregate over two of
/// sixteen columns, driven at `--jobs 4` over the mapped backend, reports
/// the pruned gather in its metrics surface.
#[test]
fn engine_reports_pruned_gather_at_jobs_4() {
    let plan = LogicalPlan::scan("w")
        .filter(col("c3").eq(lit(5i64)))
        .aggregate(vec![AggSpec::sum(col("c11"), "s")]);
    for catalog in [build_catalog(), mapped_catalog()] {
        let engine = Engine::builder(catalog).metrics(true).build();
        let r = engine
            .session()
            .query_plan(&plan)
            .seed(3)
            .jobs(4)
            .run()
            .unwrap();
        // Block 5 holds c11 = 320..384: SUM = 64 * (320 + 383) / 2.
        let agg = &r.snapshot.as_scalar().unwrap().aggs[0];
        assert_eq!(agg.estimate, (320..384).sum::<i64>() as f64);
        let m = engine.metrics();
        assert_eq!(m.counter("sa_scan_cols_gathered_total"), Some(2));
        assert_eq!(m.counter("sa_scan_rows_scanned_total"), Some(ROWS as u64));
        assert_eq!(m.counter("sa_scan_rows_gathered_total"), Some(64));
        assert!(m.counter("sa_scan_pages_skipped_total").unwrap() > 0);
    }
}
