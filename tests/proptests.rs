#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Property-based tests (proptest) on the invariants DESIGN.md §5 lists:
//! algebra laws of GUS parameters, Möbius transform identities, estimator
//! invariances, and a differential test of the rewriter against direct
//! algebra evaluation.

use proptest::prelude::*;

use sa_core::coeffs::{moebius_transform, moebius_transform_naive, zeta_transform};
use sa_core::{GroupedMomentAccumulator, GroupedMoments, LineageSchema, MomentAccumulator};
use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder};
use sampling_algebra::exec::{agg_results_from_report, approx_group_query, layout_dims};
use sampling_algebra::expr::{bind, eval};
use sampling_algebra::prelude::*;

const TOL: f64 = 1e-9;

/// Strategy: a random single-relation GUS over the given name — Bernoulli or
/// WOR with valid parameters.
fn single_gus(name: &'static str) -> impl Strategy<Value = GusParams> {
    prop_oneof![
        (0.01f64..=1.0).prop_map(move |p| GusParams::bernoulli(name, p).unwrap()),
        (1u64..=50, 50u64..=500)
            .prop_map(move |(n, cap)| GusParams::wor(name, n.min(cap), cap).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn algebra_ops_preserve_validity(g in single_gus("a"), h in single_gus("a")) {
        for combined in [g.compact(&h).unwrap(), g.union(&h).unwrap()] {
            prop_assert!(combined.a() >= 0.0 && combined.a() <= 1.0);
            for t in 0..(1u32 << combined.n()) {
                let b = combined.b(RelSet::from_bits(t));
                prop_assert!((0.0..=1.0).contains(&b), "b = {b}");
            }
            prop_assert!(combined.is_proper(), "b_full != a: {combined}");
        }
    }

    #[test]
    fn compact_and_union_are_commutative(g in single_gus("a"), h in single_gus("a")) {
        prop_assert!(g.compact(&h).unwrap().approx_eq(&h.compact(&g).unwrap(), TOL));
        prop_assert!(g.union(&h).unwrap().approx_eq(&h.union(&g).unwrap(), TOL));
    }

    #[test]
    fn compact_and_union_are_associative(
        g in single_gus("a"),
        h in single_gus("a"),
        k in single_gus("a"),
    ) {
        let left = g.compact(&h).unwrap().compact(&k).unwrap();
        let right = g.compact(&h.compact(&k).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, TOL));
        let left = g.union(&h).unwrap().union(&k).unwrap();
        let right = g.union(&h.union(&k).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, TOL));
    }

    #[test]
    fn semiring_identities_and_absorption(g in single_gus("a")) {
        let id = GusParams::identity(g.schema().clone());
        let null = GusParams::null(g.schema().clone());
        // G(1,1̄) is neutral for compaction; G(0,0̄) neutral for union.
        prop_assert!(g.compact(&id).unwrap().approx_eq(&g, TOL));
        prop_assert!(g.union(&null).unwrap().approx_eq(&g, TOL));
        // G(0,0̄) absorbs under compaction; G(1,1̄) absorbs under union.
        prop_assert!(g.compact(&null).unwrap().approx_eq(&null, TOL));
        prop_assert!(g.union(&id).unwrap().approx_eq(&id, TOL));
    }

    #[test]
    fn join_is_commutative_up_to_relabeling(g in single_gus("a"), h in single_gus("b")) {
        let gh = g.join(&h).unwrap();
        let hg = h.join(&g).unwrap();
        // Schemas differ in order; compare named coefficients.
        prop_assert!((gh.a() - hg.a()).abs() < TOL);
        for names in [vec![], vec!["a"], vec!["b"], vec!["a", "b"]] {
            prop_assert!(
                (gh.b_named(&names).unwrap() - hg.b_named(&names).unwrap()).abs() < TOL
            );
        }
    }

    #[test]
    fn moebius_fast_matches_naive_and_roundtrips(
        b in prop::collection::vec(0.0f64..1.0, 8usize)
    ) {
        let fast = moebius_transform(&b);
        let naive = moebius_transform_naive(&b);
        for (x, y) in fast.iter().zip(&naive) {
            prop_assert!((x - y).abs() < 1e-10);
        }
        let back = zeta_transform(&fast);
        for (x, y) in back.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-10);
        }
        // Telescoping: Σ_S c_S = b_full.
        let total: f64 = fast.iter().sum();
        prop_assert!((total - b[7]).abs() < 1e-9);
    }

    #[test]
    fn estimator_scales_quadratically_in_f(
        scale in 0.1f64..10.0,
        values in prop::collection::vec(-100.0f64..100.0, 5..40),
    ) {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let run = |lambda: f64| {
            let mut sbox = SBox::new(gus.clone());
            for (i, v) in values.iter().enumerate() {
                sbox.push_scalar(&[i as u64], lambda * v).unwrap();
            }
            sbox.finish().unwrap()
        };
        let base = run(1.0);
        let scaled = run(scale);
        prop_assert!(
            (scaled.estimate[0] - scale * base.estimate[0]).abs()
                < 1e-9 * (1.0 + base.estimate[0].abs() * scale)
        );
        let (vb, vs) = (base.raw_variance(0).unwrap(), scaled.raw_variance(0).unwrap());
        prop_assert!(
            (vs - scale * scale * vb).abs() < 1e-6 * (1.0 + vb.abs() * scale * scale),
            "var {vs} vs λ²·{vb}"
        );
    }

    #[test]
    fn estimator_is_permutation_invariant(
        mut rows in prop::collection::vec((0u64..20, 0u64..20, -50.0f64..50.0), 1..60),
        rot in 0usize..59,
    ) {
        let gus = GusParams::bernoulli("x", 0.5)
            .unwrap()
            .join(&GusParams::bernoulli("y", 0.5).unwrap())
            .unwrap();
        let run = |rows: &[(u64, u64, f64)]| {
            let mut sbox = SBox::new(gus.clone());
            for (x, y, f) in rows {
                sbox.push_scalar(&[*x, *y], *f).unwrap();
            }
            sbox.finish().unwrap()
        };
        let before = run(&rows);
        let k = rot % rows.len();
        rows.rotate_left(k);
        let after = run(&rows);
        prop_assert!((before.estimate[0] - after.estimate[0]).abs() < 1e-9);
        prop_assert!(
            (before.raw_variance(0).unwrap() - after.raw_variance(0).unwrap()).abs()
                < 1e-6 * (1.0 + before.raw_variance(0).unwrap().abs())
        );
    }

    #[test]
    fn rewriter_matches_direct_algebra(
        p1 in 0.05f64..1.0,
        p2 in 0.05f64..1.0,
        wor_size in 1u64..100,
    ) {
        // Random 3-relation plan: B(p1)(r0) ⋈ WOR(wor)(r1) ⋈ B(p2)(r2);
        // the rewriter must agree with direct algebra composition.
        let mut catalog = Catalog::new();
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).unwrap();
        for name in ["r0", "r1", "r2"] {
            let mut b = TableBuilder::new(name, schema.clone());
            for j in 0..100i64 {
                b.push_row(&[sa_storage::Value::Int(j)]).unwrap();
            }
            catalog.register(b.finish().unwrap()).unwrap();
        }
        let plan = LogicalPlan::scan("r0")
            .sample(SamplingMethod::Bernoulli { p: p1 })
            .join_on(
                LogicalPlan::scan("r1").sample(SamplingMethod::Wor { size: wor_size }),
                lit(true),
            )
            .join_on(
                LogicalPlan::scan("r2").sample(SamplingMethod::Bernoulli { p: p2 }),
                lit(true),
            )
            .aggregate(vec![AggSpec::count_star("c")]);
        let analysis = rewrite(&plan, &catalog).unwrap();
        let direct = GusParams::bernoulli("r0", p1)
            .unwrap()
            .join(&GusParams::wor("r1", wor_size, 100).unwrap())
            .unwrap()
            .join(&GusParams::bernoulli("r2", p2).unwrap())
            .unwrap();
        prop_assert!(analysis.gus.approx_eq(&direct, 1e-9));
    }

    #[test]
    fn grouped_moments_merge_order_free(
        rows in prop::collection::vec((0u64..5, -10.0f64..10.0), 0..40)
    ) {
        // y_S computed in one pass equals y_S computed from sorted input.
        let run = |rows: &[(u64, f64)]| {
            let mut acc = GroupedMoments::new(1, 1);
            for (id, f) in rows {
                acc.push_scalar(&[*id], *f).unwrap();
            }
            acc.finish()
        };
        let a = run(&rows);
        let mut sorted = rows.clone();
        sorted.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.total_cmp(&y.1)));
        let b = run(&sorted);
        for s in 0..2u32 {
            let (ya, yb) = (
                a.y_scalar(RelSet::from_bits(s)),
                b.y_scalar(RelSet::from_bits(s)),
            );
            prop_assert!((ya - yb).abs() < 1e-7 * (1.0 + ya.abs()));
        }
    }

    #[test]
    fn incremental_accumulator_matches_batch_for_any_chunk_split(
        rows in prop::collection::vec((0u64..8, 0u64..8, -20.0f64..20.0), 0..80),
        cuts in prop::collection::vec(0usize..80, 0..6),
        shard_cut in 0usize..80,
    ) {
        // Batch: every row through one GroupedMoments pass.
        let gus = GusParams::bernoulli("x", 0.4)
            .unwrap()
            .join(&GusParams::bernoulli("y", 0.7).unwrap())
            .unwrap();
        let mut batch = GroupedMoments::new(2, 1);
        for (x, y, f) in &rows {
            batch.push_scalar(&[*x, *y], *f).unwrap();
        }
        let batch_report = sa_core::estimate_from_sample_moments(&gus, &batch.finish()).unwrap();

        // Incremental: the same rows in arbitrary chunk splits…
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (rows.len() + 1)).collect();
        bounds.push(0);
        bounds.push(rows.len());
        bounds.sort_unstable();
        let mut inc = MomentAccumulator::new(2, 1);
        for w in bounds.windows(2) {
            for (x, y, f) in &rows[w[0]..w[1]] {
                inc.push_scalar(&[*x, *y], *f).unwrap();
            }
        }
        // …and a two-shard split merged back together.
        let k = shard_cut % (rows.len() + 1);
        let mut left = MomentAccumulator::new(2, 1);
        for (x, y, f) in &rows[..k] {
            left.push_scalar(&[*x, *y], *f).unwrap();
        }
        let mut right = MomentAccumulator::new(2, 1);
        for (x, y, f) in &rows[k..] {
            right.push_scalar(&[*x, *y], *f).unwrap();
        }
        left.merge(&right).unwrap();

        for acc in [inc, left] {
            let report = sa_core::estimate_from_sample_moments(&gus, &acc.snapshot()).unwrap();
            prop_assert!(
                (report.estimate[0] - batch_report.estimate[0]).abs()
                    <= 1e-9 * (1.0 + batch_report.estimate[0].abs())
            );
            let (vi, vb) = (
                report.raw_variance(0).unwrap(),
                batch_report.raw_variance(0).unwrap(),
            );
            prop_assert!((vi - vb).abs() <= 1e-9 * (1.0 + vb.abs()), "{vi} vs {vb}");
            // The raw moments agree subset by subset, too.
            let (mi, mb) = (acc.snapshot(), {
                let mut b = GroupedMoments::new(2, 1);
                for (x, y, f) in &rows {
                    b.push_scalar(&[*x, *y], *f).unwrap();
                }
                b.finish()
            });
            for s in 0..4u32 {
                let (yi, yb) = (
                    mi.y_scalar(RelSet::from_bits(s)),
                    mb.y_scalar(RelSet::from_bits(s)),
                );
                prop_assert!((yi - yb).abs() <= 1e-9 * (1.0 + yb.abs()), "y[{s}]: {yi} vs {yb}");
            }
        }
    }

    /// Any shard partition of a streamed plan — every worker's rows pushed
    /// into its own accumulator, shards merged in worker order — equals the
    /// sequential accumulator fed the same rows, to 1e-9: the invariant the
    /// shard-parallel online driver rests on.
    #[test]
    fn partitioned_plan_shards_merge_to_the_sequential_accumulator(
        parts in 1usize..6,
        seed in 0u64..500,
        p in 0.2f64..0.9,
        hint in 1usize..300,
    ) {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
        let mut b = TableBuilder::new("t", schema).with_block_rows(32);
        for i in 0..400 {
            b.push_row(&[Value::Float(((i * 37) % 101) as f64 - 50.0)]).unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p });
        let streams = sampling_algebra::exec::open_stream_partitioned(
            &plan, &c, &ExecOptions { seed, ..Default::default() }, parts,
        ).unwrap();
        let mut merged = MomentAccumulator::new(1, 1);
        let mut all_rows = Vec::new();
        for s in streams {
            let rows = s.collect_rows(hint).unwrap();
            let mut shard = MomentAccumulator::new(1, 1);
            for row in &rows {
                shard.push_scalar(&row.lineage, row.values[0].as_f64().unwrap()).unwrap();
            }
            merged.merge(&shard).unwrap();
            all_rows.extend(rows);
        }
        let mut sequential = MomentAccumulator::new(1, 1);
        for row in &all_rows {
            sequential.push_scalar(&row.lineage, row.values[0].as_f64().unwrap()).unwrap();
        }
        let (ms, mm) = (sequential.snapshot(), merged.snapshot());
        prop_assert_eq!(mm.count, ms.count);
        for s in 0..2u32 {
            let (ym, ys) = (
                mm.y_scalar(sa_core::RelSet::from_bits(s)),
                ms.y_scalar(sa_core::RelSet::from_bits(s)),
            );
            prop_assert!((ym - ys).abs() <= TOL * (1.0 + ys.abs()), "y[{}]: {} vs {}", s, ym, ys);
        }
        let gus = GusParams::bernoulli("t", p).unwrap();
        let (rm, rs) = (
            sa_core::estimate_from_sample_moments(&gus, &mm).unwrap(),
            sa_core::estimate_from_sample_moments(&gus, &ms).unwrap(),
        );
        prop_assert!(
            (rm.estimate[0] - rs.estimate[0]).abs() <= TOL * (1.0 + rs.estimate[0].abs())
        );
    }

    #[test]
    fn grouped_accumulator_matches_batch_grouped_query(
        p in 0.2f64..1.0,
        seed in 0u64..1000,
        cuts in prop::collection::vec(0usize..400, 0..6),
        shard_cut in 0usize..400,
    ) {
        // t(g, v): 9 groups with varying sizes and values.
        let mut catalog = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..300i64 {
            b.push_row(&[
                sa_storage::Value::Int((i * i) % 9),
                sa_storage::Value::Float(((i % 13) - 6) as f64),
            ])
            .unwrap();
        }
        catalog.register(b.finish().unwrap()).unwrap();
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p })
            .aggregate(vec![AggSpec::sum(col("v"), "s"), AggSpec::count_star("n")]);

        // The batch grouped driver's answer…
        let batch = approx_group_query(
            &plan,
            &[col("g")],
            &catalog,
            &ApproxOptions { seed, confidence: 0.95, subsample_target: None },
        )
        .unwrap();
        // …and the SAME realized sample as raw rows (approx_group_query
        // executes the aggregate input with this very seed).
        let LogicalPlan::Aggregate { aggs, input } = &plan else { unreachable!() };
        let rs = execute(input, &catalog, &ExecOptions { seed, ..Default::default() }).unwrap();
        let layout = layout_dims(aggs, &rs.schema).unwrap();
        let key_expr = bind(&col("g"), &rs.schema).unwrap();
        let keyed: Vec<(Vec<sa_storage::Value>, &sa_exec::Row)> = rs
            .rows
            .iter()
            .map(|row| (vec![eval(&key_expr, &row.values).unwrap()], row))
            .collect();

        // Incremental: arbitrary chunk boundaries into one accumulator…
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (keyed.len() + 1)).collect();
        bounds.push(0);
        bounds.push(keyed.len());
        bounds.sort_unstable();
        let dims = layout.dims();
        let mut inc: GroupedMomentAccumulator<Vec<sa_storage::Value>> =
            GroupedMomentAccumulator::new(1, dims);
        for w in bounds.windows(2) {
            for (key, row) in &keyed[w[0]..w[1]] {
                inc.push(key.clone(), &row.lineage, &sa_exec::f_vector(&layout, row).unwrap())
                    .unwrap();
            }
        }
        // …and a two-shard split merged back together.
        let k = shard_cut % (keyed.len() + 1);
        let mut left: GroupedMomentAccumulator<Vec<sa_storage::Value>> =
            GroupedMomentAccumulator::new(1, dims);
        for (key, row) in &keyed[..k] {
            left.push(key.clone(), &row.lineage, &sa_exec::f_vector(&layout, row).unwrap())
                .unwrap();
        }
        let mut right: GroupedMomentAccumulator<Vec<sa_storage::Value>> =
            GroupedMomentAccumulator::new(1, dims);
        for (key, row) in &keyed[k..] {
            right.push(key.clone(), &row.lineage, &sa_exec::f_vector(&layout, row).unwrap())
                .unwrap();
        }
        left.merge(&right).unwrap();

        let gus = &batch.analysis.gus;
        for acc in [&inc, &left] {
            prop_assert_eq!(acc.group_count(), batch.groups.len());
            for g in &batch.groups {
                let report = acc.report_group(&g.key, gus).expect("group present").unwrap();
                let incs = agg_results_from_report(aggs, &layout, &report, 0.95);
                for (a_inc, a_batch) in incs.iter().zip(&g.aggs) {
                    prop_assert!(
                        (a_inc.estimate - a_batch.estimate).abs()
                            <= 1e-9 * (1.0 + a_batch.estimate.abs()),
                        "{:?}/{}: {} vs {}", g.key, a_batch.name, a_inc.estimate, a_batch.estimate
                    );
                    if let (Some(vi), Some(vb)) = (a_inc.variance, a_batch.variance) {
                        prop_assert!(
                            (vi - vb).abs() <= 1e-9 * (1.0 + vb.abs()),
                            "{:?}/{}: var {} vs {}", g.key, a_batch.name, vi, vb
                        );
                    }
                }
                prop_assert_eq!(acc.group(&g.key).unwrap().count(), g.sample_rows);
            }
        }
    }

    #[test]
    fn subsets_iterator_counts(mask in 0u32..64) {
        let s = RelSet::from_bits(mask);
        let subs: Vec<RelSet> = s.subsets().collect();
        prop_assert_eq!(subs.len(), 1usize << s.len());
        for t in &subs {
            prop_assert!(t.is_subset_of(s));
        }
    }

    #[test]
    fn lineage_bernoulli_gus_is_proper(
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let schema = LineageSchema::new(&["x", "y"]).unwrap();
        let f = LineageBernoulli::new(schema, &[p1, p2], seed).unwrap();
        let g = f.gus();
        prop_assert!(g.is_proper());
        prop_assert!((g.a() - p1 * p2).abs() < 1e-12);
    }

    #[test]
    fn exact_variance_nonnegative_for_real_samplers(
        p in 0.05f64..1.0,
        values in prop::collection::vec(-50.0f64..50.0, 1..50),
    ) {
        // Theorem 1 evaluated on exact population moments is a true
        // variance: it can never be negative.
        let gus = GusParams::bernoulli("r", p).unwrap();
        let mut acc = GroupedMoments::new(1, 1);
        for (i, v) in values.iter().enumerate() {
            acc.push_scalar(&[i as u64], *v).unwrap();
        }
        let var = sa_core::exact_variance(&gus, &acc.finish(), 0);
        prop_assert!(var >= -1e-7, "negative exact variance {var}");
    }
}
