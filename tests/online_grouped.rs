#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Grouped online aggregation end to end: statistical coverage of the
//! per-group confidence intervals under skew, and the acceptance pin for
//! `GROUP BY … WITHIN ε PERCENT CONFIDENCE γ` — early stopping once every
//! group meets the target, batch-equality at forced exhaustion.

use sampling_algebra::expr::{bind, eval};
use sampling_algebra::online::{run_online_grouped, run_online_grouped_sql, GroupedOnlineOptions};
use sampling_algebra::prelude::*;
use sampling_algebra::sql::plan_online_grouped_sql;
use sampling_algebra::tpch::Zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A Zipf-skewed grouped table: 4000 rows, 6 groups drawn Zipf(θ = 1.5)
/// (group 0 holds roughly half the rows, group 5 a few percent), values
/// cycling 1..=7 within every group. Returns the catalog and the true
/// per-group SUM of `v`.
fn zipf_catalog() -> (Catalog, Vec<f64>) {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let zipf = Zipf::new(6, 1.5);
    let mut rng = StdRng::seed_from_u64(20_130_826); // fixed data realization
    let mut truth = vec![0.0f64; 6];
    let mut b = TableBuilder::new("t", schema);
    for i in 0..4000 {
        let g = zipf.sample(&mut rng);
        let v = 1.0 + (i % 7) as f64;
        truth[g] += v;
        b.push_row(&[Value::Int(g as i64), Value::Float(v)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    (c, truth)
}

/// Satellite: 100 seeded trials over the Zipf-skewed table under Bernoulli
/// sampling; at least 96% of the per-group 99%-Chebyshev intervals must
/// cover the true group SUMs (the same bar the scalar estimator meets in
/// `tests/estimator_statistics.rs`).
#[test]
fn per_group_chebyshev_coverage_under_zipf_skew() {
    let (catalog, truth) = zipf_catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.4 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let trials = 100u64;
    let mut intervals = 0u64;
    let mut covered = 0u64;
    for seed in 0..trials {
        let opts = GroupedOnlineOptions {
            online: OnlineOptions {
                seed,
                chunk_rows: 1024,
                confidence: 0.99,
                ..Default::default()
            },
            ci_top_k: None,
        };
        let r = run_online_grouped(&plan, &[col("g")], &catalog, &opts, |_| {}).unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        for g in &r.snapshot.groups {
            let id = g.key[0].as_i64().unwrap() as usize;
            let ci = g.aggs[0].ci_chebyshev.as_ref().unwrap();
            intervals += 1;
            if ci.contains(truth[id]) {
                covered += 1;
            }
        }
    }
    // 6 groups × 100 trials, minus the occasional unseen rare group.
    assert!(
        intervals >= 550,
        "only {intervals} group intervals observed"
    );
    let rate = covered as f64 / intervals as f64;
    assert!(
        rate >= 0.96,
        "99% Chebyshev per-group coverage {rate:.3} ({covered}/{intervals})"
    );
}

/// Acceptance: the issue's TPC-H query runs online, stops before exhaustion
/// once every group meets the 5%/95% target.
#[test]
fn acceptance_query_stops_early_once_every_group_converges() {
    let catalog = generate(&TpchConfig::scale(0.02).with_seed(42));
    let opts = GroupedOnlineOptions {
        online: OnlineOptions {
            seed: 42,
            chunk_rows: 2000,
            ..Default::default()
        },
        ci_top_k: None,
    };
    let mut snapshots = 0u64;
    let r = run_online_grouped_sql(
        "SELECT l_returnflag, SUM(l_extendedprice) AS s \
         FROM lineitem TABLESAMPLE (10 PERCENT) \
         GROUP BY l_returnflag \
         WITHIN 5 PERCENT CONFIDENCE 95",
        &catalog,
        &opts,
        |_| snapshots += 1,
    )
    .unwrap();
    assert_eq!(r.reason, StopReason::CiConverged);
    assert_eq!(snapshots, r.chunks);
    assert_eq!(r.snapshot.groups.len(), 3, "A, N, R");
    for g in &r.snapshot.groups {
        assert!(g.converged, "{:?} had not converged", g.key);
        assert!(g.rel_half_width.unwrap() <= 0.05, "{:?}", g.key);
    }
    let (consumed, available) = r.snapshot.progress[0];
    assert!(
        consumed < available,
        "stopped before exhaustion: {consumed}/{available}"
    );
    // Sanity: each flag's true SUM is inside the final 95% interval ~always
    // at this sample size; assert the looser Chebyshev interval to keep the
    // test deterministic-robust.
    let (plan, group_by, _) = plan_online_grouped_sql(
        "SELECT l_returnflag, SUM(l_extendedprice) AS s FROM lineitem \
         GROUP BY l_returnflag",
        &catalog,
    )
    .unwrap();
    let exact = sampling_algebra::exec::exact_group_query(&plan, &group_by, &catalog).unwrap();
    for g in &r.snapshot.groups {
        let truth = exact[&g.key][0];
        let ci = g.aggs[0].ci_chebyshev.as_ref().unwrap();
        assert!(ci.contains(truth), "{:?}: {ci} misses {truth}", g.key);
    }
}

/// Acceptance: at forced exhaustion each group's online estimate equals the
/// batch grouped estimator on the same realized sample within 1e-9.
#[test]
fn acceptance_query_matches_batch_grouped_estimator_at_exhaustion() {
    let catalog = generate(&TpchConfig::scale(0.02).with_seed(42));
    let (plan, group_by, _) = plan_online_grouped_sql(
        "SELECT l_returnflag, SUM(l_extendedprice) AS s \
         FROM lineitem TABLESAMPLE (10 PERCENT) \
         GROUP BY l_returnflag \
         WITHIN 5 PERCENT CONFIDENCE 95",
        &catalog,
    )
    .unwrap();
    // Force exhaustion: ignore the SQL rule, run the plan-level driver dry.
    let opts = GroupedOnlineOptions {
        online: OnlineOptions {
            seed: 9,
            chunk_rows: 1500,
            rule: StoppingRule::exhaustive(),
            ..Default::default()
        },
        ci_top_k: None,
    };
    let online = run_online_grouped(&plan, &group_by, &catalog, &opts, |_| {}).unwrap();
    assert_eq!(online.reason, StopReason::Exhausted);

    // Batch grouped estimation over the SAME sample realization: collect
    // the stream and run per-group batch moments under the plan GUS.
    let LogicalPlan::Aggregate { aggs, input } = &plan else {
        unreachable!()
    };
    let mut stream = sampling_algebra::exec::open_stream(
        input,
        &catalog,
        &sampling_algebra::exec::ExecOptions {
            seed: 9,
            ..Default::default()
        },
    )
    .unwrap();
    let layout = sampling_algebra::exec::layout_dims(aggs, stream.schema()).unwrap();
    let keys: Vec<Expr> = group_by
        .iter()
        .map(|e| bind(e, stream.schema()).unwrap())
        .collect();
    let mut batch: std::collections::BTreeMap<Vec<Value>, sampling_algebra::core::GroupedMoments> =
        Default::default();
    loop {
        let chunk = stream.next_chunk(8192).unwrap();
        if chunk.is_empty() {
            break;
        }
        for row in &chunk {
            let key: Vec<Value> = keys.iter().map(|e| eval(e, &row.values).unwrap()).collect();
            batch
                .entry(key)
                .or_insert_with(|| sampling_algebra::core::GroupedMoments::new(1, layout.dims()))
                .push(
                    &row.lineage,
                    &sampling_algebra::exec::f_vector(&layout, row).unwrap(),
                )
                .unwrap();
        }
    }
    assert_eq!(batch.len(), online.snapshot.groups.len());
    for g in &online.snapshot.groups {
        let moments = batch.remove(&g.key).expect("group in both").finish();
        let report =
            sampling_algebra::core::estimate_from_sample_moments(&online.analysis.gus, &moments)
                .unwrap();
        let (eo, eb) = (g.aggs[0].estimate, report.estimate[0]);
        assert!(
            (eo - eb).abs() <= 1e-9 * (1.0 + eb.abs()),
            "{:?}: online {eo} vs batch {eb}",
            g.key
        );
        let (vo, vb) = (g.aggs[0].variance.unwrap(), report.variance(0).unwrap());
        assert!(
            (vo - vb).abs() <= 1e-9 * (1.0 + vb.abs()),
            "{:?}: online var {vo} vs batch var {vb}",
            g.key
        );
        assert_eq!(g.sample_rows, moments.count);
    }
}
