#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Proposition 7 end to end: the `UnionSamples` plan operator — combining
//! two independent samples of the same expression, deduplicated by lineage,
//! analyzed with the union formula
//! `a = a₁+a₂−a₁a₂`, `b_T = 2a−1+(1−2a₁+b₁_T)(1−2a₂+b₂_T)`.

use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use sampling_algebra::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for i in 0..1500 {
        b.push_row(&[Value::Int(i % 30), Value::Float(1.0 + (i % 5) as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    let schema = Schema::new(vec![
        Field::new("dk", DataType::Int),
        Field::new("w", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("d", schema);
    for i in 0..30 {
        b.push_row(&[Value::Int(i), Value::Float(2.0)]).unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

fn union_plan(p1: f64, p2: f64) -> LogicalPlan {
    let branch = |p: f64| LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p });
    branch(p1)
        .union_samples(branch(p2))
        .aggregate(vec![AggSpec::sum(col("v"), "s")])
}

#[test]
fn union_gus_matches_proposition7() {
    let cat = catalog();
    let analysis = rewrite(&union_plan(0.2, 0.5), &cat).unwrap();
    let direct = GusParams::bernoulli("t", 0.2)
        .unwrap()
        .union(&GusParams::bernoulli("t", 0.5).unwrap())
        .unwrap();
    assert!((analysis.gus.a() - direct.a()).abs() < 1e-12);
    assert!((analysis.gus.a() - 0.6).abs() < 1e-12); // 0.2+0.5−0.1
    assert!(analysis.gus.is_proper());
    use sampling_algebra::plan::Rule;
    assert!(analysis
        .trace
        .steps
        .iter()
        .any(|s| s.rule == Rule::UnionSamples));
}

#[test]
fn union_execution_deduplicates_by_lineage() {
    let cat = catalog();
    let LogicalPlan::Aggregate { input, .. } = union_plan(0.6, 0.6) else {
        panic!()
    };
    let rs = execute(
        &input,
        &cat,
        &ExecOptions {
            seed: 5,
            ..Default::default()
        },
    )
    .unwrap();
    // No duplicate lineage.
    let mut ids: Vec<u64> = rs.rows.iter().map(|r| r.lineage[0]).collect();
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), before, "duplicates survived the union");
    // Keep rate ≈ 1−0.4² = 0.84.
    let rate = before as f64 / 1500.0;
    assert!((rate - 0.84).abs() < 0.05, "rate = {rate}");
}

#[test]
fn union_estimate_unbiased_and_covered() {
    let cat = catalog();
    let plan = union_plan(0.3, 0.4);
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let trials = 300u64;
    let mut mean = 0.0;
    let mut covered = 0;
    for seed in 0..trials {
        let r = approx_query(
            &plan,
            &cat,
            &ApproxOptions {
                seed,
                confidence: 0.95,
                subsample_target: None,
            },
        )
        .unwrap();
        mean += r.aggs[0].estimate;
        if r.aggs[0].ci_normal.as_ref().unwrap().contains(exact) {
            covered += 1;
        }
    }
    mean /= trials as f64;
    assert!(
        (mean - exact).abs() < 0.02 * exact,
        "mean {mean} vs {exact}"
    );
    let rate = covered as f64 / trials as f64;
    assert!(rate >= 0.88, "coverage {rate}");
}

#[test]
fn union_of_wor_samples() {
    // Re-using two WOR samples of the same relation (the paper's "samples
    // are expensive to acquire" motivation).
    let cat = catalog();
    let branch = || LogicalPlan::scan("t").sample(SamplingMethod::Wor { size: 300 });
    let plan = branch()
        .union_samples(branch())
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let trials = 200u64;
    let mean: f64 = (0..trials)
        .map(|seed| {
            approx_query(
                &plan,
                &cat,
                &ApproxOptions {
                    seed,
                    confidence: 0.95,
                    subsample_target: None,
                },
            )
            .unwrap()
            .aggs[0]
                .estimate
        })
        .sum::<f64>()
        / trials as f64;
    assert!(
        (mean - exact).abs() < 0.02 * exact,
        "mean {mean} vs {exact}"
    );
}

#[test]
fn union_under_join_composes() {
    // (B(0.3)(t) ∪ B(0.3)(t)) ⋈ d — union below a join.
    let cat = catalog();
    let branch = |p: f64| LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p });
    let plan = branch(0.3)
        .union_samples(branch(0.3))
        .join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")))
        .aggregate(vec![AggSpec::sum(col("w"), "s")]);
    let analysis = rewrite(&plan, &cat).unwrap();
    assert_eq!(analysis.schema.n(), 2);
    // a = (1−0.7²)·1 = 0.51
    assert!((analysis.gus.a() - 0.51).abs() < 1e-12);
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let trials = 200u64;
    let mean: f64 = (0..trials)
        .map(|seed| {
            approx_query(
                &plan,
                &cat,
                &ApproxOptions {
                    seed,
                    confidence: 0.95,
                    subsample_target: None,
                },
            )
            .unwrap()
            .aggs[0]
                .estimate
        })
        .sum::<f64>()
        / trials as f64;
    assert!(
        (mean - exact).abs() < 0.03 * exact,
        "mean {mean} vs {exact}"
    );
}

#[test]
fn mismatched_branches_rejected() {
    let cat = catalog();
    // Different relations in the two branches.
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .union_samples(LogicalPlan::scan("d").sample(SamplingMethod::Bernoulli { p: 0.5 }))
        .aggregate(vec![AggSpec::count_star("c")]);
    assert!(plan.validate(&cat).is_err());
    // Different filters in the two branches.
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .filter(col("v").gt(lit(2.0)))
        .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 }))
        .aggregate(vec![AggSpec::count_star("c")]);
    assert!(plan.validate(&cat).is_err());
}

#[test]
fn system_vs_row_union_rejected() {
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::System { p: 0.5 })
        .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 }))
        .aggregate(vec![AggSpec::count_star("c")]);
    assert!(plan.validate(&cat).is_err());
}

#[test]
fn union_display_and_base_relations() {
    let plan = union_plan(0.2, 0.3);
    assert_eq!(plan.base_relations(), vec!["t"]); // counted once
    let tree = plan.display_tree();
    assert!(tree.contains('∪'), "{tree}");
}

#[test]
fn union_same_sampling_twice_matches_single_equivalent_bernoulli() {
    // B(p) ∪ B(p) should behave exactly like B(2p−p²) — verify the variance
    // estimates agree on average across seeds.
    let cat = catalog();
    let p = 0.25;
    let q = 2.0 * p - p * p;
    let union = union_plan(p, p);
    let single = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: q })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let trials = 150u64;
    let avg_var = |plan: &LogicalPlan| -> f64 {
        (0..trials)
            .map(|seed| {
                approx_query(
                    plan,
                    &cat,
                    &ApproxOptions {
                        seed,
                        confidence: 0.95,
                        subsample_target: None,
                    },
                )
                .unwrap()
                .report
                .raw_variance(0)
                .unwrap()
            })
            .sum::<f64>()
            / trials as f64
    };
    let vu = avg_var(&union);
    let vs = avg_var(&single);
    assert!(
        (vu - vs).abs() < 0.25 * vs.max(1.0),
        "union {vu} vs single-equivalent {vs}"
    );
}

#[test]
fn union_mid_scan_chebyshev_coverage_at_99() {
    // Stopping a union plan mid-scan must still target the *population*:
    // each branch's GUS is composed with its own WOR(scanned, total) prefix
    // factor before the union formula combines them. 100 seeds at two row
    // budgets — 300 stops inside the first branch, 700 inside the second
    // (after dedup has drained branch one) — so both composition paths are
    // exercised. 99% Chebyshev intervals are conservative, so ≥99/100
    // should cover; we gate at 96/100 to keep the test stable.
    let cat = catalog();
    let plan = union_plan(0.4, 0.4);
    let truth = exact_query(&plan, &cat).unwrap()[0];
    assert!((truth - 4500.0).abs() < 1e-9, "catalog drifted: {truth}");
    let mut covered = 0u32;
    for trial in 0..100u64 {
        let budget = if trial % 2 == 0 { 300 } else { 700 };
        let r = run_online(
            &plan,
            &cat,
            &OnlineOptions {
                seed: trial,
                chunk_rows: 64,
                confidence: 0.99,
                rule: StoppingRule::rows(budget),
                ..Default::default()
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::RowBudget, "trial {trial} ran dry");
        assert!(
            r.snapshot.progress.iter().any(|&(c, a)| c < a),
            "trial {trial} exhausted the scan"
        );
        if r.snapshot.aggs[0]
            .ci_chebyshev
            .as_ref()
            .is_some_and(|ci| ci.contains(truth))
        {
            covered += 1;
        }
    }
    assert!(covered >= 96, "coverage {covered}/100 at 99% Chebyshev");
}
