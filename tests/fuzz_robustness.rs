//! Robustness fuzzing: the SQL front-end and expression evaluator must never
//! panic, whatever the input — errors are values here. The same contract
//! holds one layer down: a truncated or bit-flipped `.sac` file must come
//! back as a typed [`sa_storage::StorageError`] or as byte-correct data,
//! never as a panic and never as silently wrong values (the checksummed
//! v2 format is what makes the third outcome detectable).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use sa_storage::{DataType, Field, Schema};
use sampling_algebra::prelude::*;

/// Build a small three-typed table (dict-encoded strings included, so the
/// string dictionary pages are in the mutation surface) and write it to a
/// fresh `.sac` under the system temp dir. Returns the path and the full
/// cell image for the wrong-bytes check.
fn write_reference_sac() -> (PathBuf, Vec<Value>) {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("s", DataType::Str),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    let words = ["alpha", "beta", "gamma", "delta"];
    for i in 0..300i64 {
        b.push_row(&[
            Value::Int(i),
            Value::Str(words[(i % 4) as usize].into()),
            Value::Float(i as f64 / 3.0),
        ])
        .unwrap();
    }
    let table = b.finish().unwrap();
    let path = std::env::temp_dir().join(format!(
        "sa-fuzz-{}-{}.sac",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    sampling_algebra::storage::write_table_file(&table, &path).unwrap();
    let cells = read_all_cells(&table).unwrap();
    (path, cells)
}

/// Gather every cell through the public read path (this is where lazy
/// page-checksum verification happens on the mapped backend).
fn read_all_cells(t: &sampling_algebra::storage::Table) -> Result<Vec<Value>, StorageError> {
    let mut out = Vec::new();
    for row in 0..t.row_count() {
        for col in 0..t.column_count() {
            out.push(t.value(row, col)?);
        }
    }
    Ok(out)
}

use sampling_algebra::storage::StorageError;

/// The property both mutation tests share: the mutated file must open and
/// read to either a typed error or the exact original cells — never a
/// panic, never silently wrong data. Returns whether it read back whole
/// (so callers can add stricter expectations for destructive mutations).
fn check_mutated(path: &std::path::Path, original: &[Value]) -> bool {
    match sampling_algebra::storage::open_table_file(path) {
        Err(_) => false, // typed error at open: fine
        Ok(t) => match read_all_cells(&t) {
            Err(_) => false, // typed error at gather: fine
            Ok(cells) => {
                assert_eq!(
                    cells, original,
                    "mutation slipped past the checksums as wrong data"
                );
                true
            }
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_and_parser_never_panic_on_arbitrary_strings(input in ".{0,200}") {
        // Any outcome is fine except a panic.
        let _ = sampling_algebra::sql::parse(&input);
    }

    #[test]
    fn parser_never_panics_on_sqlish_token_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "SUM", "COUNT", "AVG", "QUANTILE",
                "TABLESAMPLE", "PERCENT", "ROWS", "SYSTEM", "GROUP", "BY", "AND",
                "OR", "NOT", "(", ")", ",", "*", "+", "-", "/", "=", "<", ">",
                "x", "y", "t", "0.5", "42", "'s'", ".", ";", "AS",
            ]),
            0..30,
        )
    ) {
        let input = words.join(" ");
        let _ = sampling_algebra::sql::parse(&input);
    }

    #[test]
    fn binder_never_panics_on_valid_parse_trees(
        agg in prop::sample::select(vec!["SUM(v)", "COUNT(*)", "AVG(v)", "SUM(v*v)", "SUM(missing)"]),
        table in prop::sample::select(vec!["t", "nope"]),
        pct in 0.0f64..=100.0,
    ) {
        let mut catalog = Catalog::new();
        let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        b.push_row(&[Value::Float(1.0)]).unwrap();
        catalog.register(b.finish().unwrap()).unwrap();
        let sql = format!("SELECT {agg} FROM {table} TABLESAMPLE ({pct} PERCENT)");
        let _ = plan_sql(&sql, &catalog);
    }

    #[test]
    fn eval_never_panics_on_random_typed_trees(ops in prop::collection::vec(0u8..12, 1..24)) {
        // Build a random expression over two numeric columns by folding
        // operators; bind-time type errors and eval-time errors are both
        // acceptable outcomes — panics are not.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
        ])
        .unwrap();
        let row = vec![Value::Int(3), Value::Float(0.5)];
        let mut e = col("a");
        for op in ops {
            let rhs = if op % 2 == 0 { col("b") } else { lit(op as i64 - 6) };
            e = match op {
                0 => e.add(rhs),
                1 => e.sub(rhs),
                2 => e.mul(rhs),
                3 => e.div(rhs),
                4 => e.eq(rhs),
                5 => e.lt(rhs),
                6 => e.gt(rhs),
                7 => e.and(rhs),
                8 => e.or(rhs),
                9 => e.neg(),
                10 => e.not(),
                _ => e.lt_eq(rhs),
            };
        }
        if let Ok(bound) = sampling_algebra::expr::bind(&e, &schema) {
            let _ = sampling_algebra::expr::eval(&bound, &row);
        }
    }

    #[test]
    fn sbox_accepts_any_finite_f_values(
        rows in prop::collection::vec((any::<u64>(), -1e12f64..1e12), 0..50),
        p in 0.01f64..1.0,
    ) {
        let gus = GusParams::bernoulli("r", p).unwrap();
        let mut sbox = SBox::new(gus);
        for (id, f) in &rows {
            sbox.push_scalar(&[*id], *f).unwrap();
        }
        let rep = sbox.finish().unwrap();
        prop_assert!(rep.estimate[0].is_finite());
        if let Ok(v) = rep.raw_variance(0) {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn truncated_sac_files_fail_typed_never_panic(frac in 0.0f64..1.0) {
        let (path, original) = write_reference_sac();
        let bytes = std::fs::read(&path).unwrap();
        let keep = (bytes.len() as f64 * frac) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let read_whole = check_mutated(&path, &original);
        let _ = std::fs::remove_file(&path);
        // A strict truncation can never read back as complete valid data:
        // the header/directory self-checksums or the page checksums must
        // catch it (keep == len is the only identity case).
        if keep < bytes.len() {
            prop_assert!(!read_whole, "truncated file read back as whole");
        }
    }

    #[test]
    fn bit_flipped_sac_files_fail_typed_or_read_exactly(
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (path, original) = write_reference_sac();
        let mut bytes = std::fs::read(&path).unwrap();
        let ix = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[ix] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        // Either a typed error or the exact original cells; a flip in
        // padding may legitimately read back whole.
        let _ = check_mutated(&path, &original);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quantile_bounds_are_monotone(
        q1 in 0.01f64..0.99,
        q2 in 0.01f64..0.99,
        mean in -1e6f64..1e6,
        var in 0.0f64..1e9,
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = quantile_bound(mean, var, lo_q).unwrap();
        let hi = quantile_bound(mean, var, hi_q).unwrap();
        prop_assert!(lo <= hi + 1e-9, "{lo} > {hi}");
    }
}
