//! Robustness fuzzing: the SQL front-end and expression evaluator must never
//! panic, whatever the input — errors are values here.

use proptest::prelude::*;

use sa_storage::{DataType, Field, Schema};
use sampling_algebra::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_and_parser_never_panic_on_arbitrary_strings(input in ".{0,200}") {
        // Any outcome is fine except a panic.
        let _ = sampling_algebra::sql::parse(&input);
    }

    #[test]
    fn parser_never_panics_on_sqlish_token_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "SUM", "COUNT", "AVG", "QUANTILE",
                "TABLESAMPLE", "PERCENT", "ROWS", "SYSTEM", "GROUP", "BY", "AND",
                "OR", "NOT", "(", ")", ",", "*", "+", "-", "/", "=", "<", ">",
                "x", "y", "t", "0.5", "42", "'s'", ".", ";", "AS",
            ]),
            0..30,
        )
    ) {
        let input = words.join(" ");
        let _ = sampling_algebra::sql::parse(&input);
    }

    #[test]
    fn binder_never_panics_on_valid_parse_trees(
        agg in prop::sample::select(vec!["SUM(v)", "COUNT(*)", "AVG(v)", "SUM(v*v)", "SUM(missing)"]),
        table in prop::sample::select(vec!["t", "nope"]),
        pct in 0.0f64..=100.0,
    ) {
        let mut catalog = Catalog::new();
        let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        b.push_row(&[Value::Float(1.0)]).unwrap();
        catalog.register(b.finish().unwrap()).unwrap();
        let sql = format!("SELECT {agg} FROM {table} TABLESAMPLE ({pct} PERCENT)");
        let _ = plan_sql(&sql, &catalog);
    }

    #[test]
    fn eval_never_panics_on_random_typed_trees(ops in prop::collection::vec(0u8..12, 1..24)) {
        // Build a random expression over two numeric columns by folding
        // operators; bind-time type errors and eval-time errors are both
        // acceptable outcomes — panics are not.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
        ])
        .unwrap();
        let row = vec![Value::Int(3), Value::Float(0.5)];
        let mut e = col("a");
        for op in ops {
            let rhs = if op % 2 == 0 { col("b") } else { lit(op as i64 - 6) };
            e = match op {
                0 => e.add(rhs),
                1 => e.sub(rhs),
                2 => e.mul(rhs),
                3 => e.div(rhs),
                4 => e.eq(rhs),
                5 => e.lt(rhs),
                6 => e.gt(rhs),
                7 => e.and(rhs),
                8 => e.or(rhs),
                9 => e.neg(),
                10 => e.not(),
                _ => e.lt_eq(rhs),
            };
        }
        if let Ok(bound) = sampling_algebra::expr::bind(&e, &schema) {
            let _ = sampling_algebra::expr::eval(&bound, &row);
        }
    }

    #[test]
    fn sbox_accepts_any_finite_f_values(
        rows in prop::collection::vec((any::<u64>(), -1e12f64..1e12), 0..50),
        p in 0.01f64..1.0,
    ) {
        let gus = GusParams::bernoulli("r", p).unwrap();
        let mut sbox = SBox::new(gus);
        for (id, f) in &rows {
            sbox.push_scalar(&[*id], *f).unwrap();
        }
        let rep = sbox.finish().unwrap();
        prop_assert!(rep.estimate[0].is_finite());
        if let Ok(v) = rep.raw_variance(0) {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn quantile_bounds_are_monotone(
        q1 in 0.01f64..0.99,
        q2 in 0.01f64..0.99,
        mean in -1e6f64..1e6,
        var in 0.0f64..1e9,
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = quantile_bound(mean, var, lo_q).unwrap();
        let hi = quantile_bound(mean, var, hi_q).unwrap();
        prop_assert!(lo <= hi + 1e-9, "{lo} > {hi}");
    }
}
