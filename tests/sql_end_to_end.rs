#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! End-to-end tests over TPC-H-style data: the paper's introduction query
//! and APPROX view, AQUA-style correlated FK sampling, SYSTEM sampling, and
//! multi-aggregate queries — all through SQL text.

use sampling_algebra::prelude::*;

fn tpch() -> Catalog {
    generate(&TpchConfig::scale(0.002).with_seed(11))
}

#[test]
fn paper_query1_estimate_within_chebyshev() {
    let cat = tpch();
    let plan = plan_sql(
        "SELECT SUM(l_discount*(1.0-l_tax)) \
         FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) \
         WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0",
        &cat,
    )
    .unwrap();
    let exact = exact_query(&plan, &cat).unwrap()[0];
    assert!(exact > 0.0);
    let r = approx_query(
        &plan,
        &cat,
        &ApproxOptions {
            seed: 3,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    let a = &r.aggs[0];
    assert!(
        a.ci_chebyshev.as_ref().unwrap().contains(exact),
        "estimate {} ± cheb {:?} missed exact {exact}",
        a.estimate,
        a.ci_chebyshev
    );
    // The analysis reproduced Example 1's inclusion probability for the
    // actual orders cardinality (3000 at this scale → a = 0.1·1000/3000).
    let orders_rows = cat.get("orders").unwrap().row_count() as f64;
    let expect_a = 0.1 * 1000.0 / orders_rows;
    assert!((r.analysis.gus.a() - expect_a).abs() < 1e-9);
}

#[test]
fn approx_view_lo_hi_bracket_truth_usually() {
    let cat = tpch();
    let plan = plan_sql(
        "CREATE VIEW APPROX (lo, hi) AS \
         SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05), \
                QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95) \
         FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) \
         WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0",
        &cat,
    )
    .unwrap();
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let mut bracketed = 0;
    let trials = 40;
    for seed in 0..trials {
        let r = approx_query(
            &plan,
            &cat,
            &ApproxOptions {
                seed,
                confidence: 0.95,
                subsample_target: None,
            },
        )
        .unwrap();
        let lo = r.aggs[0].quantile_bound.unwrap();
        let hi = r.aggs[1].quantile_bound.unwrap();
        assert!(lo < hi);
        assert_eq!(r.aggs[0].name, "lo");
        assert_eq!(r.aggs[1].name, "hi");
        if lo <= exact && exact <= hi {
            bracketed += 1;
        }
    }
    // Nominal bracket probability is 90%; allow Monte-Carlo slack.
    assert!(bracketed >= 30, "bracketed {bracketed}/{trials}");
}

#[test]
fn aqua_correlated_fk_sampling_equivalence() {
    // AQUA samples the fact table and drags along referenced dimension
    // tuples. For an FK join this is SOA-equivalent to `fact TABLESAMPLE ⋈
    // dim` with the dimension unsampled: the GUS has Bernoulli marginals on
    // the fact relation and identity on the dimension.
    let cat = tpch();
    let plan = plan_sql(
        "SELECT SUM(o_totalprice) \
         FROM orders TABLESAMPLE (20 PERCENT), customer \
         WHERE o_custkey = c_custkey",
        &cat,
    )
    .unwrap();
    let analysis = rewrite(&plan, &cat).unwrap();
    // Identity on customer: pairs differing only in customer lineage keep
    // the fact-only probability.
    let b = |names: &[&str]| analysis.gus.b_named(names).unwrap();
    assert!((analysis.gus.a() - 0.2).abs() < 1e-12);
    assert!((b(&["customer"]) - 0.04).abs() < 1e-12); // = b_∅ of B(0.2)
    assert!((b(&["orders"]) - 0.2).abs() < 1e-12);
    assert!((b(&["orders", "customer"]) - 0.2).abs() < 1e-12);

    // And the estimate is unbiased for the FK join total.
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let trials = 60;
    let mean: f64 = (0..trials)
        .map(|seed| {
            approx_query(
                &plan,
                &cat,
                &ApproxOptions {
                    seed,
                    confidence: 0.95,
                    subsample_target: None,
                },
            )
            .unwrap()
            .aggs[0]
                .estimate
        })
        .sum::<f64>()
        / trials as f64;
    assert!(
        (mean - exact).abs() < 0.05 * exact,
        "mean {mean} vs {exact}"
    );
}

#[test]
fn system_sampling_via_sql() {
    let cat = tpch();
    let plan = plan_sql(
        "SELECT COUNT(*) FROM lineitem TABLESAMPLE SYSTEM (25)",
        &cat,
    )
    .unwrap();
    let analysis = rewrite(&plan, &cat).unwrap();
    assert_eq!(analysis.lineage_units, vec![LineageUnit::Block]);
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let trials = 80;
    let mean: f64 = (0..trials)
        .map(|seed| {
            approx_query(
                &plan,
                &cat,
                &ApproxOptions {
                    seed,
                    confidence: 0.95,
                    subsample_target: None,
                },
            )
            .unwrap()
            .aggs[0]
                .estimate
        })
        .sum::<f64>()
        / trials as f64;
    assert!(
        (mean - exact).abs() < 0.08 * exact,
        "mean {mean} vs {exact}"
    );
}

#[test]
fn multi_aggregate_select_list() {
    let cat = tpch();
    let plan = plan_sql(
        "SELECT SUM(l_quantity) AS q, COUNT(*) AS n, AVG(l_extendedprice) AS avg_price \
         FROM lineitem TABLESAMPLE (30 PERCENT)",
        &cat,
    )
    .unwrap();
    let exact = exact_query(&plan, &cat).unwrap();
    let r = approx_query(
        &plan,
        &cat,
        &ApproxOptions {
            seed: 5,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    assert_eq!(r.aggs.len(), 3);
    for (agg, truth) in r.aggs.iter().zip(&exact) {
        let ci = agg.ci_chebyshev.as_ref().unwrap();
        assert!(
            ci.contains(*truth),
            "{}: {} ∉ {ci}, truth {truth}",
            agg.name,
            agg.estimate
        );
    }
}

#[test]
fn three_table_join_through_sql() {
    let cat = tpch();
    let plan = plan_sql(
        "SELECT SUM(l_quantity) \
         FROM lineitem TABLESAMPLE (20 PERCENT), orders, customer TABLESAMPLE (50 PERCENT) \
         WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey",
        &cat,
    )
    .unwrap();
    let analysis = rewrite(&plan, &cat).unwrap();
    assert_eq!(analysis.schema.n(), 3);
    assert!((analysis.gus.a() - 0.1).abs() < 1e-12); // 0.2 · 1 · 0.5
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let r = approx_query(
        &plan,
        &cat,
        &ApproxOptions {
            seed: 7,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    assert!(r.aggs[0].ci_chebyshev.as_ref().unwrap().contains(exact));
}

#[test]
fn skewed_data_still_covered_by_chebyshev() {
    // Zipf-skewed part popularity: heavy-tailed join fan-out stresses the
    // normality assumption; Chebyshev remains valid.
    //
    // The variance feeding the interval is itself estimated from the sample,
    // and under this skew the plug-in estimate collapses whenever the
    // hottest part keys miss the sample — a 95% plug-in Chebyshev interval
    // (k ≈ 4.5) then undercovers even though estimate and variance are both
    // unbiased (verified empirically: mean of the variance estimates matches
    // the observed estimator variance). Asking Chebyshev for 99% (k = 10)
    // keeps the guarantee meaningful while leaving slack for the
    // variance-estimation noise. The coverage bar sits at 96% — close enough
    // to the nominal 99% that a few points of undercoverage (a real
    // regression at the requested level) fails the test, with four misses of
    // Monte-Carlo slack over the 100 deterministic trials.
    let cat = generate(&TpchConfig::scale(0.002).with_seed(3).with_part_skew(1.1));
    let plan = plan_sql(
        "SELECT COUNT(*) \
         FROM lineitem TABLESAMPLE (20 PERCENT), part TABLESAMPLE (30 PERCENT) \
         WHERE l_partkey = p_partkey",
        &cat,
    )
    .unwrap();
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let trials = 100;
    let covered = (0..trials)
        .filter(|seed| {
            approx_query(
                &plan,
                &cat,
                &ApproxOptions {
                    seed: *seed,
                    confidence: 0.99,
                    subsample_target: None,
                },
            )
            .unwrap()
            .aggs[0]
                .ci_chebyshev
                .as_ref()
                .unwrap()
                .contains(exact)
        })
        .count();
    assert!(
        covered as f64 / trials as f64 >= 0.96,
        "covered {covered}/{trials}"
    );
}
