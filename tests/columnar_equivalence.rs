#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Row-vs-columnar equivalence: the columnar batch engine must be
//! observationally identical to row-at-a-time execution.
//!
//! * a differential proptest draws a random plan (sampler × filter ×
//!   projection × optional join), a random seed and two independent chunk
//!   splits, and checks that the columnar stream
//!   ([`ChunkStream::next_batch`]) yields exactly the row adapter's tuples
//!   and that the batch-accumulated online estimate equals a per-row
//!   reference accumulation to 1e-12 (relative);
//! * adaptive chunk sizing ([`OnlineOptions::adaptive_chunks`]) must change
//!   snapshot cadence only — the realized sample, and hence the exhaustion
//!   estimate, is pinned equal to the fixed-chunk run.

use proptest::prelude::*;

use sa_core::MomentAccumulator;
use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder};
use sampling_algebra::exec::{f_vector, layout_dims, open_stream, ExecOptions};
use sampling_algebra::expr::col;
use sampling_algebra::online::{run_online, OnlineOptions};
use sampling_algebra::prelude::*;

/// `t`: 600 rows of (k Int, v Float-with-NULLs, s Str-with-NULLs), block
/// size 16 (so SYSTEM sampling has 38 blocks); `d`: a 12-row dimension
/// table for the join case.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
        Field::new("s", DataType::Str),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema).with_block_rows(16);
    for i in 0..600i64 {
        let v = if i % 13 == 0 {
            Value::Null
        } else {
            Value::Float((i % 97) as f64 + 0.25)
        };
        let s = match i % 7 {
            0 => Value::Null,
            1 | 2 => Value::str("a"),
            3 => Value::str("bb"),
            _ => Value::str("ccc"),
        };
        b.push_row(&[Value::Int(i % 12), v, s]).unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    let schema = Schema::new(vec![
        Field::new("dk", DataType::Int),
        Field::new("w", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("d", schema);
    for i in 0..12i64 {
        b.push_row(&[Value::Int(i), Value::Float(10.0 * i as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

/// A random (non-aggregate) plan over `t` (possibly ⋈ `d`) plus the column
/// the SUM reference aggregates.
fn build_plan(
    sampler: u8,
    p: f64,
    wor: u64,
    pred: u8,
    proj: u8,
    join: bool,
) -> (LogicalPlan, Expr) {
    let mut plan = LogicalPlan::scan("t");
    plan = match sampler % 4 {
        0 => plan,
        1 => plan.sample(SamplingMethod::Bernoulli { p }),
        2 => plan.sample(SamplingMethod::Wor { size: wor }),
        _ => plan.sample(SamplingMethod::System { p }),
    };
    if join {
        plan = plan.join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
    }
    plan = match pred % 4 {
        0 => plan,
        1 => plan.filter(col("v").gt_eq(lit(25.0))),
        2 => plan.filter(col("k").lt(lit(6i64)).and(col("v").lt(lit(80.0)))),
        _ => plan.filter(col("s").eq(lit("a")).or(col("v").gt(lit(90.0)))),
    };
    match proj % 3 {
        0 => (plan, col("v")),
        1 => (
            plan.project(vec![(col("v").mul(lit(2.0)).sub(col("k")), "x".into())]),
            col("x"),
        ),
        _ => (
            plan.project(vec![
                (col("k").add(lit(1i64)), "kk".into()),
                (col("v"), "x".into()),
            ]),
            col("x"),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn columnar_stream_equals_row_stream_and_estimates_match(
        sampler in 0u8..4,
        p in 0.1f64..1.0,
        wor in 1u64..500,
        pred in 0u8..4,
        proj in 0u8..3,
        join in any::<bool>(),
        seed in 0u64..1000,
        hint_a in 1usize..300,
        hint_b in 1usize..300,
    ) {
        let c = catalog();
        let (input, agg_col) = build_plan(sampler, p, wor, pred, proj, join);
        let opts = ExecOptions { seed, ..Default::default() };

        // 1. Tuple equality: columnar batches vs the row adapter, under
        //    independent chunk splits (realization is chunk-independent).
        let mut via_batch = open_stream(&input, &c, &opts).unwrap();
        let mut batch_rows = Vec::new();
        loop {
            let chunk = via_batch.next_batch(hint_a).unwrap();
            if chunk.is_empty() {
                break;
            }
            batch_rows.extend(chunk.to_rows());
        }
        let row_rows = open_stream(&input, &c, &opts)
            .unwrap()
            .collect_rows(hint_b)
            .unwrap();
        prop_assert_eq!(&batch_rows, &row_rows);

        // 2. Estimate equality: the online driver's batch accumulation vs a
        //    per-row reference over the same realized rows.
        let plan = input.clone().aggregate(vec![AggSpec::sum(agg_col, "s")]);
        let online = run_online(
            &plan,
            &c,
            &OnlineOptions {
                seed,
                chunk_rows: hint_a,
                ..Default::default()
            },
            |_| {},
        )
        .unwrap();
        let stream = open_stream(&input, &c, &opts).unwrap();
        let layout = layout_dims(
            match &plan {
                LogicalPlan::Aggregate { aggs, .. } => aggs,
                _ => unreachable!(),
            },
            stream.schema(),
        )
        .unwrap();
        let mut reference = MomentAccumulator::new(online.analysis.schema.n(), layout.dims());
        for row in &row_rows {
            reference
                .push(&row.lineage, &f_vector(&layout, row).unwrap())
                .unwrap();
        }
        let report = reference.report(&online.analysis.gus).unwrap();
        let (eo, er) = (online.snapshot.aggs[0].estimate, report.estimate[0]);
        prop_assert!(
            (eo - er).abs() <= 1e-12 * (1.0 + er.abs()),
            "estimate {eo} vs reference {er}"
        );
        match (online.snapshot.aggs[0].variance, report.variance(0).ok()) {
            (Some(vo), Some(vr)) => prop_assert!(
                (vo - vr).abs() <= 1e-12 * (1.0 + vr.abs()),
                "variance {vo} vs reference {vr}"
            ),
            (vo, vr) => prop_assert_eq!(vo.is_some(), vr.is_some()),
        }
    }
}

#[test]
fn adaptive_chunks_change_cadence_not_estimates() {
    let c = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.8 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let run = |adaptive: bool| {
        run_online(
            &plan,
            &c,
            &OnlineOptions {
                seed: 5,
                chunk_rows: 8,
                adaptive_chunks: adaptive,
                ..Default::default()
            },
            |_| {},
        )
        .unwrap()
    };
    let fixed = run(false);
    let adaptive = run(true);
    // The realized sample is chunk-size independent, so the exhaustion
    // estimates agree …
    assert_eq!(fixed.snapshot.rows, adaptive.snapshot.rows);
    let (ef, ea) = (
        fixed.snapshot.aggs[0].estimate,
        adaptive.snapshot.aggs[0].estimate,
    );
    assert!((ef - ea).abs() <= 1e-9 * (1.0 + ef.abs()), "{ef} vs {ea}");
    let (vf, va) = (
        fixed.snapshot.aggs[0].variance.unwrap(),
        adaptive.snapshot.aggs[0].variance.unwrap(),
    );
    assert!((vf - va).abs() <= 1e-9 * (1.0 + vf.abs()), "{vf} vs {va}");
    // … while the adaptive run needs far fewer snapshots once the relative
    // CI width plateaus (8-row chunks over ~480 sampled rows: ~60 fixed
    // snapshots vs a doubling schedule).
    assert!(
        adaptive.chunks * 2 < fixed.chunks,
        "adaptive {} vs fixed {} snapshots",
        adaptive.chunks,
        fixed.chunks
    );
}

#[test]
fn adaptive_chunks_respect_the_cap_and_ci_rule() {
    // A CI-target run with adaptive chunks must still stop on the rule and
    // report a tight interval — growth only coarsens snapshot cadence.
    let mut c = Catalog::new();
    let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
    let mut b = TableBuilder::new("big", schema);
    for i in 0..60_000i64 {
        b.push_row(&[Value::Float(1.0 + (i % 7) as f64)]).unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    let plan = LogicalPlan::scan("big")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let r = run_online(
        &plan,
        &c,
        &OnlineOptions {
            seed: 4,
            chunk_rows: 64,
            rule: StoppingRule::ci(0.05, 0.95),
            adaptive_chunks: true,
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(r.reason, StopReason::CiConverged);
    assert!(r.snapshot.rel_half_width.unwrap() <= 0.05);
    assert!(
        r.snapshot.rows < 30_000,
        "stopped early: {}",
        r.snapshot.rows
    );
}
