#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Shard-parallel online aggregation end to end: option validation, exact
//! agreement with the batch estimator at forced exhaustion, graceful
//! oversubscription, cross-parallelism agreement on shared-realization
//! plans, statistical coverage at `parallelism = 4`, and early stopping.

use sampling_algebra::core::{estimate_from_sample_moments, GroupedMoments};
use sampling_algebra::exec::{f_vector, layout_dims, open_stream_partitioned, ExecOptions};
use sampling_algebra::online::{run_online, run_online_grouped, GroupedOnlineOptions, OnlineError};
use sampling_algebra::prelude::*;
use sampling_algebra::tpch::Zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// `t(k, v)`: `rows` rows, v cycling 1..=7 (mean 4.0), k cycling 0..10.
fn catalog(rows: i64) -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for i in 0..rows {
        b.push_row(&[Value::Int(i % 10), Value::Float(1.0 + (i % 7) as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

fn sum_plan(p: f64) -> LogicalPlan {
    LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p })
        .aggregate(vec![AggSpec::sum(col("v"), "s")])
}

fn opts(seed: u64, chunk_rows: usize, parallelism: usize) -> OnlineOptions {
    OnlineOptions {
        seed,
        chunk_rows,
        parallelism,
        ..Default::default()
    }
}

#[test]
fn parallelism_zero_rejected_by_both_drivers() {
    let c = catalog(100);
    let bad = opts(0, 64, 0);
    let err = run_online(&sum_plan(0.5), &c, &bad, |_| {}).unwrap_err();
    assert!(matches!(err, OnlineError::InvalidOptions(_)), "{err}");
    assert!(err.to_string().contains("parallelism"), "{err}");
    let err = run_online_grouped(
        &sum_plan(0.5),
        &[col("k")],
        &c,
        &GroupedOnlineOptions {
            online: bad,
            ci_top_k: None,
        },
        |_| {},
    )
    .unwrap_err();
    assert!(matches!(err, OnlineError::InvalidOptions(_)), "{err}");
}

/// At forced exhaustion, the N-worker estimate must equal the batch
/// estimator fed the same realized union sample, to 1e-9.
#[test]
fn parallel_exhaustion_equals_batch_estimator() {
    let c = catalog(4000);
    let plan = sum_plan(0.3);
    let online = run_online(&plan, &c, &opts(9, 128, 4), |_| {}).unwrap();
    assert_eq!(online.reason, StopReason::Exhausted);
    // Batch moments over the SAME partitioned realization.
    let LogicalPlan::Aggregate { aggs, input } = &plan else {
        unreachable!()
    };
    let streams = open_stream_partitioned(
        input,
        &c,
        &ExecOptions {
            seed: 9,
            ..Default::default()
        },
        4,
    )
    .unwrap();
    let layout = layout_dims(aggs, streams[0].schema()).unwrap();
    let mut batch = GroupedMoments::new(online.analysis.schema.n(), layout.dims());
    for mut s in streams {
        loop {
            let chunk = s.next_chunk(4096).unwrap();
            if chunk.is_empty() {
                break;
            }
            for row in &chunk {
                batch
                    .push(&row.lineage, &f_vector(&layout, row).unwrap())
                    .unwrap();
            }
        }
    }
    let report = estimate_from_sample_moments(&online.analysis.gus, &batch.finish()).unwrap();
    let est = online.snapshot.aggs[0].estimate;
    assert!(est > 0.0);
    assert!(
        (est - report.estimate[0]).abs() < 1e-9 * (1.0 + est.abs()),
        "{est} vs {}",
        report.estimate[0]
    );
    let (vo, vb) = (
        online.snapshot.aggs[0].variance.unwrap(),
        report.variance(0).unwrap(),
    );
    assert!((vo - vb).abs() < 1e-9 * (1.0 + vb.abs()), "{vo} vs {vb}");
}

/// The grouped variant of the exhaustion pin: every group's N-worker
/// readout equals the batch grouped estimator to 1e-9.
#[test]
fn parallel_grouped_exhaustion_equals_batch_estimator() {
    let c = catalog(4800);
    let plan = sum_plan(0.4);
    let r = run_online_grouped(
        &plan,
        &[col("k")],
        &c,
        &GroupedOnlineOptions {
            online: opts(7, 256, 4),
            ci_top_k: None,
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(r.reason, StopReason::Exhausted);
    assert_eq!(r.snapshot.groups.len(), 10);
    // Batch per-group moments over the SAME partitioned realization.
    let LogicalPlan::Aggregate { aggs, input } = &plan else {
        unreachable!()
    };
    let streams = open_stream_partitioned(
        input,
        &c,
        &ExecOptions {
            seed: 7,
            ..Default::default()
        },
        4,
    )
    .unwrap();
    let layout = layout_dims(aggs, streams[0].schema()).unwrap();
    let key_expr = sampling_algebra::expr::bind(&col("k"), streams[0].schema()).unwrap();
    let mut batch: std::collections::BTreeMap<Vec<Value>, GroupedMoments> = Default::default();
    let n = r.analysis.schema.n();
    for mut s in streams {
        loop {
            let chunk = s.next_chunk(4096).unwrap();
            if chunk.is_empty() {
                break;
            }
            for row in &chunk {
                let key = vec![sampling_algebra::expr::eval(&key_expr, &row.values).unwrap()];
                batch
                    .entry(key)
                    .or_insert_with(|| GroupedMoments::new(n, layout.dims()))
                    .push(&row.lineage, &f_vector(&layout, row).unwrap())
                    .unwrap();
            }
        }
    }
    assert_eq!(batch.len(), r.snapshot.groups.len());
    for g in &r.snapshot.groups {
        let moments = batch.remove(&g.key).expect("group in both").finish();
        let report = estimate_from_sample_moments(&r.analysis.gus, &moments).unwrap();
        let (eo, eb) = (g.aggs[0].estimate, report.estimate[0]);
        assert!((eo - eb).abs() < 1e-9 * (1.0 + eb.abs()), "{eo} vs {eb}");
        let (vo, vb) = (g.aggs[0].variance.unwrap(), report.variance(0).unwrap());
        assert!((vo - vb).abs() < 1e-9 * (1.0 + vb.abs()), "{vo} vs {vb}");
    }
}

/// More workers than chunks (even than blocks): extra workers drain empty
/// slices immediately, nothing is lost or double-counted.
#[test]
fn oversubscribed_parallelism_degrades_gracefully() {
    let c = catalog(100);
    // Unsampled plan: at exhaustion the estimate is exact, so any lost or
    // duplicated slice row would show up as a wrong SUM.
    let plan = LogicalPlan::scan("t").aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let truth: f64 = (0..100).map(|i| 1.0 + (i % 7) as f64).sum();
    for parallelism in [7, 64] {
        let r = run_online(&plan, &c, &opts(3, 16, parallelism), |_| {}).unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        assert_eq!(r.snapshot.rows, 100);
        let est = r.snapshot.aggs[0].estimate;
        assert!(
            (est - truth).abs() < 1e-9 * truth,
            "parallelism={parallelism}: {est} vs {truth}"
        );
    }
}

/// Plans whose stochastic operators are all shared across workers (SYSTEM
/// keeps, WOR draws — no spine Bernoulli) realize the SAME sample at any
/// parallelism, so the exhaustion estimates agree across worker counts.
#[test]
fn shared_realization_plans_agree_across_parallelism() {
    let c = catalog(2000);
    for plan in [
        LogicalPlan::scan("t")
            .sample(SamplingMethod::System { p: 0.7 })
            .aggregate(vec![AggSpec::sum(col("v"), "s")]),
        LogicalPlan::scan("t")
            .sample(SamplingMethod::Wor { size: 800 })
            .aggregate(vec![AggSpec::sum(col("v"), "s")]),
    ] {
        let sequential = run_online(&plan, &c, &opts(5, 128, 1), |_| {}).unwrap();
        let parallel = run_online(&plan, &c, &opts(5, 128, 4), |_| {}).unwrap();
        assert_eq!(parallel.snapshot.rows, sequential.snapshot.rows);
        let (es, ep) = (
            sequential.snapshot.aggs[0].estimate,
            parallel.snapshot.aggs[0].estimate,
        );
        assert!((es - ep).abs() < 1e-9 * (1.0 + es.abs()), "{es} vs {ep}");
    }
}

/// 100 seeded trials at `parallelism = 4` over a Zipf-skewed table: the
/// per-worker Bernoulli streams must still produce unbiased estimates
/// whose 99% Chebyshev intervals keep ≥ 96% coverage of the true SUM.
#[test]
fn parallel_coverage_trial() {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
    let zipf = Zipf::new(40, 1.3);
    let mut rng = StdRng::seed_from_u64(20_130_826);
    let mut truth = 0.0f64;
    let mut b = TableBuilder::new("t", schema);
    for _ in 0..4000 {
        let v = 1.0 + zipf.sample(&mut rng) as f64;
        truth += v;
        b.push_row(&[Value::Float(v)]).unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.4 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let mut covered = 0u32;
    for seed in 0..100 {
        let r = run_online(
            &plan,
            &c,
            &OnlineOptions {
                seed,
                chunk_rows: 256,
                confidence: 0.99,
                parallelism: 4,
                ..Default::default()
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        let ci = r.snapshot.aggs[0].ci_chebyshev.as_ref().unwrap();
        if ci.contains(truth) {
            covered += 1;
        }
    }
    assert!(
        covered >= 96,
        "99% Chebyshev coverage at parallelism 4: {covered}/100"
    );
}

/// A CI stopping rule fires on the merged shard state well before the
/// 4-worker pipeline drains the sample.
#[test]
fn parallel_ci_rule_stops_early() {
    let c = catalog(50_000);
    let r = run_online(
        &sum_plan(0.5),
        &c,
        &OnlineOptions {
            seed: 4,
            chunk_rows: 512,
            rule: StoppingRule::ci(0.05, 0.95),
            parallelism: 4,
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(r.reason, StopReason::CiConverged);
    assert!(r.snapshot.rel_half_width.unwrap() <= 0.05);
    // Early even with the bounded worker run-ahead (≤ 2 chunks per shard).
    assert!(r.snapshot.rows < 20_000, "rows = {}", r.snapshot.rows);
}

/// UNION-of-samples plans cannot be partitioned (global dedup state): the
/// driver must refuse `parallelism > 1` with a clear error, and still run
/// them sequentially.
#[test]
fn union_plans_refuse_parallel_streaming() {
    let c = catalog(2000);
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.4 })
        .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.4 }))
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let parallel = OnlineOptions {
        scale_to_population: false,
        parallelism: 4,
        ..opts(6, 128, 4)
    };
    let err = run_online(&plan, &c, &parallel, |_| {}).unwrap_err();
    assert!(err.to_string().contains("UNION"), "{err}");
    let sequential = OnlineOptions {
        parallelism: 1,
        ..parallel
    };
    let r = run_online(&plan, &c, &sequential, |_| {}).unwrap();
    assert_eq!(r.reason, StopReason::Exhausted);
}

/// One replayed snapshot: `(chunk, rows, rendered estimate/variance,
/// per-relation progress)`.
type SnapshotKey = (u64, u64, String, Vec<(u64, u64)>);

/// `parallelism = 1` leaves every snapshot byte-identical to a replay with
/// the same seed — the sequential path is untouched by the parallel code.
#[test]
fn single_worker_replays_byte_identically() {
    let c = catalog(5000);
    let collect = || {
        let mut snaps: Vec<SnapshotKey> = Vec::new();
        let r = run_online(&sum_plan(0.5), &c, &opts(3, 256, 1), |s| {
            snaps.push((
                s.chunk,
                s.rows,
                format!("{:.17e} {:?}", s.aggs[0].estimate, s.aggs[0].variance),
                s.progress.clone(),
            ))
        })
        .unwrap();
        (snaps, r.snapshot.rows, format!("{:?}", r.reason))
    };
    assert_eq!(collect(), collect());
}
