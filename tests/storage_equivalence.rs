#![allow(deprecated)] // run_online is the most direct differential harness

//! InRam vs memory-mapped backend equivalence — the differential layer the
//! out-of-core storage hangs on.
//!
//! A proptest draws a random plan (sampler × filter × projection × optional
//! join), a random seed, independent chunk splits and a worker count, then
//! runs it against the same data twice: once over the in-RAM catalog the
//! rows were built in, once over `.sac` files persisted to disk and
//! reopened memory-mapped. The realized tuples (values AND lineage ids)
//! must be byte-identical, and the online estimates must agree to 1e-12
//! relative — with projection/predicate pushdown on or off, sequentially
//! and at `parallelism = 4`. A separate test pins that two independent
//! mapped reopens replay the same realization (no hidden per-mapping
//! state).

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use sampling_algebra::exec::{open_stream, ExecOptions, Row};
use sampling_algebra::online::{run_online, OnlineOptions};
use sampling_algebra::prelude::*;
use sampling_algebra::storage::{open_catalog_dir, persist_catalog};

/// `t`: 600 rows of (k Int, v Float-with-NULLs, s Str-with-NULLs), block
/// size 16 — nulls exercise the validity bitmaps, strings the dictionary
/// pages; `d`: a 12-row dimension table for the join case.
fn build_catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
        Field::new("s", DataType::Str),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema).with_block_rows(16);
    for i in 0..600i64 {
        let v = if i % 13 == 0 {
            Value::Null
        } else {
            Value::Float((i % 97) as f64 + 0.25)
        };
        let s = match i % 7 {
            0 => Value::Null,
            1 | 2 => Value::str("a"),
            3 => Value::str("bb"),
            _ => Value::str("ccc"),
        };
        b.push_row(&[Value::Int(i % 12), v, s]).unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    let schema = Schema::new(vec![
        Field::new("dk", DataType::Int),
        Field::new("w", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("d", schema);
    for i in 0..12i64 {
        b.push_row(&[Value::Int(i), Value::Float(10.0 * i as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

/// The on-disk `.sac` image of [`build_catalog`], written once per process.
fn sac_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("sa-storage-eq-{}", std::process::id()));
        persist_catalog(&build_catalog(), &dir).unwrap();
        dir
    })
}

/// A fresh memory-mapped reopen of the persisted catalog (its own mmap —
/// nothing shared with any previous open).
fn mapped_catalog() -> Catalog {
    open_catalog_dir(sac_dir()).unwrap()
}

/// A random (non-aggregate) plan over `t` (possibly ⋈ `d`) plus the column
/// the SUM aggregates.
fn build_plan(
    sampler: u8,
    p: f64,
    wor: u64,
    pred: u8,
    proj: u8,
    join: bool,
) -> (LogicalPlan, Expr) {
    let mut plan = LogicalPlan::scan("t");
    plan = match sampler % 4 {
        0 => plan,
        1 => plan.sample(SamplingMethod::Bernoulli { p }),
        2 => plan.sample(SamplingMethod::Wor { size: wor }),
        _ => plan.sample(SamplingMethod::System { p }),
    };
    if join {
        plan = plan.join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
    }
    plan = match pred % 4 {
        0 => plan,
        1 => plan.filter(col("v").gt_eq(lit(25.0))),
        2 => plan.filter(col("k").lt(lit(6i64)).and(col("v").lt(lit(80.0)))),
        _ => plan.filter(col("s").eq(lit("a")).or(col("v").gt(lit(90.0)))),
    };
    match proj % 3 {
        0 => (plan, col("v")),
        1 => (
            plan.project(vec![(col("v").mul(lit(2.0)).sub(col("k")), "x".into())]),
            col("x"),
        ),
        _ => (
            plan.project(vec![
                (col("k").add(lit(1i64)), "kk".into()),
                (col("v"), "x".into()),
            ]),
            col("x"),
        ),
    }
}

fn collect(input: &LogicalPlan, c: &Catalog, opts: &ExecOptions, hint: usize) -> Vec<Row> {
    open_stream(input, c, opts)
        .unwrap()
        .collect_rows(hint)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapped_backend_is_byte_identical_to_in_ram(
        sampler in 0u8..4,
        p in 0.1f64..1.0,
        wor in 1u64..500,
        pred in 0u8..4,
        proj in 0u8..3,
        join in any::<bool>(),
        seed in 0u64..1000,
        hint_a in 1usize..300,
        hint_b in 1usize..300,
        jobs in prop::sample::select(vec![1usize, 4]),
    ) {
        let ram = build_catalog();
        let mapped = mapped_catalog();
        let (input, agg_col) = build_plan(sampler, p, wor, pred, proj, join);
        let opts = ExecOptions { seed, ..Default::default() };

        // 1. Realized tuples: values and lineage ids byte-identical across
        //    backends, under independent chunk splits.
        let ram_rows = collect(&input, &ram, &opts, hint_a);
        let map_rows = collect(&input, &mapped, &opts, hint_b);
        prop_assert_eq!(&ram_rows, &map_rows);

        // 2. Pushdown off changes nothing but the gather work: same rows,
        //    same lineage, on the mapped backend too.
        let off = ExecOptions { seed, disable_pushdown: true, ..Default::default() };
        prop_assert_eq!(&map_rows, &collect(&input, &mapped, &off, hint_a));

        // 3. Online estimates agree to 1e-12 relative — sequentially and
        //    shard-parallel (the drawn `jobs`), backends compared at the
        //    same worker count.
        let plan = input.aggregate(vec![AggSpec::sum(agg_col, "s")]);
        let online = |c: &Catalog| {
            run_online(
                &plan,
                c,
                &OnlineOptions {
                    seed,
                    chunk_rows: hint_a,
                    parallelism: jobs,
                    ..Default::default()
                },
                |_| {},
            )
            .unwrap()
        };
        let a = online(&ram);
        let b = online(&mapped);
        prop_assert_eq!(a.snapshot.rows, b.snapshot.rows);
        let (ea, eb) = (a.snapshot.aggs[0].estimate, b.snapshot.aggs[0].estimate);
        prop_assert!(
            (ea - eb).abs() <= 1e-12 * (1.0 + ea.abs()),
            "estimate {ea} (ram) vs {eb} (mapped)"
        );
        match (a.snapshot.aggs[0].variance, b.snapshot.aggs[0].variance) {
            (Some(va), Some(vb)) => prop_assert!(
                (va - vb).abs() <= 1e-12 * (1.0 + va.abs()),
                "variance {va} (ram) vs {vb} (mapped)"
            ),
            (va, vb) => prop_assert_eq!(va.is_some(), vb.is_some()),
        }
    }
}

/// Two independent mapped reopens of the same `.sac` directory replay the
/// same seeded realization byte for byte — the mapping carries no hidden
/// per-open state.
#[test]
fn mapped_reopen_replays_byte_identical() {
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.37 })
        .filter(col("v").gt(lit(30.0)));
    let opts = ExecOptions {
        seed: 99,
        ..Default::default()
    };
    let first = collect(&plan, &mapped_catalog(), &opts, 64);
    let second = collect(&plan, &mapped_catalog(), &opts, 17);
    assert!(!first.is_empty());
    assert_eq!(first, second);
}
