//! Shared scan cursors through the engine, end to end: a session that
//! attaches to the circular scan mid-stream (a scan-prefix origin shift)
//! must read out *exactly* the batch estimator at exhaustion, keep
//! Chebyshev coverage across trials, and N concurrent sessions over one
//! table must cost ~1 table scan between them.

use sampling_algebra::core::{estimate_from_sample_moments, GroupedMoments};
use sampling_algebra::exec::{f_vector, layout_dims, open_shared_stream, ExecOptions};
use sampling_algebra::prelude::*;
use sampling_algebra::tpch::Zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// `t(k, v)`: `rows` rows, v cycling 1..=7 (mean 4.0), k cycling 0..10.
fn catalog(rows: i64) -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for i in 0..rows {
        b.push_row(&[Value::Int(i % 10), Value::Float(1.0 + (i % 7) as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

fn sum_plan(p: f64) -> LogicalPlan {
    LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p })
        .aggregate(vec![AggSpec::sum(col("v"), "s")])
}

/// Advance the hub's head to at least `target` rows by pulling a throwaway
/// cursor, so the next session attaches mid-scan at that origin.
fn warm_hub(engine: &Engine, target: u64) -> u64 {
    let hub = engine.shared_scan("t").expect("table exists");
    let mut warm = hub.attach();
    while warm.progress().0 < target {
        warm.next_batch(256).unwrap();
    }
    drop(warm);
    hub.stats().head
}

/// A session attaching at 30% / 60% scan progress must, at exhaustion,
/// equal the batch estimator over the same realized sample to 1e-9 — the
/// origin shift is invisible to the Proposition-8 scaling once the
/// WOR(consumed, total) factor degenerates.
#[test]
fn mid_attach_exhaustion_equals_batch_estimator() {
    let rows = 3000u64;
    for warm_frac in [0.3, 0.6] {
        // A bus size that divides the table keeps produced chunks aligned,
        // so the head lands exactly one revolution past the query's origin
        // and the replay below attaches at the same physical row.
        let engine = Engine::builder(catalog(rows as i64))
            .shared_scans(true)
            .scan_window(250, 1 << 17)
            .build();
        let origin = warm_hub(&engine, (rows as f64 * warm_frac) as u64);
        assert!(origin >= (rows as f64 * warm_frac) as u64 && origin < rows);

        let plan = sum_plan(0.3);
        let r = engine
            .session()
            .query_plan(&plan)
            .seed(9)
            .chunk_rows(128)
            .run()
            .unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        let snap = r.snapshot.as_scalar().unwrap();
        assert_eq!(snap.progress[0], (rows, rows), "full revolution consumed");

        // The query advanced the head exactly one revolution, so a replay
        // stream with the same seed attaches at the same physical origin
        // and realizes the identical Bernoulli sample. Feed it to the
        // batch machinery (Theorem 1 moments) and compare.
        let hub = engine.shared_scan("t").unwrap();
        assert_eq!(hub.stats().head, origin + rows);
        let LogicalPlan::Aggregate { aggs, input } = &plan else {
            unreachable!()
        };
        let mut stream = open_shared_stream(
            input,
            engine.catalog(),
            &ExecOptions {
                seed: 9,
                ..Default::default()
            },
            &hub,
        )
        .unwrap();
        let layout = layout_dims(aggs, stream.schema()).unwrap();
        let mut batch = GroupedMoments::new(r.analysis.schema.n(), layout.dims());
        loop {
            let chunk = stream.next_chunk(4096).unwrap();
            if chunk.is_empty() {
                break;
            }
            for row in &chunk {
                batch
                    .push(&row.lineage, &f_vector(&layout, row).unwrap())
                    .unwrap();
            }
        }
        let report = estimate_from_sample_moments(&r.analysis.gus, &batch.finish()).unwrap();
        let (eo, eb) = (snap.aggs[0].estimate, report.estimate[0]);
        assert!(eo > 0.0);
        assert!(
            (eo - eb).abs() < 1e-9 * (1.0 + eo.abs()),
            "warm {warm_frac}: online {eo} vs batch {eb}"
        );
        let (vo, vb) = (snap.aggs[0].variance.unwrap(), report.variance(0).unwrap());
        assert!(
            (vo - vb).abs() < 1e-9 * (1.0 + vb.abs()),
            "warm {warm_frac}: online {vo} vs batch {vb}"
        );
    }
}

/// 100 seeded trials over a Zipf-skewed table, each attaching the session
/// at a different mid-scan origin: the estimates stay unbiased and the 99%
/// Chebyshev intervals keep ≥ 96% coverage of the true SUM — rotation of
/// the scan origin does not disturb the estimator's statistics.
#[test]
fn mid_attach_coverage_trial() {
    let zipf = Zipf::new(40, 1.3);
    let mut rng = StdRng::seed_from_u64(20_130_826);
    let values: Vec<f64> = (0..4000)
        .map(|_| 1.0 + zipf.sample(&mut rng) as f64)
        .collect();
    let truth: f64 = values.iter().sum();
    let build = || {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for v in &values {
            b.push_row(&[Value::Float(*v)]).unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    };
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.4 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let mut covered = 0u32;
    for seed in 0..100u64 {
        let engine = Engine::builder(build())
            .shared_scans(true)
            .scan_window(250, 1 << 17)
            .build();
        warm_hub(&engine, (seed * 131) % 4000);
        let r = engine
            .session()
            .query_plan(&plan)
            .seed(seed)
            .chunk_rows(256)
            .confidence(0.99)
            .run()
            .unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        let snap = r.snapshot.as_scalar().unwrap();
        if snap.aggs[0].ci_chebyshev.as_ref().unwrap().contains(truth) {
            covered += 1;
        }
    }
    assert!(
        covered >= 96,
        "99% Chebyshev coverage with mid-scan attach: {covered}/100"
    );
}

/// The serving claim, pinned: 4 concurrent sessions over one table via the
/// shared scan cursor gather at most 1.5× the rows a single query's scan
/// gathers. A gate cursor (attached but never pulled) plus a small lag
/// window keeps every session's attach origin within `lag` of row 0, so the
/// bound holds for any thread schedule: gathered ≤ n + lag.
#[test]
fn four_concurrent_sessions_cost_about_one_scan() {
    let n = 20_000u64;

    // Baseline: one query through its own engine gathers exactly n rows.
    let single = Engine::builder(catalog(n as i64))
        .shared_scans(true)
        .build();
    single
        .session()
        .query_plan(&sum_plan(0.5))
        .chunk_rows(512)
        .run()
        .unwrap();
    assert_eq!(single.scan_stats("t").unwrap().rows_gathered, n);

    let lag = n / 4; // 1.25× bound, comfortably under the 1.5× budget
    let engine = Engine::builder(catalog(n as i64))
        .shared_scans(true)
        .scan_window(256, lag)
        .build();
    let hub = engine.shared_scan("t").unwrap();
    let gate = hub.attach();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let engine = engine.clone();
                scope.spawn(move || {
                    engine
                        .session()
                        .query_plan(&sum_plan(0.5))
                        .seed(i)
                        .chunk_rows(512)
                        .run()
                        .unwrap()
                })
            })
            .collect();
        // All four sessions attach (within `lag` of the origin) before the
        // gate releases the window.
        while hub.stats().attached < 5 {
            std::thread::yield_now();
        }
        drop(gate);
        for h in handles {
            let r = h.join().unwrap();
            assert_eq!(r.reason, StopReason::Exhausted);
            assert_eq!(
                r.snapshot.as_scalar().unwrap().progress[0],
                (n, n),
                "each session consumed one full revolution"
            );
        }
    });

    let gathered = engine.scan_stats("t").unwrap().rows_gathered;
    assert!(gathered >= n, "at least one full scan: {gathered}");
    assert!(
        gathered as f64 <= 1.5 * n as f64,
        "4 concurrent sessions gathered {gathered} rows, over 1.5× a single \
         query's {n}-row scan"
    );
    assert_eq!(engine.scan_stats("t").unwrap().attached, 0);
}

/// Engines without `shared_scans(true)` keep private scans: realizations
/// are independent of engine history, and no hub is created by queries.
#[test]
fn private_scans_by_default() {
    let engine = Engine::new(catalog(2000));
    let r1 = engine
        .session()
        .query_plan(&sum_plan(0.5))
        .seed(3)
        .run()
        .unwrap();
    let r2 = engine
        .session()
        .query_plan(&sum_plan(0.5))
        .seed(3)
        .run()
        .unwrap();
    assert!(engine.scan_stats("t").is_none(), "no hub without opt-in");
    // Same seed, private scans: identical realizations regardless of the
    // first query having run.
    let (e1, e2) = (
        r1.snapshot.as_scalar().unwrap().aggs[0].estimate,
        r2.snapshot.as_scalar().unwrap().aggs[0].estimate,
    );
    assert_eq!(e1, e2);
}
