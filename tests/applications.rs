#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! The Section 8 applications of the paper, as integration tests:
//!
//! 1. **Database as a sample** — robustness analysis by viewing the stored
//!    data as a 99% Bernoulli sample of a hypothetical complete database.
//! 2. **Choosing sampling parameters** — predict the variance of *other*
//!    sampling designs from one sampling instance's `Ŷ_S`.
//! 3. **Estimating the size of intermediate relations** — COUNT estimation
//!    with precision, for optimizer-style cardinality estimates.

use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use sampling_algebra::prelude::*;

fn catalog_with(values: &[f64]) -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for (i, v) in values.iter().enumerate() {
        b.push_row(&[Value::Int(i as i64 % 20), Value::Float(*v)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

#[test]
fn database_as_a_sample_flags_fragile_queries() {
    // Uniform data: losing 1% of tuples barely moves the SUM.
    let uniform: Vec<f64> = (0..1000).map(|_| 1.0).collect();
    // Fragile data: one tuple carries half the total.
    let mut fragile: Vec<f64> = (0..1000).map(|_| 1.0).collect();
    fragile[0] = 1000.0;

    let robustness = |values: &[f64]| -> f64 {
        // View the database as a 99% Bernoulli sample (Section 8): compute
        // the estimator's relative standard error under G(0.99).
        let gus = GusParams::bernoulli("t", 0.99).unwrap();
        let mut sbox = SBox::new(gus);
        for (i, v) in values.iter().enumerate() {
            sbox.push_scalar(&[i as u64], *v).unwrap();
        }
        let rep = sbox.finish().unwrap();
        rep.std_error(0).unwrap() / rep.estimate[0]
    };

    let uniform_rse = robustness(&uniform);
    let fragile_rse = robustness(&fragile);
    assert!(
        fragile_rse > 10.0 * uniform_rse,
        "fragile {fragile_rse} vs uniform {uniform_rse}: robustness signal missing"
    );
}

#[test]
fn choosing_sampling_parameters_predicts_other_designs() {
    // From ONE Bernoulli(0.3) sampling instance, predict the estimator
    // variance of Bernoulli(p') for other p' and compare against the true
    // Theorem-1 variance of those designs.
    let values: Vec<f64> = (0..2000).map(|i| 1.0 + (i % 13) as f64).collect();
    let cat = catalog_with(&values);

    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.3 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let run = approx_query(
        &plan,
        &cat,
        &ApproxOptions {
            seed: 4,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();

    for p_alt in [0.05, 0.1, 0.5, 0.8] {
        let alt = GusParams::bernoulli("t", p_alt).unwrap();
        let predicted = run.report.predict_variance(&alt, 0).unwrap();
        // True variance of the alternative design over the population.
        let alt_plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: p_alt })
            .aggregate(vec![AggSpec::sum(col("v"), "s")]);
        let truth = oracle_variance(&alt_plan, &cat).unwrap();
        assert!(
            (predicted - truth).abs() < 0.25 * truth,
            "p'={p_alt}: predicted {predicted} vs true {truth}"
        );
    }
}

#[test]
fn predicted_variance_ranks_designs_correctly() {
    // Even when absolute prediction is noisy, the ranking of designs (more
    // sampling → less variance) must hold — that is what a user needs to
    // choose parameters.
    let values: Vec<f64> = (0..1500).map(|i| (i % 7) as f64).collect();
    let cat = catalog_with(&values);
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.4 })
        .aggregate(vec![AggSpec::sum(col("v"), "s")]);
    let run = approx_query(
        &plan,
        &cat,
        &ApproxOptions {
            seed: 9,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    let predict = |p: f64| {
        run.report
            .predict_variance(&GusParams::bernoulli("t", p).unwrap(), 0)
            .unwrap()
    };
    let v05 = predict(0.05);
    let v2 = predict(0.2);
    let v8 = predict(0.8);
    assert!(v05 > v2 && v2 > v8, "ranking broken: {v05} {v2} {v8}");
}

#[test]
fn intermediate_result_size_estimation() {
    // COUNT of a selective join — the optimizer application. The estimate
    // must be unbiased and come with a usable precision statement.
    let cat = generate(&TpchConfig::scale(0.002).with_seed(2));
    let plan = plan_sql(
        "SELECT COUNT(*) \
         FROM lineitem TABLESAMPLE (15 PERCENT), orders TABLESAMPLE (30 PERCENT) \
         WHERE l_orderkey = o_orderkey AND l_quantity > 25",
        &cat,
    )
    .unwrap();
    let exact = exact_query(&plan, &cat).unwrap()[0];
    let trials = 100;
    let mut mean = 0.0;
    let mut covered = 0;
    for seed in 0..trials {
        let r = approx_query(
            &plan,
            &cat,
            &ApproxOptions {
                seed,
                confidence: 0.95,
                subsample_target: None,
            },
        )
        .unwrap();
        mean += r.aggs[0].estimate;
        if r.aggs[0].ci_chebyshev.as_ref().unwrap().contains(exact) {
            covered += 1;
        }
    }
    mean /= trials as f64;
    assert!((mean - exact).abs() < 0.1 * exact, "mean {mean} vs {exact}");
    assert!(covered >= 97, "size-estimate coverage {covered}/{trials}");
}

#[test]
fn load_shedding_rate_analysis() {
    // Section 8's streaming/load-shedding note: for a target precision,
    // compare candidate shedding rates on a two-relation join by predicted
    // relative error — all from one instrumented run.
    let cat = generate(&TpchConfig::scale(0.002).with_seed(6));
    let plan = plan_sql(
        "SELECT SUM(l_quantity) \
         FROM lineitem TABLESAMPLE (50 PERCENT), orders TABLESAMPLE (50 PERCENT) \
         WHERE l_orderkey = o_orderkey",
        &cat,
    )
    .unwrap();
    let run = approx_query(
        &plan,
        &cat,
        &ApproxOptions {
            seed: 1,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    let estimate = run.aggs[0].estimate;
    // Predict the relative error at various joint shedding rates.
    let mut last_rel_err = f64::INFINITY;
    for keep in [0.05, 0.1, 0.2, 0.4] {
        let design = GusParams::bernoulli("lineitem", keep)
            .unwrap()
            .join(&GusParams::bernoulli("orders", keep).unwrap())
            .unwrap();
        let var = run.report.predict_variance(&design, 0).unwrap();
        let rel_err = var.sqrt() / estimate;
        assert!(
            rel_err < last_rel_err,
            "error should shrink as keep-rate grows"
        );
        last_rel_err = rel_err;
    }
    // At a 40% keep rate the predicted relative error should be small.
    assert!(last_rel_err < 0.2, "rel err {last_rel_err}");
}
