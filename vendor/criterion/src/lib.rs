//! A small, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace must build offline, so this crate provides the subset of
//! criterion's API that the benches under `crates/bench/benches/` use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`Throughput`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a simple wall-clock harness: each benchmark is warmed up
//! briefly, then timed over as many iterations as fit in a fixed measurement
//! window, and the mean time per iteration (plus throughput, when declared)
//! is printed.
//!
//! It is intentionally *not* a statistics engine; it exists so `cargo bench`
//! compiles and produces useful ballpark numbers without network access.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Wall-clock time spent measuring each benchmark (after warm-up).
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Wall-clock time spent warming each benchmark up.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), None, f);
        self
    }
}

/// A named collection of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare how much work one iteration of subsequent benchmarks does, so
    /// the report can show elements/second or bytes/second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Run a benchmark identified by a [`BenchmarkId`], passing `input` to
    /// the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group. (Consumes the group, like criterion's `finish`.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: a function name, a parameter, or
/// both.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { text: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { text: name }
    }
}

/// How much work one benchmark iteration performs.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it as many times as fit in the measurement
    /// window. The routine's return value is dropped (acting as a sink, so
    /// results are not optimized away).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + WARMUP_WINDOW;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < MEASURE_WINDOW {
            std::hint::black_box(routine());
            iterations += 1;
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label:<40} (no measurement — Bencher::iter never called?)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "{label:<40} {:>12}/iter  ({} iters){rate}",
        format_duration(per_iter),
        bencher.iterations
    );
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Define a function `$name` that runs each listed benchmark target against
/// a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` to run the listed `criterion_group!` groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export of [`std::hint::black_box`], for benches that import it from
/// criterion rather than `std`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
