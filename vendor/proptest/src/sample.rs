//! Sampling from explicit value lists: `prop::sample::select`.

use rand::RngExt;

use crate::{Strategy, TestRng};

/// Strategy returned by [`select`].
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.values[rng.random_range(0..self.values.len())].clone()
    }
}

/// A strategy that picks uniformly from `values`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select needs at least one value");
    Select { values }
}
