//! Collection strategies: `prop::collection::vec(element, size)`.

use std::ops::Range;

use rand::RngExt;

use crate::{Strategy, TestRng};

/// A number of elements: either exact (`8usize`) or a range (`5..40`).
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`; see [`vec()`](crate::collection::vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy producing vectors whose elements come from `element` and whose
/// length lies in `size` — `vec(0.0f64..1.0, 8usize)` or `vec(strat, 5..40)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
