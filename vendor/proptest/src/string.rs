//! String strategies from regex-like patterns: `"​.{0,200}"` as a strategy.
//!
//! Real proptest compiles the full regex; this stand-in supports the subset
//! the workspace's fuzz tests use — a pattern made of literal characters and
//! `.` atoms, each optionally quantified with `{m,n}`, `*`, `+` or `?` —
//! which is enough to express "an arbitrary string of bounded length".

use rand::RngExt;

use crate::{Strategy, TestRng};

/// Characters `.` generates: mostly printable ASCII (so SQL-ish inputs are
/// exercised), with some whitespace and non-ASCII mixed in.
fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.random_range(0u32..10) {
        0 => ['\t', '\n', '\r', ' ', 'é', 'λ', '—', '\u{1F600}', '\'', '"']
            [rng.random_range(0usize..10)],
        _ => char::from_u32(rng.random_range(0x20u32..0x7f)).unwrap(),
    }
}

enum Atom {
    Literal(char),
    Any,
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let (lo, hi) = body
                    .split_once(',')
                    .unwrap_or((body.as_str(), body.as_str()));
                (
                    lo.trim().parse().expect("bad {m,n} quantifier"),
                    hi.trim().parse().expect("bad {m,n} quantifier"),
                )
            }
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Strategy for `&'static str` patterns, producing `String`s matching the
/// supported regex subset.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let reps = rng.random_range(piece.min..=piece.max);
            for _ in 0..reps {
                match piece.atom {
                    Atom::Literal(c) => out.push(c),
                    Atom::Any => out.push(arbitrary_char(rng)),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Strategy;

    #[test]
    fn dot_quantified_produces_bounded_strings(// deterministic: seeded rng
    ) {
        let strategy = ".{0,20}";
        let mut rng = crate::test_rng("dot", 1);
        for _ in 0..200 {
            let s = Strategy::sample(&strategy, &mut rng);
            assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = crate::test_rng("lit", 0);
        assert_eq!(Strategy::sample(&"abc", &mut rng), "abc");
    }
}
