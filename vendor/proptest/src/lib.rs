//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace must build offline, so this crate implements a miniature
//! property-testing engine with the API surface `tests/proptests.rs` uses:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and [`Strategy::boxed`];
//! * range strategies (`0.0f64..1.0`, `1u64..=50`, …), tuple strategies,
//!   [`collection::vec`], and [`any`] via [`Arbitrary`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros, plus [`ProptestConfig`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics with
//! the case number, and the run is deterministic (the RNG is seeded from the
//! test name and case index), so failures reproduce exactly.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SampleRange, SeedableRng};

pub mod collection;
pub mod sample;
mod string;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The generator driving value production. Deterministic per test + case.
pub type TestRng = StdRng;

/// Build the deterministic RNG for one case of one property test.
/// (Used by the [`proptest!`] macro expansion; not part of proptest's API.)
#[doc(hidden)]
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for values `v` of this strategy.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between several strategies of one value type; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A strategy that picks one of `arms` uniformly, then samples it.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one strategy");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let ix = rng.random_range(0..self.arms.len());
        self.arms[ix].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "anything goes" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.random_range(-300.0f64..300.0);
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag)
    }
}

struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary + 'static>() -> impl Strategy<Value = T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Everything a test file normally imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy,
    };

    /// Namespace mirror of the crate root, so `prop::collection::vec` and
    /// `prop::sample::select` work.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Uniform choice between strategies: `prop_oneof![s1, s2, …]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a [`proptest!`] body; reports the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Bind `name in strategy` argument lists inside the generated test body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strategy:expr $(, $($rest:tt)*)?) => {
        let mut $name = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bindings!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident in $strategy:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bindings!($rng $(, $($rest)*)?);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(stringify!($name), case);
                    let run = || {
                        $crate::__proptest_bindings!(rng, $($args)*);
                        $body
                    };
                    // One panic message per failing case, no shrinking.
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (deterministic; rerun reproduces it)",
                            stringify!($name), case, config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Declare property tests. Each `#[test] fn name(x in strategy, …) { … }`
/// item becomes a normal test that checks the body over many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.25f64..0.75, n in 3u64..=9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..=9).contains(&n));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, 0u32..10),
            s in (0i64..5).prop_map(|v| v * 2),
        ) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert_eq!(s % 2, 0);
        }

        #[test]
        fn oneof_hits_every_arm(v in prop_oneof![0u8..1, 10u8..11]) {
            prop_assert!(v == 0 || v == 10);
        }

        #[test]
        fn collections_respect_size(xs in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn mut_bindings_work(mut xs in crate::collection::vec(0u32..100, 1..4)) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn any_u64_varies() {
        let strategy = any::<u64>();
        let mut rng = crate::test_rng("any_u64_varies", 0);
        let a = strategy.sample(&mut rng);
        let b = strategy.sample(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_per_name_and_case() {
        use rand::RngCore;
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
