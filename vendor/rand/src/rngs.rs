//! Concrete generators. The only one the workspace needs is [`StdRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ with the
/// state expanded from a `u64` seed by SplitMix64, as the xoshiro authors
/// recommend.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
