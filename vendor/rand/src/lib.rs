//! A small, dependency-free stand-in for the `rand` crate.
//!
//! The workspace must build offline, so instead of pulling `rand` from
//! crates.io this crate re-implements exactly the surface the rest of the
//! workspace uses: [`rngs::StdRng`] (an xoshiro256++ generator seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension
//! trait with [`RngExt::random`] and [`RngExt::random_range`].
//!
//! The generator is deterministic for a given seed on every platform, which
//! the test-suite and the TPC-H generator rely on.

#![warn(missing_docs)]

pub mod rngs;

pub use rngs::StdRng;

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly "from the whole type" — the trait
/// behind [`RngExt::random`].
pub trait Random {
    /// Draw a uniform value from the natural domain of the type
    /// (`[0, 1)` for floats, the full range for integers).
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The minimal generator interface: a source of uniform `u64` words.
pub trait RngCore {
    /// Produce the next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods available on every [`RngCore`]; mirrors the parts of
/// `rand::Rng` the workspace uses.
pub trait RngExt: RngCore {
    /// Sample a uniform value over the natural domain of `T`
    /// (`[0, 1)` for `f64`/`f32`, the full range for integers).
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Sample uniformly from a range, e.g. `rng.random_range(0..10)` or
    /// `rng.random_range(0.5..=1.5)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, span)` by widening multiplication (Lemire), with a
/// rejection loop to remove modulo bias.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // A Range's span never covers all of u64, so it fits in u64.
                let off = bounded_u64(rng, span as u64);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start + (self.end - self.start) * (unit_f64(rng) as $t);
                // `start + span * u` can round up to `end` when the span is
                // near the float spacing at that magnitude; the half-open
                // contract must hold regardless.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let f: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.random_range(5..5);
    }

    #[test]
    fn half_open_float_range_never_returns_end() {
        // The span equals the float spacing at this magnitude, so the naive
        // `start + span * u` rounds up to `end` for ~a quarter of draws.
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(1e16..1e16 + 2.0);
            assert!(v < 1e16 + 2.0, "returned the excluded endpoint");
        }
    }
}
