//! Error type for SQL lexing, parsing and binding.

use std::fmt;

/// Errors from the SQL front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error: unexpected character or malformed literal.
    Lex {
        /// Byte offset in the input.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error: unexpected token.
    Parse {
        /// Byte offset of the offending token.
        position: usize,
        /// What was expected / found.
        message: String,
    },
    /// Binding error: the query is well-formed but meaningless against the
    /// catalog (unknown table/column, unsupported construct).
    Bind(String),
    /// Propagated plan error.
    Plan(sa_plan::PlanError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SqlError::Bind(msg) => write!(f, "bind error: {msg}"),
            SqlError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sa_plan::PlanError> for SqlError {
    fn from(e: sa_plan::PlanError) -> Self {
        SqlError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_positions() {
        let e = SqlError::Parse {
            position: 17,
            message: "expected FROM".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("FROM"));
    }
}
