//! Binding: parsed [`Query`] → [`LogicalPlan`].
//!
//! The binder resolves column references against the catalog, classifies
//! `WHERE` conjuncts (per-table filters vs join conditions vs residual
//! cross-table predicates), builds a left-deep join tree in `FROM` order,
//! and translates `TABLESAMPLE` clauses into [`SamplingMethod`] operators on
//! the base relations — producing exactly the plan shape the SOA rewriter
//! analyzes.

use sa_expr::Expr;
use sa_plan::{AggSpec, LogicalPlan};
use sa_sampling::SamplingMethod;
use sa_storage::{Catalog, Schema};

use crate::ast::{AggCall, Query, SampleSpec};
use crate::error::SqlError;
use crate::Result;

/// Bind a parsed query against `catalog`.
pub fn bind_query(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    if query.from.is_empty() {
        return Err(SqlError::Bind("FROM list is empty".into()));
    }
    // Resolve each FROM item's schema (qualified by its binding name).
    let mut schemas: Vec<Schema> = Vec::with_capacity(query.from.len());
    for t in &query.from {
        let table = catalog
            .get(&t.table)
            .map_err(|e| SqlError::Bind(e.to_string()))?;
        schemas.push(table.schema().qualify_all(t.binding_name()));
    }
    // Duplicate binding names are self-joins: rejected with a helpful error.
    for (i, t) in query.from.iter().enumerate() {
        for u in &query.from[..i] {
            if t.binding_name() == u.binding_name() {
                return Err(SqlError::Bind(format!(
                    "`{}` appears twice in FROM; alias one occurrence (self-joins are not \
                     analyzable — see the paper's Section 9)",
                    t.binding_name()
                )));
            }
        }
    }

    // Classify WHERE conjuncts by the set of FROM items they reference.
    let mut table_filters: Vec<Vec<Expr>> = vec![Vec::new(); query.from.len()];
    // (highest table index, conjunct) — attached at the join that first
    // covers all referenced tables.
    let mut join_conjuncts: Vec<(usize, Expr)> = Vec::new();
    if let Some(pred) = &query.predicate {
        for conjunct in pred.split_conjuncts() {
            let tables = tables_of(conjunct, &schemas)?;
            match tables.len() {
                0 => join_conjuncts.push((query.from.len() - 1, conjunct.clone())),
                1 => table_filters[tables[0]].push(conjunct.clone()),
                _ => {
                    let hi = *tables.iter().max().expect("non-empty");
                    join_conjuncts.push((hi, conjunct.clone()));
                }
            }
        }
    }

    // Build per-table subplans: scan → sample → filters.
    let mut subplans: Vec<LogicalPlan> = Vec::with_capacity(query.from.len());
    for (i, t) in query.from.iter().enumerate() {
        let scan = || {
            if t.binding_name() == t.table {
                LogicalPlan::scan(&t.table)
            } else {
                LogicalPlan::scan_as(&t.table, t.binding_name())
            }
        };
        let mut plan = scan();
        if let Some(spec) = &t.sample {
            plan = plan.sample(sample_method(spec)?);
            // `TABLESAMPLE s1 UNION TABLESAMPLE s2 …`: independent draws of
            // the same scan, combined by Proposition 7's union-of-samples
            // (dedup by lineage). Filters go *above* the union so every
            // branch stays a sample of the identical expression.
            for spec in &t.union_samples {
                plan = plan.union_samples(scan().sample(sample_method(spec)?));
            }
        }
        if !table_filters[i].is_empty() {
            plan = plan.filter(Expr::conjoin(table_filters[i].clone()));
        }
        subplans.push(plan);
    }

    // Left-deep join tree in FROM order; conjuncts attach at the first join
    // that covers them.
    let mut iter = subplans.into_iter();
    let mut plan = iter.next().expect("FROM non-empty");
    for (i, right) in iter.enumerate() {
        let right_index = i + 1;
        let here: Vec<Expr> = join_conjuncts
            .iter()
            .filter(|(hi, _)| *hi == right_index)
            .map(|(_, e)| e.clone())
            .collect();
        plan = if here.is_empty() {
            plan.cross(right)
        } else {
            plan.join_on(right, Expr::conjoin(here))
        };
    }
    // Conjuncts landing on table 0 alone already went to filters; any
    // zero-table conjuncts attached at the last index are handled above.
    if query.from.len() == 1 {
        let trailing: Vec<Expr> = join_conjuncts.into_iter().map(|(_, e)| e).collect();
        if !trailing.is_empty() {
            plan = plan.filter(Expr::conjoin(trailing));
        }
    }

    // Aggregates.
    let mut aggs = Vec::with_capacity(query.select.len());
    for (i, item) in query.select.iter().enumerate() {
        let default_name = format!("col{i}");
        let alias = item.alias.clone().unwrap_or(default_name);
        let mut spec = match &item.func {
            AggCall::Sum(e) => AggSpec::sum(e.clone(), alias),
            AggCall::Avg(e) => AggSpec::avg(e.clone(), alias),
            AggCall::CountStar => AggSpec::count_star(alias),
            AggCall::Count(e) => AggSpec {
                func: sa_plan::AggFunc::Count,
                expr: Some(e.clone()),
                quantile: None,
                alias,
            },
        };
        if let Some(q) = item.quantile {
            spec = spec.with_quantile(q);
        }
        aggs.push(spec);
    }
    let plan = plan.aggregate(aggs);
    plan.validate(catalog)?;
    Ok(plan)
}

/// Which FROM items (by index) an expression references. Errors on unknown
/// or ambiguous columns.
fn tables_of(expr: &Expr, schemas: &[Schema]) -> Result<Vec<usize>> {
    let mut out: Vec<usize> = Vec::new();
    for name in expr.columns_used() {
        let mut matches: Vec<usize> = Vec::new();
        for (i, s) in schemas.iter().enumerate() {
            if s.index_of(name).is_ok() {
                matches.push(i);
            }
        }
        match matches.len() {
            0 => {
                return Err(SqlError::Bind(format!(
                    "column `{name}` not found in any FROM table"
                )))
            }
            1 => {
                if !out.contains(&matches[0]) {
                    out.push(matches[0]);
                }
            }
            _ => {
                return Err(SqlError::Bind(format!(
                    "column `{name}` is ambiguous across the FROM list; qualify it"
                )))
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

fn sample_method(spec: &SampleSpec) -> Result<SamplingMethod> {
    Ok(match spec {
        SampleSpec::Percent(p) => SamplingMethod::Bernoulli { p: p / 100.0 },
        SampleSpec::Rows(n) => SamplingMethod::Wor { size: *n },
        SampleSpec::SystemPercent(p) => SamplingMethod::System { p: p / 100.0 },
    })
}

/// Parse and bind a scalar aggregate query in one call. Rejects `GROUP BY`
/// (use [`plan_grouped_sql`] for grouped estimation).
pub fn plan_sql(sql: &str, catalog: &Catalog) -> Result<LogicalPlan> {
    let q = crate::parser::parse(sql)?;
    if !q.group_by.is_empty() {
        return Err(SqlError::Bind(
            "query has GROUP BY; use plan_grouped_sql + approx_group_query".into(),
        ));
    }
    bind_query(&q, catalog)
}

/// Parse and bind a (possibly grouped) aggregate query: returns the
/// aggregate plan plus the `GROUP BY` expressions, ready for
/// `sa_exec::approx_group_query` (or `approx_query` when the list is empty).
///
/// A `WITHIN … PERCENT CONFIDENCE …` clause, if present, is accepted and
/// ignored here — batch estimation has no stopping loop. Use
/// [`plan_online_sql`] to obtain the lowered stopping rule.
pub fn plan_grouped_sql(sql: &str, catalog: &Catalog) -> Result<(LogicalPlan, Vec<Expr>)> {
    let q = crate::parser::parse(sql)?;
    let plan = bind_query(&q, catalog)?;
    Ok((plan, q.group_by))
}

/// Parse and bind a scalar aggregate query for **online** (progressive)
/// estimation: returns the plan plus the stopping rule lowered from the
/// query's `WITHIN ε PERCENT CONFIDENCE γ` clause (`None` when the query has
/// no accuracy clause — the caller supplies its own rule or runs to
/// exhaustion).
pub fn plan_online_sql(
    sql: &str,
    catalog: &Catalog,
) -> Result<(LogicalPlan, Option<sa_plan::StoppingRule>)> {
    let (plan, group_by, rule) = plan_online_grouped_sql(sql, catalog)?;
    if !group_by.is_empty() {
        // Not a capability gap any more — the scalar signature just cannot
        // carry per-group results.
        return Err(SqlError::Bind(
            "query has GROUP BY; plan it with plan_online_grouped_sql and run it with the \
             grouped online driver (per-group stopping)"
                .into(),
        ));
    }
    Ok((plan, rule))
}

/// Parse and bind a (possibly grouped) aggregate query for **online**
/// (progressive) estimation: returns the plan, the `GROUP BY` expressions
/// (empty for a scalar query), and the stopping rule lowered from the
/// query's `WITHIN ε PERCENT CONFIDENCE γ` clause. Ready for
/// `sa_online::run_online_grouped` (or `run_online` when the key list is
/// empty).
pub fn plan_online_grouped_sql(
    sql: &str,
    catalog: &Catalog,
) -> Result<(LogicalPlan, Vec<Expr>, Option<sa_plan::StoppingRule>)> {
    let q = crate::parser::parse(sql)?;
    let plan = bind_query(&q, catalog)?;
    Ok((plan, q.group_by, q.accuracy.map(|a| a.stopping_rule())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_storage::{DataType, Field, TableBuilder, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let li = Schema::new(vec![
            Field::new("l_orderkey", DataType::Int),
            Field::new("l_extendedprice", DataType::Float),
            Field::new("l_discount", DataType::Float),
            Field::new("l_tax", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("lineitem", li);
        for i in 0..20 {
            b.push_row(&[
                Value::Int(i % 5),
                Value::Float(100.0 + i as f64),
                Value::Float(0.05),
                Value::Float(0.02),
            ])
            .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        let o = Schema::new(vec![
            Field::new("o_orderkey", DataType::Int),
            Field::new("o_totalprice", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("orders", o);
        for i in 0..5 {
            b.push_row(&[Value::Int(i), Value::Float(1000.0)]).unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    #[test]
    fn binds_paper_query1() {
        let plan = plan_sql(
            "SELECT SUM(l_discount*(1.0-l_tax)) \
             FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (5 ROWS) \
             WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0",
            &catalog(),
        )
        .unwrap();
        // Shape: Aggregate(Join(Filter(Sample(lineitem)), Sample(orders))).
        let LogicalPlan::Aggregate { input, .. } = &plan else {
            panic!("no aggregate root")
        };
        let LogicalPlan::Join {
            condition,
            left,
            right,
            ..
        } = input.as_ref()
        else {
            panic!("no join: {input}")
        };
        assert!(condition.is_some());
        assert!(matches!(left.as_ref(), LogicalPlan::Filter { .. }));
        assert!(matches!(right.as_ref(), LogicalPlan::Sample { .. }));
        assert_eq!(plan.base_relations(), vec!["lineitem", "orders"]);
    }

    #[test]
    fn binds_union_of_samples_with_filter_above() {
        let plan = plan_sql(
            "SELECT SUM(l_extendedprice) AS s FROM lineitem \
             TABLESAMPLE (40 PERCENT) UNION TABLESAMPLE (25 PERCENT) \
             WHERE l_extendedprice > 100.0",
            &catalog(),
        )
        .unwrap();
        // Shape: Aggregate(Filter(Union(Sample, Sample))) — the filter sits
        // above the union so both branches sample the identical expression.
        let LogicalPlan::Aggregate { input, .. } = &plan else {
            panic!("no aggregate root")
        };
        let LogicalPlan::Filter { input, .. } = input.as_ref() else {
            panic!("filter must sit above the union: {input}")
        };
        let LogicalPlan::UnionSamples { left, right } = input.as_ref() else {
            panic!("no union: {input}")
        };
        assert!(matches!(left.as_ref(), LogicalPlan::Sample { .. }));
        assert!(matches!(right.as_ref(), LogicalPlan::Sample { .. }));
        // Mixed SYSTEM/BERNOULLI branches parse but fail validation.
        assert!(plan_sql(
            "SELECT COUNT(*) FROM lineitem \
             TABLESAMPLE (40 PERCENT) UNION TABLESAMPLE SYSTEM (25)",
            &catalog(),
        )
        .is_err());
    }

    #[test]
    fn single_table_filter_attaches_to_scan() {
        let plan = plan_sql(
            "SELECT COUNT(*) FROM lineitem TABLESAMPLE (50 PERCENT) WHERE l_extendedprice > 110",
            &catalog(),
        )
        .unwrap();
        let LogicalPlan::Aggregate { input, .. } = &plan else {
            panic!()
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Filter { .. }));
    }

    #[test]
    fn aliases_bind_and_self_join_rejected() {
        let plan = plan_sql(
            "SELECT COUNT(*) FROM lineitem AS a, lineitem AS b WHERE a.l_orderkey = b.l_orderkey",
            &catalog(),
        );
        // Aliased self-join parses and binds (distinct lineage aliases).
        assert!(plan.is_ok());
        let err = plan_sql(
            "SELECT COUNT(*) FROM lineitem, lineitem WHERE l_extendedprice > 0",
            &catalog(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn unknown_column_and_table() {
        assert!(plan_sql("SELECT SUM(nope) FROM lineitem", &catalog()).is_err());
        assert!(plan_sql("SELECT COUNT(*) FROM nonexistent", &catalog()).is_err());
    }

    #[test]
    fn ambiguous_column_rejected() {
        // Both lineitem aliases have l_orderkey; unqualified is ambiguous.
        let err = plan_sql(
            "SELECT COUNT(*) FROM lineitem AS a, lineitem AS b WHERE l_orderkey = 1",
            &catalog(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn cross_join_without_condition() {
        let plan = plan_sql("SELECT COUNT(*) FROM lineitem, orders", &catalog()).unwrap();
        let LogicalPlan::Aggregate { input, .. } = &plan else {
            panic!()
        };
        assert!(matches!(
            input.as_ref(),
            LogicalPlan::Join {
                condition: None,
                ..
            }
        ));
    }

    #[test]
    fn system_sampling_binds() {
        let plan = plan_sql(
            "SELECT COUNT(*) FROM lineitem TABLESAMPLE SYSTEM (10)",
            &catalog(),
        )
        .unwrap();
        let LogicalPlan::Aggregate { input, .. } = &plan else {
            panic!()
        };
        assert!(matches!(
            input.as_ref(),
            LogicalPlan::Sample {
                method: SamplingMethod::System { .. },
                ..
            }
        ));
    }

    #[test]
    fn quantile_becomes_spec() {
        let plan = plan_sql(
            "CREATE VIEW APPROX (lo, hi) AS \
             SELECT QUANTILE(SUM(l_discount), 0.05), QUANTILE(SUM(l_discount), 0.95) \
             FROM lineitem TABLESAMPLE (10 PERCENT)",
            &catalog(),
        )
        .unwrap();
        let LogicalPlan::Aggregate { aggs, .. } = &plan else {
            panic!()
        };
        assert_eq!(aggs[0].quantile, Some(0.05));
        assert_eq!(aggs[0].alias, "lo");
        assert_eq!(aggs[1].quantile, Some(0.95));
    }

    #[test]
    fn default_aliases_generated() {
        let plan = plan_sql("SELECT COUNT(*), SUM(l_tax) FROM lineitem", &catalog()).unwrap();
        let LogicalPlan::Aggregate { aggs, .. } = &plan else {
            panic!()
        };
        assert_eq!(aggs[0].alias, "col0");
        assert_eq!(aggs[1].alias, "col1");
    }

    #[test]
    fn online_grouped_lowering_carries_keys_and_rule() {
        let (plan, group_by, rule) = plan_online_grouped_sql(
            "SELECT l_orderkey, SUM(l_extendedprice) AS s \
             FROM lineitem TABLESAMPLE (10 PERCENT) \
             GROUP BY l_orderkey WITHIN 5 PERCENT CONFIDENCE 95",
            &catalog(),
        )
        .unwrap();
        assert!(matches!(plan, LogicalPlan::Aggregate { .. }));
        assert_eq!(group_by.len(), 1);
        let target = rule.unwrap().ci_target.unwrap();
        assert!((target.epsilon - 0.05).abs() < 1e-12);
        assert!((target.confidence - 0.95).abs() < 1e-12);
        // A scalar query comes back with no keys.
        let (_, group_by, rule) = plan_online_grouped_sql(
            "SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (10 PERCENT)",
            &catalog(),
        )
        .unwrap();
        assert!(group_by.is_empty());
        assert!(rule.is_none());
    }

    #[test]
    fn scalar_online_entry_redirects_grouped_queries() {
        let err = plan_online_sql(
            "SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem GROUP BY l_orderkey",
            &catalog(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
        assert!(err.to_string().contains("plan_online_grouped_sql"), "{err}");
    }

    #[test]
    fn literal_only_predicate() {
        let plan = plan_sql("SELECT COUNT(*) FROM lineitem WHERE 1 < 2", &catalog()).unwrap();
        plan.validate(&catalog()).unwrap();
    }
}
