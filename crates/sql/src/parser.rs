//! Recursive-descent parser for the supported SQL dialect.

use sa_expr::{col, lit, BinOp, Expr};
use sa_storage::Value;

use crate::ast::{AccuracyClause, AggCall, AggItem, Query, SampleSpec, TableRef, ViewHeader};
use crate::error::SqlError;
use crate::token::{tokenize, Keyword, Token, TokenKind};
use crate::Result;

/// Parse one SQL statement.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat_if(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn err(&self, message: String) -> SqlError {
        SqlError::Parse {
            position: self.position(),
            message,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.advance() {
            TokenKind::Int(i) => Ok(i as f64),
            TokenKind::Float(f) => Ok(f),
            other => Err(self.err(format!("expected a number, found {other:?}"))),
        }
    }

    // query := [CREATE VIEW ident [(idents)] AS] SELECT … FROM … [WHERE …]
    fn query(&mut self) -> Result<Query> {
        let view = if self.eat_kw(Keyword::Create) {
            self.expect_kw(Keyword::View)?;
            // Allow the keyword APPROX as a view name (the paper's example).
            let name = if self.eat_kw(Keyword::Approx) {
                "APPROX".to_string()
            } else {
                self.ident("view name")?
            };
            let mut columns = Vec::new();
            if self.eat_if(&TokenKind::LParen) {
                loop {
                    columns.push(self.ident("view column")?);
                    if !self.eat_if(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, "`)`")?;
            }
            self.expect_kw(Keyword::As)?;
            Some(ViewHeader { name, columns })
        } else {
            None
        };

        self.expect_kw(Keyword::Select)?;
        let mut select = Vec::new();
        let mut keys = Vec::new();
        loop {
            if self.peek_is_aggregate() {
                select.push(self.agg_item()?);
            } else {
                let e = self.expr()?;
                let alias = if self.eat_kw(Keyword::As) {
                    Some(self.ident("output alias")?)
                } else if let TokenKind::Ident(_) = self.peek() {
                    Some(self.ident("output alias")?)
                } else {
                    None
                };
                keys.push((e, alias));
            }
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        if select.is_empty() {
            return Err(self
                .err("select list needs at least one aggregate (SUM/COUNT/AVG/QUANTILE)".into()));
        }

        self.expect_kw(Keyword::From)?;
        let mut from = vec![self.table_ref()?];
        while self.eat_if(&TokenKind::Comma) {
            from.push(self.table_ref()?);
        }

        let predicate = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.eat_if(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        if group_by.is_empty() && !keys.is_empty() {
            return Err(self.err("non-aggregate select items require a GROUP BY clause".into()));
        }
        for (k, _) in &keys {
            if !group_by.contains(k) {
                return Err(self.err(format!(
                    "select item `{k}` is not an aggregate and does not appear in GROUP BY"
                )));
            }
        }

        let accuracy = if self.eat_kw(Keyword::Within) {
            Some(self.accuracy_clause()?)
        } else {
            None
        };

        let mut q = Query {
            view,
            select,
            keys,
            from,
            predicate,
            group_by,
            accuracy,
        };
        // View column names override select aliases positionally.
        if let Some(v) = &q.view {
            for (item, name) in q.select.iter_mut().zip(&v.columns) {
                item.alias = Some(name.clone());
            }
        }
        Ok(q)
    }

    // accuracy := WITHIN num PERCENT CONFIDENCE num   (WITHIN already eaten)
    //
    // The confidence accepts either a level in (0,1) or a percentage in
    // (1,100): `CONFIDENCE 95` and `CONFIDENCE 0.95` mean the same thing.
    fn accuracy_clause(&mut self) -> Result<AccuracyClause> {
        let pct = self.number()?;
        if !(0.0 < pct && pct <= 100.0) {
            return Err(self.err(format!("WITHIN percentage {pct} not in (0,100]")));
        }
        self.expect_kw(Keyword::Percent)?;
        self.expect_kw(Keyword::Confidence)?;
        let raw = self.number()?;
        let confidence = if raw > 1.0 { raw / 100.0 } else { raw };
        if !(0.0 < confidence && confidence < 1.0) {
            return Err(self.err(format!(
                "CONFIDENCE {raw} must be a level in (0,1) or a percentage in (1,100)"
            )));
        }
        Ok(AccuracyClause {
            epsilon: pct / 100.0,
            confidence,
        })
    }

    /// True if the next token starts an aggregate call.
    fn peek_is_aggregate(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Keyword(Keyword::Sum)
                | TokenKind::Keyword(Keyword::Count)
                | TokenKind::Keyword(Keyword::Avg)
                | TokenKind::Keyword(Keyword::Quantile)
        )
    }

    // agg_item := agg ['AS' ident]
    fn agg_item(&mut self) -> Result<AggItem> {
        let (func, quantile) = self.agg()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident("output alias")?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident("output alias")?)
        } else {
            None
        };
        Ok(AggItem {
            func,
            quantile,
            alias,
        })
    }

    // agg := SUM(e) | COUNT(*|e) | AVG(e) | QUANTILE(agg, q)
    fn agg(&mut self) -> Result<(AggCall, Option<f64>)> {
        if self.eat_kw(Keyword::Quantile) {
            self.expect(&TokenKind::LParen, "`(`")?;
            let (inner, nested_q) = self.agg()?;
            if nested_q.is_some() {
                return Err(self.err("nested QUANTILE is not allowed".into()));
            }
            self.expect(&TokenKind::Comma, "`,`")?;
            let q = self.number()?;
            if !(0.0..=1.0).contains(&q) {
                return Err(self.err(format!("quantile {q} not in [0,1]")));
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok((inner, Some(q)));
        }
        if self.eat_kw(Keyword::Sum) {
            self.expect(&TokenKind::LParen, "`(`")?;
            let e = self.expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok((AggCall::Sum(e), None));
        }
        if self.eat_kw(Keyword::Avg) {
            self.expect(&TokenKind::LParen, "`(`")?;
            let e = self.expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok((AggCall::Avg(e), None));
        }
        if self.eat_kw(Keyword::Count) {
            self.expect(&TokenKind::LParen, "`(`")?;
            if self.eat_if(&TokenKind::Star) {
                self.expect(&TokenKind::RParen, "`)`")?;
                return Ok((AggCall::CountStar, None));
            }
            let e = self.expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok((AggCall::Count(e), None));
        }
        Err(self.err(format!(
            "expected an aggregate (SUM/COUNT/AVG/QUANTILE), found {:?}",
            self.peek()
        )))
    }

    // table_ref := ident [TABLESAMPLE spec (UNION TABLESAMPLE spec)*] [[AS] ident]
    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident("table name")?;
        let mut union_samples = Vec::new();
        let sample = if self.eat_kw(Keyword::Tablesample) {
            let first = self.sample_spec()?;
            // Proposition 7: further independent samples of the same
            // table, combined by the union-of-samples operator.
            while self.eat_kw(Keyword::Union) {
                self.expect_kw(Keyword::Tablesample)?;
                union_samples.push(self.sample_spec()?);
            }
            Some(first)
        } else {
            None
        };
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident("table alias")?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident("table alias")?)
        } else {
            None
        };
        Ok(TableRef {
            table,
            sample,
            union_samples,
            alias,
        })
    }

    // spec := [BERNOULLI] '(' n (PERCENT|ROWS) ')' | SYSTEM '(' n [PERCENT] ')'
    fn sample_spec(&mut self) -> Result<SampleSpec> {
        if self.eat_kw(Keyword::System) {
            self.expect(&TokenKind::LParen, "`(`")?;
            let n = self.number()?;
            self.eat_kw(Keyword::Percent); // optional, as in the standard
            self.expect(&TokenKind::RParen, "`)`")?;
            return self.percent_spec(n, true);
        }
        self.eat_kw(Keyword::Bernoulli); // optional
        self.expect(&TokenKind::LParen, "`(`")?;
        let n = self.number()?;
        if self.eat_kw(Keyword::Rows) {
            self.expect(&TokenKind::RParen, "`)`")?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(self.err(format!("ROWS count {n} must be a non-negative integer")));
            }
            return Ok(SampleSpec::Rows(n as u64));
        }
        // PERCENT is the default unit (and may be explicit).
        self.eat_kw(Keyword::Percent);
        self.expect(&TokenKind::RParen, "`)`")?;
        self.percent_spec(n, false)
    }

    fn percent_spec(&mut self, n: f64, system: bool) -> Result<SampleSpec> {
        if !(0.0..=100.0).contains(&n) {
            return Err(self.err(format!("percentage {n} not in [0,100]")));
        }
        Ok(if system {
            SampleSpec::SystemPercent(n)
        } else {
            SampleSpec::Percent(n)
        })
    }

    // Expression grammar, lowest precedence first: OR, AND, NOT, comparison,
    // additive, multiplicative, unary, primary.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            e = e.and(self.not_expr()?);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(Keyword::Not) {
            Ok(self.not_expr()?.not())
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut e = self.multiplicative()?;
        loop {
            if self.eat_if(&TokenKind::Plus) {
                e = e.add(self.multiplicative()?);
            } else if self.eat_if(&TokenKind::Minus) {
                e = e.sub(self.multiplicative()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut e = self.unary()?;
        loop {
            if self.eat_if(&TokenKind::Star) {
                e = e.mul(self.unary()?);
            } else if self.eat_if(&TokenKind::Slash) {
                e = e.div(self.unary()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_if(&TokenKind::Minus) {
            Ok(self.unary()?.neg())
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            TokenKind::Int(i) => Ok(lit(i)),
            TokenKind::Float(f) => Ok(lit(f)),
            TokenKind::Str(s) => Ok(lit(s.as_str())),
            TokenKind::Keyword(Keyword::True) => Ok(lit(true)),
            TokenKind::Keyword(Keyword::False) => Ok(lit(false)),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::Literal(Value::Null)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat_if(&TokenKind::Dot) {
                    let field = self.ident("column name")?;
                    Ok(col(format!("{name}.{field}")))
                } else {
                    Ok(col(name))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query1() {
        let q = parse(
            "SELECT SUM(l_discount*(1.0-l_tax)) \
             FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) \
             WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0;",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].sample, Some(SampleSpec::Percent(10.0)));
        assert_eq!(q.from[1].sample, Some(SampleSpec::Rows(1000)));
        assert!(q.predicate.is_some());
        assert!(matches!(q.select[0].func, AggCall::Sum(_)));
    }

    #[test]
    fn parses_approx_view_with_quantiles() {
        let q = parse(
            "CREATE VIEW APPROX (lo, hi) AS \
             SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05), \
                    QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95) \
             FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) \
             WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0",
        )
        .unwrap();
        let v = q.view.as_ref().unwrap();
        assert_eq!(v.name, "APPROX");
        assert_eq!(v.columns, vec!["lo", "hi"]);
        assert_eq!(q.select[0].quantile, Some(0.05));
        assert_eq!(q.select[1].quantile, Some(0.95));
        // View columns become aliases.
        assert_eq!(q.select[0].alias.as_deref(), Some("lo"));
        assert_eq!(q.select[1].alias.as_deref(), Some("hi"));
    }

    #[test]
    fn count_star_and_avg() {
        let q = parse("SELECT COUNT(*), AVG(x), COUNT(y) FROM t").unwrap();
        assert!(matches!(q.select[0].func, AggCall::CountStar));
        assert!(matches!(q.select[1].func, AggCall::Avg(_)));
        assert!(matches!(q.select[2].func, AggCall::Count(_)));
    }

    #[test]
    fn system_sampling() {
        let q = parse("SELECT COUNT(*) FROM t TABLESAMPLE SYSTEM (5)").unwrap();
        assert_eq!(q.from[0].sample, Some(SampleSpec::SystemPercent(5.0)));
        let q = parse("SELECT COUNT(*) FROM t TABLESAMPLE SYSTEM (5 PERCENT)").unwrap();
        assert_eq!(q.from[0].sample, Some(SampleSpec::SystemPercent(5.0)));
    }

    #[test]
    fn union_of_samples() {
        let q = parse(
            "SELECT SUM(v) FROM t TABLESAMPLE (40 PERCENT) \
             UNION TABLESAMPLE (25 PERCENT) UNION TABLESAMPLE (30 PERCENT)",
        )
        .unwrap();
        assert_eq!(q.from[0].sample, Some(SampleSpec::Percent(40.0)));
        assert_eq!(
            q.from[0].union_samples,
            vec![SampleSpec::Percent(25.0), SampleSpec::Percent(30.0)]
        );
        // UNION must be followed by a TABLESAMPLE clause…
        assert!(parse("SELECT SUM(v) FROM t TABLESAMPLE (40 PERCENT) UNION (5 ROWS)").is_err());
        // …and must follow one (UNION is a keyword, not an alias).
        assert!(parse("SELECT SUM(v) FROM t UNION TABLESAMPLE (5 ROWS)").is_err());
    }

    #[test]
    fn bernoulli_keyword_accepted() {
        let q = parse("SELECT COUNT(*) FROM t TABLESAMPLE BERNOULLI (25 PERCENT)").unwrap();
        assert_eq!(q.from[0].sample, Some(SampleSpec::Percent(25.0)));
    }

    #[test]
    fn aliases() {
        let q = parse("SELECT SUM(v) AS total, COUNT(*) c FROM t AS x, u y").unwrap();
        assert_eq!(q.select[0].alias.as_deref(), Some("total"));
        assert_eq!(q.select[1].alias.as_deref(), Some("c"));
        assert_eq!(q.from[0].binding_name(), "x");
        assert_eq!(q.from[1].binding_name(), "y");
    }

    #[test]
    fn expression_precedence() {
        let q = parse("SELECT SUM(a + b * c) FROM t WHERE x > 1 + 2 AND y = 3 OR z < 4").unwrap();
        let AggCall::Sum(e) = &q.select[0].func else {
            panic!()
        };
        // a + (b*c)
        assert_eq!(e.to_string(), "a + (b * c)");
        let p = q.predicate.unwrap();
        // ((x > 1+2) AND (y = 3)) OR (z < 4)
        assert_eq!(p.to_string(), "((x > (1 + 2)) AND (y = 3)) OR (z < 4)");
    }

    #[test]
    fn qualified_columns_and_unary_minus() {
        let q = parse("SELECT SUM(-t.v) FROM t").unwrap();
        let AggCall::Sum(e) = &q.select[0].func else {
            panic!()
        };
        assert_eq!(e.to_string(), "-(t.v)");
    }

    #[test]
    fn parse_errors_have_positions() {
        let e = parse("SELECT FROM t").unwrap_err();
        assert!(matches!(e, SqlError::Parse { .. }));
        assert!(parse("SELECT SUM(v) t").is_err()); // missing FROM
        assert!(parse("SELECT SUM(v) FROM t WHERE").is_err());
        assert!(parse("SELECT SUM(v) FROM t extra garbage, ,").is_err());
        assert!(parse("SELECT QUANTILE(SUM(v), 1.5) FROM t").is_err()); // bad q
        assert!(parse("SELECT QUANTILE(QUANTILE(SUM(v),0.5),0.5) FROM t").is_err());
        assert!(parse("SELECT COUNT(*) FROM t TABLESAMPLE (200 PERCENT)").is_err());
        assert!(parse("SELECT COUNT(*) FROM t TABLESAMPLE (1.5 ROWS)").is_err());
    }

    #[test]
    fn within_confidence_clause() {
        let q = parse(
            "SELECT SUM(v) FROM t TABLESAMPLE (10 PERCENT) \
             WITHIN 5 PERCENT CONFIDENCE 95",
        )
        .unwrap();
        let a = q.accuracy.unwrap();
        assert!((a.epsilon - 0.05).abs() < 1e-12);
        assert!((a.confidence - 0.95).abs() < 1e-12);
        // Fractional confidence spelling means the same thing.
        let q2 = parse("SELECT SUM(v) FROM t WITHIN 5 PERCENT CONFIDENCE 0.95").unwrap();
        assert_eq!(q2.accuracy, q.accuracy);
        // After WHERE and GROUP BY.
        let q3 = parse(
            "SELECT k, SUM(v) FROM t WHERE v > 0 GROUP BY k \
             WITHIN 2.5 PERCENT CONFIDENCE 99;",
        )
        .unwrap();
        let a3 = q3.accuracy.unwrap();
        assert!((a3.epsilon - 0.025).abs() < 1e-12);
        assert!((a3.confidence - 0.99).abs() < 1e-12);
        // Absent by default.
        assert_eq!(parse("SELECT SUM(v) FROM t").unwrap().accuracy, None);
    }

    #[test]
    fn within_confidence_clause_errors() {
        // Percentage out of range.
        assert!(parse("SELECT SUM(v) FROM t WITHIN 0 PERCENT CONFIDENCE 95").is_err());
        assert!(parse("SELECT SUM(v) FROM t WITHIN 150 PERCENT CONFIDENCE 95").is_err());
        // Missing pieces.
        assert!(parse("SELECT SUM(v) FROM t WITHIN 5 CONFIDENCE 95").is_err());
        assert!(parse("SELECT SUM(v) FROM t WITHIN 5 PERCENT").is_err());
        // CONFIDENCE 1 is ambiguous (100%? 1%?) and an invalid level either
        // way; CONFIDENCE 100 would be a degenerate 100% level.
        assert!(parse("SELECT SUM(v) FROM t WITHIN 5 PERCENT CONFIDENCE 1").is_err());
        assert!(parse("SELECT SUM(v) FROM t WITHIN 5 PERCENT CONFIDENCE 100").is_err());
    }

    #[test]
    fn semicolon_optional() {
        assert!(parse("SELECT COUNT(*) FROM t").is_ok());
        assert!(parse("SELECT COUNT(*) FROM t;").is_ok());
    }
}
