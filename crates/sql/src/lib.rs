//! # sa-sql — the SQL front-end
//!
//! A lexer, recursive-descent parser and binder for the exact dialect the
//! paper's interface needs: aggregate `SELECT` lists (`SUM`/`COUNT`/`AVG`
//! and `QUANTILE(agg, q)` bounds), `FROM` lists with SQL-standard
//! `TABLESAMPLE` clauses (`PERCENT`, `ROWS`, `SYSTEM`) that may be unioned
//! (`TABLESAMPLE (40 PERCENT) UNION TABLESAMPLE (40 PERCENT)` draws
//! independent samples of the same table and combines them per
//! Proposition 7), conjunctive `WHERE` predicates, and the paper's
//! `CREATE VIEW APPROX (lo, hi) AS …` syntax.
//!
//! [`plan_sql`] goes from SQL text to a validated [`sa_plan::LogicalPlan`]
//! ready for `sa_exec::approx_query`; [`plan_grouped_sql`] also returns the
//! `GROUP BY` keys, and [`plan_online_sql`] / [`plan_online_grouped_sql`]
//! additionally lower a `WITHIN ε PERCENT CONFIDENCE γ` accuracy clause
//! into an `sa_plan::StoppingRule` for the online drivers.
//!
//! # Examples
//!
//! ```
//! use sa_sql::{plan_online_sql, plan_sql};
//! use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
//!
//! let mut catalog = Catalog::new();
//! let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
//! let mut b = TableBuilder::new("t", schema);
//! b.push_row(&[Value::Float(1.0)]).unwrap();
//! catalog.register(b.finish().unwrap()).unwrap();
//!
//! // SQL → validated logical plan (TABLESAMPLE becomes a Sample node).
//! let plan = plan_sql("SELECT SUM(v) AS s FROM t TABLESAMPLE (25 PERCENT)", &catalog).unwrap();
//! assert!(matches!(plan, sa_plan::LogicalPlan::Aggregate { .. }));
//!
//! // The online form also lowers the accuracy clause into a stopping rule.
//! let (_, rule) = plan_online_sql(
//!     "SELECT SUM(v) AS s FROM t TABLESAMPLE (25 PERCENT) WITHIN 5 PERCENT CONFIDENCE 95",
//!     &catalog,
//! ).unwrap();
//! let target = rule.unwrap().ci_target.unwrap();
//! assert!((target.epsilon - 0.05).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod error;
pub mod parser;
pub mod token;

pub use ast::{AccuracyClause, AggCall, AggItem, Query, SampleSpec, TableRef, ViewHeader};
pub use binder::{
    bind_query, plan_grouped_sql, plan_online_grouped_sql, plan_online_sql, plan_sql,
};
pub use error::SqlError;
pub use parser::parse;

/// Crate-wide result alias.
pub type Result<T, E = SqlError> = std::result::Result<T, E>;
