//! # sa-sql — the SQL front-end
//!
//! A lexer, recursive-descent parser and binder for the exact dialect the
//! paper's interface needs: aggregate `SELECT` lists (`SUM`/`COUNT`/`AVG`
//! and `QUANTILE(agg, q)` bounds), `FROM` lists with SQL-standard
//! `TABLESAMPLE` clauses (`PERCENT`, `ROWS`, `SYSTEM`), conjunctive `WHERE`
//! predicates, and the paper's `CREATE VIEW APPROX (lo, hi) AS …` syntax.
//!
//! [`plan_sql`] goes from SQL text to a validated [`sa_plan::LogicalPlan`]
//! ready for `sa_exec::approx_query`.

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod error;
pub mod parser;
pub mod token;

pub use ast::{AccuracyClause, AggCall, AggItem, Query, SampleSpec, TableRef, ViewHeader};
pub use binder::{
    bind_query, plan_grouped_sql, plan_online_grouped_sql, plan_online_sql, plan_sql,
};
pub use error::SqlError;
pub use parser::parse;

/// Crate-wide result alias.
pub type Result<T, E = SqlError> = std::result::Result<T, E>;
