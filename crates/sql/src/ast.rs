//! SQL parse tree (pre-binding).
//!
//! The dialect covers exactly what the paper needs:
//!
//! ```sql
//! [CREATE VIEW name (col, …) AS]
//! SELECT agg [AS name] , …
//! FROM table [TABLESAMPLE (10 PERCENT | 1000 ROWS) | TABLESAMPLE SYSTEM (10 PERCENT)] [AS alias] , …
//! [WHERE predicate]
//! ```
//!
//! with `agg ::= SUM(e) | COUNT(*) | COUNT(e) | AVG(e) | QUANTILE(agg, q)`,
//! plus an optional trailing accuracy clause for online aggregation:
//!
//! ```sql
//! WITHIN 5 PERCENT CONFIDENCE 95
//! ```
//!
//! which lowers to a [`sa_plan::StoppingRule`] for the progressive driver.

use sa_expr::Expr;
use sa_plan::StoppingRule;

/// A `TABLESAMPLE` specification.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleSpec {
    /// `TABLESAMPLE (p PERCENT)` / `TABLESAMPLE BERNOULLI (p PERCENT)` —
    /// tuple-level Bernoulli with probability `p/100`.
    Percent(f64),
    /// `TABLESAMPLE (n ROWS)` — fixed-size WOR.
    Rows(u64),
    /// `TABLESAMPLE SYSTEM (p PERCENT)` — block-level Bernoulli.
    SystemPercent(f64),
}

/// One `FROM` item.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Optional sampling clause.
    pub sample: Option<SampleSpec>,
    /// Additional sampling clauses unioned with the first (Proposition 7):
    /// `TABLESAMPLE (40 PERCENT) UNION TABLESAMPLE (40 PERCENT)` draws
    /// independent samples of the same table and combines them,
    /// deduplicated by lineage. Empty unless `sample` is present.
    pub union_samples: Vec<SampleSpec>,
    /// Optional alias (`FROM lineitem AS l`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is known by downstream (alias or table name).
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// An aggregate in the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    /// Function name: one of the paper's supported aggregates.
    pub func: AggCall,
    /// `QUANTILE(…, q)` wrapper, if present.
    pub quantile: Option<f64>,
    /// Output alias.
    pub alias: Option<String>,
}

/// The aggregate call inside a select item (or inside `QUANTILE`).
#[derive(Debug, Clone, PartialEq)]
pub enum AggCall {
    /// `SUM(expr)`.
    Sum(Expr),
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(expr)`.
    Count(Expr),
    /// `AVG(expr)`.
    Avg(Expr),
}

/// `WITHIN ε PERCENT CONFIDENCE γ` — the online-aggregation accuracy
/// clause: keep sampling until the γ-level confidence interval's half-width
/// is within ε percent of the estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyClause {
    /// Target relative half-width, as a fraction (the clause's `ε PERCENT`
    /// divided by 100).
    pub epsilon: f64,
    /// Confidence level γ ∈ (0,1) (the clause accepts `95` or `0.95`).
    pub confidence: f64,
}

impl AccuracyClause {
    /// Lower the clause to the stopping rule the online driver consumes.
    pub fn stopping_rule(&self) -> StoppingRule {
        StoppingRule::ci(self.epsilon, self.confidence)
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Optional `CREATE VIEW name (cols…) AS` header (the paper's `APPROX`
    /// view syntax). Recorded but otherwise treated as a plain query.
    pub view: Option<ViewHeader>,
    /// The aggregate select items.
    pub select: Vec<AggItem>,
    /// Non-aggregate select items (group keys), with optional aliases.
    /// Only allowed together with `GROUP BY`.
    pub keys: Vec<(Expr, Option<String>)>,
    /// The from list.
    pub from: Vec<TableRef>,
    /// The where clause.
    pub predicate: Option<Expr>,
    /// `GROUP BY` expressions (empty for scalar aggregates).
    pub group_by: Vec<Expr>,
    /// Optional `WITHIN … PERCENT CONFIDENCE …` accuracy clause.
    pub accuracy: Option<AccuracyClause>,
}

/// `CREATE VIEW name (col, …) AS` header.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewHeader {
    /// View name.
    pub name: String,
    /// Declared output column names (override select-item aliases).
    pub columns: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef {
            table: "lineitem".into(),
            sample: None,
            union_samples: vec![],
            alias: Some("l".into()),
        };
        assert_eq!(t.binding_name(), "l");
        let t = TableRef {
            table: "orders".into(),
            sample: None,
            union_samples: vec![],
            alias: None,
        };
        assert_eq!(t.binding_name(), "orders");
    }
}
