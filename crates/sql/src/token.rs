//! SQL lexer.
//!
//! Produces a flat [`Token`] stream. Keywords are case-insensitive;
//! identifiers preserve case. String literals use single quotes with `''`
//! escaping.

use crate::error::SqlError;
use crate::Result;

/// A lexical token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub position: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (original case).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    As,
    And,
    Or,
    Not,
    Sum,
    Count,
    Avg,
    Quantile,
    Tablesample,
    Percent,
    Rows,
    System,
    Bernoulli,
    True,
    False,
    Null,
    Create,
    View,
    Approx,
    Group,
    By,
    Within,
    Confidence,
    Union,
}

fn keyword_of(s: &str) -> Option<Keyword> {
    Some(match s.to_ascii_uppercase().as_str() {
        "SELECT" => Keyword::Select,
        "FROM" => Keyword::From,
        "WHERE" => Keyword::Where,
        "AS" => Keyword::As,
        "AND" => Keyword::And,
        "OR" => Keyword::Or,
        "NOT" => Keyword::Not,
        "SUM" => Keyword::Sum,
        "COUNT" => Keyword::Count,
        "AVG" => Keyword::Avg,
        "QUANTILE" => Keyword::Quantile,
        "TABLESAMPLE" => Keyword::Tablesample,
        "PERCENT" => Keyword::Percent,
        "ROWS" => Keyword::Rows,
        "SYSTEM" => Keyword::System,
        "BERNOULLI" => Keyword::Bernoulli,
        "TRUE" => Keyword::True,
        "FALSE" => Keyword::False,
        "NULL" => Keyword::Null,
        "CREATE" => Keyword::Create,
        "VIEW" => Keyword::View,
        "APPROX" => Keyword::Approx,
        "GROUP" => Keyword::Group,
        "BY" => Keyword::By,
        "WITHIN" => Keyword::Within,
        "CONFIDENCE" => Keyword::Confidence,
        "UNION" => Keyword::Union,
        _ => return None,
    })
}

/// Tokenize `input` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push1(&mut out, TokenKind::LParen, start, &mut i),
            ')' => push1(&mut out, TokenKind::RParen, start, &mut i),
            ',' => push1(&mut out, TokenKind::Comma, start, &mut i),
            '.' => push1(&mut out, TokenKind::Dot, start, &mut i),
            ';' => push1(&mut out, TokenKind::Semicolon, start, &mut i),
            '+' => push1(&mut out, TokenKind::Plus, start, &mut i),
            '-' => push1(&mut out, TokenKind::Minus, start, &mut i),
            '*' => push1(&mut out, TokenKind::Star, start, &mut i),
            '/' => push1(&mut out, TokenKind::Slash, start, &mut i),
            '=' => push1(&mut out, TokenKind::Eq, start, &mut i),
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token {
                        kind: TokenKind::NotEq,
                        position: start,
                    });
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        position: start,
                        message: "stray `!`".into(),
                    });
                }
            }
            '<' => {
                let kind = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    TokenKind::LtEq
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    i += 2;
                    TokenKind::NotEq
                } else {
                    i += 1;
                    TokenKind::Lt
                };
                out.push(Token {
                    kind,
                    position: start,
                });
            }
            '>' => {
                let kind = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    TokenKind::GtEq
                } else {
                    i += 1;
                    TokenKind::Gt
                };
                out.push(Token {
                    kind,
                    position: start,
                });
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex {
                            position: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    position: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &input[i..j];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad float literal `{text}`"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad integer literal `{text}`"),
                    })?)
                };
                out.push(Token {
                    kind,
                    position: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let text = &input[i..j];
                let kind = match keyword_of(text) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(text.to_string()),
                };
                out.push(Token {
                    kind,
                    position: start,
                });
                i = j;
            }
            other => {
                return Err(SqlError::Lex {
                    position: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        position: input.len(),
    });
    Ok(out)
}

fn push1(out: &mut Vec<Token>, kind: TokenKind, start: usize, i: &mut usize) {
    out.push(Token {
        kind,
        position: start,
    });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select SELECT SeLeCt"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.25 1e3 2.5E-2"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.25),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn qualified_name_tokens() {
        assert_eq!(
            kinds("lineitem.l_tax"),
            vec![
                TokenKind::Ident("lineitem".into()),
                TokenKind::Dot,
                TokenKind::Ident("l_tax".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >= + - * /"),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escape() {
        assert_eq!(
            kinds("'BUILDING' 'it''s'"),
            vec![
                TokenKind::Str("BUILDING".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select -- comment here\n 1"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn positions_recorded() {
        let toks = tokenize("select x").unwrap();
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 7);
    }
}
