#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Criterion bench: sampled-plan execution — the engine-side cost of the
//! pipeline (scan + sample + hash join + lineage bookkeeping), and the full
//! `approx_query` path including estimation.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_bench::workloads;
use sa_exec::{approx_query, execute, ApproxOptions, ExecOptions};
use sa_plan::LogicalPlan;

fn bench_sampled_join_execution(c: &mut Criterion) {
    let catalog = workloads::tpch_small(3);
    let mut group = c.benchmark_group("sampled_join_exec");
    for pct in [5.0f64, 20.0, 50.0] {
        let plan = workloads::two_table(&catalog, pct);
        let LogicalPlan::Aggregate { input, .. } = plan.clone() else {
            unreachable!()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{pct}pct")),
            &input,
            |b, input| {
                b.iter(|| {
                    let rs = execute(
                        black_box(input),
                        &catalog,
                        &ExecOptions {
                            seed: 1,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    black_box(rs.rows.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_full_approx_pipeline(c: &mut Criterion) {
    let catalog = workloads::tpch_small(3);
    let mut group = c.benchmark_group("approx_pipeline");
    for (name, plan) in [
        ("1table", workloads::single_table(&catalog, 10.0)),
        ("2table", workloads::two_table(&catalog, 10.0)),
        ("3table", workloads::three_table(&catalog, 20.0)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, plan| {
            b.iter(|| {
                let r = approx_query(
                    black_box(plan),
                    &catalog,
                    &ApproxOptions {
                        seed: 1,
                        confidence: 0.95,
                        subsample_target: None,
                    },
                )
                .unwrap();
                black_box(r.aggs[0].estimate)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sampled_join_execution,
    bench_full_approx_pipeline
);
criterion_main!(benches);
