//! Criterion bench: SOA rewriter latency vs plan size (E6(i) — the paper's
//! "a few milliseconds even for plans involving 10 relations" claim), plus
//! the Möbius-transform ablation from DESIGN.md §4 (fast `O(2ⁿ·n)` vs naive
//! `O(4ⁿ)` coefficient computation).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_bench::workloads;
use sa_core::coeffs::{moebius_transform, moebius_transform_naive};
use sa_plan::rewrite;

fn bench_rewrite_vs_relations(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite_vs_relations");
    for n in [2usize, 4, 6, 8, 10, 12] {
        let catalog = workloads::synthetic_relations(n, 10);
        let plan = workloads::synthetic_plan(n, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let analysis = rewrite(black_box(&plan), black_box(&catalog)).unwrap();
                black_box(analysis.gus.a())
            })
        });
    }
    group.finish();
}

fn bench_moebius_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("moebius_ablation");
    for n in [8usize, 12, 16] {
        let b_table: Vec<f64> = (0..1usize << n)
            .map(|i| (i as f64 * 0.37).sin().abs())
            .collect();
        group.bench_with_input(BenchmarkId::new("fast", n), &b_table, |b, t| {
            b.iter(|| black_box(moebius_transform(t)))
        });
        if n <= 12 {
            group.bench_with_input(BenchmarkId::new("naive", n), &b_table, |b, t| {
                b.iter(|| black_box(moebius_transform_naive(t)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rewrite_vs_relations, bench_moebius_ablation);
criterion_main!(benches);
