#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Criterion bench for the online aggregation subsystem: incremental
//! accumulation vs batch, the O(1)-in-rows snapshot readout, shard merge,
//! and the chunked stream vs materializing execution.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sa_bench::workloads;
use sa_core::{GroupedMoments, GusParams, MomentAccumulator};
use sa_exec::{execute, open_stream, ExecOptions};
use sa_online::{run_online, Engine, OnlineOptions, StoppingRule};
use sa_plan::{AggSpec, LogicalPlan};
use sa_sampling::SamplingMethod;
use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};

const M: u64 = 50_000;

fn push_all_incremental(m: u64) -> MomentAccumulator {
    let mut acc = MomentAccumulator::new(2, 1);
    for i in 0..m {
        acc.push_scalar(black_box(&[i % 997, i % 337]), (i % 97) as f64)
            .unwrap();
    }
    acc
}

/// The per-push cost of maintaining `y_S` incrementally, against the batch
/// accumulator that defers the squaring to `finish()`.
fn bench_accumulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_accumulate");
    group.throughput(Throughput::Elements(M));
    group.bench_function("incremental", |b| {
        b.iter(|| black_box(push_all_incremental(M).snapshot().total[0]))
    });
    group.bench_function("batch", |b| {
        b.iter(|| {
            let mut acc = GroupedMoments::new(2, 1);
            for i in 0..M {
                acc.push_scalar(black_box(&[i % 997, i % 337]), (i % 97) as f64)
                    .unwrap();
            }
            black_box(acc.finish().total[0])
        })
    });
    group.finish();
}

/// The whole point of the incremental accumulator: a full estimate readout
/// (snapshot + Ŷ recursion + CI inputs) costs the same no matter how many
/// rows were consumed.
fn bench_snapshot_readout(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_readout");
    let gus = GusParams::bernoulli("x", 0.5)
        .unwrap()
        .join(&GusParams::bernoulli("y", 0.5).unwrap())
        .unwrap();
    for m in [1_000u64, 10_000, 100_000] {
        let acc = push_all_incremental(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(acc.report(&gus).unwrap().estimate[0]))
        });
    }
    group.finish();
}

/// Absorbing a shard-local accumulator (the building block for parallel
/// chunk processing).
fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_merge");
    let left = push_all_incremental(M);
    let right = push_all_incremental(M);
    group.bench_function("merge_50k_into_50k", |b| {
        b.iter(|| {
            let mut l = left.clone();
            l.merge(black_box(&right)).unwrap();
            black_box(l.count())
        })
    });
    group.finish();
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for i in 0..100_000i64 {
        b.push_row(&[Value::Int(i % 100), Value::Float((i % 13) as f64)])
            .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

/// Chunked pull-based execution vs materializing the whole result.
fn bench_stream_vs_materialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_stream");
    let cat = catalog();
    let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 });
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("chunked_stream", |b| {
        b.iter(|| {
            let mut s = open_stream(
                &plan,
                &cat,
                &ExecOptions {
                    seed: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rows = 0u64;
            loop {
                let chunk = s.next_chunk(4096).unwrap();
                if chunk.is_empty() {
                    break;
                }
                rows += chunk.len() as u64;
            }
            black_box(rows)
        })
    });
    group.bench_function("materialize", |b| {
        b.iter(|| {
            black_box(
                execute(
                    &plan,
                    &cat,
                    &ExecOptions {
                        seed: 1,
                        ..Default::default()
                    },
                )
                .unwrap()
                .rows
                .len(),
            )
        })
    });
    group.finish();
}

/// End-to-end progressive loop: exhaustive vs an early-stopping CI rule —
/// the wall-clock win online aggregation buys.
fn bench_progressive_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_loop");
    let cat = catalog();
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .aggregate(vec![AggSpec::sum(sa_expr::col("v"), "s")]);
    let base = OnlineOptions {
        seed: 3,
        chunk_rows: 4096,
        ..Default::default()
    };
    group.bench_function("run_to_exhaustion", |b| {
        b.iter(|| {
            let r = run_online(&plan, &cat, &base, |_| {}).unwrap();
            black_box(r.snapshot.rows)
        })
    });
    let early = OnlineOptions {
        rule: StoppingRule::ci(0.05, 0.95),
        ..base.clone()
    };
    group.bench_function("stop_at_5pct_ci", |b| {
        b.iter(|| {
            let r = run_online(&plan, &cat, &early, |_| {}).unwrap();
            black_box(r.snapshot.rows)
        })
    });
    group.finish();
}

/// The TPC-H scan+filter workload (the PR-5 acceptance query): exhaustion
/// throughput of the columnar online loop over a sampled lineitem scan
/// with a selection and a projected arithmetic expression. The plans come
/// from `workloads::columnar` — the same definitions `bench_report`
/// measures into `BENCH_PR5.json`.
fn bench_tpch_scan_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_tpch");
    let cat = workloads::tpch_small(7);
    let rows = cat.get("lineitem").unwrap().row_count();
    group.throughput(Throughput::Elements(rows));
    let scan = workloads::columnar::scan_plan();
    let scan_filter = workloads::columnar::filter_project_plan();
    let opts = OnlineOptions {
        seed: 1,
        chunk_rows: 4096,
        ..Default::default()
    };
    for (name, plan) in [("scan", &scan), ("scan_filter", &scan_filter)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = run_online(black_box(plan), &cat, &opts, |_| {}).unwrap();
                black_box(r.snapshot.rows)
            })
        });
    }
    group.finish();
}

/// The observability hot-path contract: an exhaustion run through the
/// engine with metrics on must sit within noise of the same run with
/// metrics off. Instrumentation is per-chunk and lock-free, never per-row;
/// `bench_report --check-overhead` turns this comparison into a CI gate.
fn bench_metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_metrics");
    group.throughput(Throughput::Elements(100_000));
    let plan = LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.5 })
        .aggregate(vec![AggSpec::sum(sa_expr::col("v"), "s")]);
    for (name, metrics) in [("metrics_off", false), ("metrics_on", true)] {
        let engine = Engine::builder(catalog()).metrics(metrics).build();
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = engine
                    .session()
                    .query_plan(black_box(&plan))
                    .seed(3)
                    .chunk_rows(4096)
                    .run()
                    .unwrap();
                black_box(r.snapshot.rows())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_accumulate,
    bench_snapshot_readout,
    bench_merge,
    bench_stream_vs_materialize,
    bench_progressive_loop,
    bench_tpch_scan_filter,
    bench_metrics_overhead
);
criterion_main!(benches);
