#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Criterion bench for shard-parallel online aggregation: the scaling
//! curve of `OnlineOptions::parallelism` on time-to-fixed-ε-stop and on
//! run-to-exhaustion throughput.
//!
//! The workload follows the regime that motivates parallel drivers (Kang
//! et al., *Accelerating Approximate Aggregation Queries with Expensive
//! Predicates*): per-row stream cost — sampling draws, a non-trivial
//! predicate, projection arithmetic — dominates the readout, so worker
//! threads soak up the sampling loop while the coordinator's per-tick
//! delta merge stays thin.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_expr::{col, lit};
use sa_online::{run_online, OnlineOptions, StoppingRule};
use sa_plan::{AggSpec, LogicalPlan};
use sa_sampling::SamplingMethod;
use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};

const ROWS: i64 = 400_000;

/// `t(k, v, w)`: 400k rows with enough arithmetic surface for a costly
/// predicate + projection.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
        Field::new("w", DataType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for i in 0..ROWS {
        b.push_row(&[
            Value::Int(i % 1000),
            Value::Float(1.0 + (i % 97) as f64),
            Value::Float(0.5 + (i % 31) as f64 / 31.0),
        ])
        .unwrap();
    }
    c.register(b.finish().unwrap()).unwrap();
    c
}

/// A sampled SUM with an expensive-ish predicate and arithmetic
/// projection — the per-row work the workers parallelize.
fn plan() -> LogicalPlan {
    LogicalPlan::scan("t")
        .sample(SamplingMethod::Bernoulli { p: 0.9 })
        .filter(
            col("v")
                .mul(col("w"))
                .add(col("v"))
                .gt(col("w").mul(lit(3.0))),
        )
        .project(vec![(
            col("v").mul(col("w")).add(col("v").mul(lit(0.25))),
            "x".into(),
        )])
        .aggregate(vec![AggSpec::sum(col("x"), "s")])
}

fn opts(jobs: usize, rule: StoppingRule) -> OnlineOptions {
    OnlineOptions {
        seed: 11,
        chunk_rows: 4096,
        rule,
        parallelism: jobs,
        ..Default::default()
    }
}

/// Wall clock to a fixed-ε CI stop (ε = 1%, 95%) at 1 / 2 / 4 workers —
/// the headline scaling curve.
fn bench_fixed_eps_stop(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_online_ci_stop");
    let cat = catalog();
    let plan = plan();
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let r = run_online(
                    &plan,
                    &cat,
                    &opts(jobs, StoppingRule::ci(0.01, 0.95)),
                    |_| {},
                )
                .unwrap();
                black_box(r.snapshot.rows)
            })
        });
    }
    group.finish();
}

/// Run-to-exhaustion throughput at 1 / 2 / 4 workers: every sampled row is
/// consumed, so this isolates pure pipeline parallelism (no stopping-rule
/// noise).
fn bench_exhaustion(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_online_exhaustion");
    let cat = catalog();
    let plan = plan();
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let r = run_online(&plan, &cat, &opts(jobs, StoppingRule::exhaustive()), |_| {})
                    .unwrap();
                black_box(r.snapshot.rows)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixed_eps_stop, bench_exhaustion);
criterion_main!(benches);
