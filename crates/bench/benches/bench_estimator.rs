//! Criterion bench: SBox estimation cost vs result size `m` and relation
//! count `n` (the performance side of experiment E6(ii)), plus the hasher
//! ablation DESIGN.md §4 calls out (FxHash-style vs SipHash grouping).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sa_core::{GusParams, SBox};

fn gus_over(n: usize) -> GusParams {
    let mut gus = GusParams::bernoulli("r0", 0.5).unwrap();
    for i in 1..n {
        gus = gus
            .join(&GusParams::bernoulli(format!("r{i}"), 0.5).unwrap())
            .unwrap();
    }
    gus
}

fn bench_vs_result_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbox_vs_m");
    let gus = gus_over(2);
    for m in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(m));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let mut sbox = SBox::new(gus.clone());
                for i in 0..m {
                    sbox.push_scalar(black_box(&[i % 997, i % 337]), (i % 97) as f64)
                        .unwrap();
                }
                black_box(sbox.finish().unwrap().estimate[0])
            })
        });
    }
    group.finish();
}

fn bench_vs_relation_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbox_vs_n");
    let m = 20_000u64;
    for n in [1usize, 2, 3, 4, 5] {
        let gus = gus_over(n);
        group.throughput(Throughput::Elements(m));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sbox = SBox::new(gus.clone());
                let mut lineage = vec![0u64; n];
                for i in 0..m {
                    for (j, l) in lineage.iter_mut().enumerate() {
                        *l = (i * (j as u64 + 1)) % 977;
                    }
                    sbox.push_scalar(black_box(&lineage), (i % 31) as f64)
                        .unwrap();
                }
                black_box(sbox.finish().unwrap().estimate[0])
            })
        });
    }
    group.finish();
}

/// Hasher ablation: group-by-lineage with the crate's FxHash-style hasher vs
/// the std SipHash default, on the same key stream.
fn bench_hasher_ablation(c: &mut Criterion) {
    use std::collections::HashMap;
    let mut group = c.benchmark_group("hasher_ablation");
    let m = 100_000u64;
    let keys: Vec<u128> = (0..m)
        .map(|i| sa_core::hash::fingerprint128(1, i % 4096))
        .collect();
    group.throughput(Throughput::Elements(m));
    group.bench_function("fxhash", |b| {
        b.iter(|| {
            let mut map: sa_core::hash::FxHashMap<u128, f64> = Default::default();
            for k in &keys {
                *map.entry(*k).or_insert(0.0) += 1.0;
            }
            black_box(map.len())
        })
    });
    group.bench_function("siphash", |b| {
        b.iter(|| {
            let mut map: HashMap<u128, f64> = HashMap::new();
            for k in &keys {
                *map.entry(*k).or_insert(0.0) += 1.0;
            }
            black_box(map.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_vs_result_size,
    bench_vs_relation_count,
    bench_hasher_ablation
);
criterion_main!(benches);
