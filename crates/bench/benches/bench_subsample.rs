//! Criterion bench: the Section 7 ablation — full-sample variance
//! estimation vs lineage-hash sub-sampled variance estimation, at several
//! sub-sample targets (DESIGN.md §4, "Ŷ_S estimation source").

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_bench::workloads;
use sa_core::{covariance_from_y, unbiased_y_hats, GroupedMoments, GusParams, LineageBernoulli};

/// Pre-materialize a sampled join result once; benchmark only the variance
/// estimation passes.
fn materialize() -> (GusParams, Vec<(Vec<u64>, f64)>) {
    let catalog = workloads::tpch_small(7);
    let plan = workloads::two_table(&catalog, 50.0);
    let analysis = sa_plan::rewrite(&plan, &catalog).unwrap();
    let (_, rows) = workloads::materialized_result(&catalog, &plan, 1);
    (analysis.gus, rows)
}

fn bench_variance_estimation(c: &mut Criterion) {
    let (gus, rows) = materialize();
    let n = gus.n();
    let mut group = c.benchmark_group("variance_estimation");

    group.bench_function("full_sample", |b| {
        b.iter(|| {
            let mut acc = GroupedMoments::new(n, 1);
            for (lineage, f) in &rows {
                acc.push_scalar(lineage, *f).unwrap();
            }
            let moments = acc.finish();
            let y_hat = unbiased_y_hats(&gus, &moments).unwrap();
            black_box(covariance_from_y(&gus, &y_hat, 1).get(0, 0))
        })
    });

    for target in [10_000usize, 1_000] {
        let keep = ((target as f64) / rows.len() as f64)
            .min(1.0)
            .powf(1.0 / n as f64);
        let filter = LineageBernoulli::uniform(gus.schema().clone(), keep, 99).unwrap();
        let compacted = gus.compact(&filter.gus()).unwrap();
        group.bench_with_input(BenchmarkId::new("subsampled", target), &target, |b, _| {
            b.iter(|| {
                let mut acc = GroupedMoments::new(n, 1);
                for (lineage, f) in &rows {
                    if filter.keeps(lineage) {
                        acc.push_scalar(lineage, *f).unwrap();
                    }
                }
                let moments = acc.finish();
                let y_hat = unbiased_y_hats(&compacted, &moments).unwrap();
                black_box(covariance_from_y(&gus, &y_hat, 1).get(0, 0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variance_estimation);
criterion_main!(benches);
