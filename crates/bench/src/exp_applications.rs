#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Experiment E8: the Section 8 applications, as reportable tables.

use sa_core::{GusParams, SBox};
use sa_exec::{approx_query, exact_query, ApproxOptions};
use sa_sql::plan_sql;

use crate::workloads;

/// E8(i): database-as-a-sample robustness analysis.
pub fn robustness() -> String {
    let catalog = workloads::tpch_small(41);
    let li = catalog.get("lineitem").unwrap();
    let qty: Vec<f64> = {
        let c = li.column_by_name("l_quantity").unwrap();
        (0..li.row_count() as usize)
            .map(|r| c.f64_at(r).unwrap())
            .collect()
    };
    let mut spiky = qty.clone();
    let total: f64 = qty.iter().sum();
    for v in spiky.iter_mut().take(3) {
        *v = total / 4.0;
    }
    let rse = |values: &[f64], keep: f64| {
        let mut sbox = SBox::new(GusParams::bernoulli("db", keep).unwrap());
        for (i, v) in values.iter().enumerate() {
            sbox.push_scalar(&[i as u64], *v).unwrap();
        }
        let rep = sbox.finish().unwrap();
        rep.std_error(0).unwrap() / rep.estimate[0].abs()
    };
    let mut out = String::from(
        "### E8(i) — Database as a sample: robustness to 1% tuple loss\n\n\
         | aggregate | rel. std err (99% view) | verdict |\n|---|---|---|\n",
    );
    for (name, data) in [("SUM(l_quantity)", &qty), ("spiky variant", &spiky)] {
        let r = rse(data, 0.99);
        out.push_str(&format!(
            "| {name} | {:.4}% | {} |\n",
            r * 100.0,
            if r < 0.005 { "robust" } else { "fragile" }
        ));
    }
    out
}

/// E8(ii): choosing sampling parameters — predicted vs true design variance.
pub fn design_prediction() -> String {
    let catalog = workloads::tpch_small(43);
    let plan = workloads::single_table(&catalog, 30.0);
    let pilot = approx_query(
        &plan,
        &catalog,
        &ApproxOptions {
            seed: 4,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    let mut out = String::from(
        "### E8(ii) — Choosing sampling parameters from one pilot run (B(0.3))\n\n\
         | candidate design | predicted variance | true (oracle) variance | ratio |\n\
         |---|---|---|---|\n",
    );
    for p in [0.05, 0.1, 0.2, 0.5, 0.8] {
        let alt = GusParams::bernoulli("lineitem", p).unwrap();
        let predicted = pilot.report.predict_variance(&alt, 0).unwrap();
        let alt_plan = workloads::single_table(&catalog, p * 100.0);
        let truth = sa_baselines::oracle_variance(&alt_plan, &catalog).unwrap();
        out.push_str(&format!(
            "| Bernoulli({p}) | {predicted:.3e} | {truth:.3e} | {:.2} |\n",
            predicted / truth
        ));
    }
    out.push_str("\nExpected shape: ratios ≈ 1 — one sampled run prices every design.\n");
    out
}

/// E8(iii): intermediate result-size (COUNT) estimation.
pub fn size_estimation() -> String {
    let catalog = workloads::tpch_small(47);
    let plan = plan_sql(
        "SELECT COUNT(*) \
         FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (20 PERCENT) \
         WHERE l_orderkey = o_orderkey AND l_quantity > 25",
        &catalog,
    )
    .unwrap();
    let exact = exact_query(&plan, &catalog).unwrap()[0];
    let mut out = format!(
        "### E8(iii) — Intermediate-result size estimation (join selectivity)\n\n\
         True join size: {exact:.0} tuples.\n\n\
         | seed | estimated size | 95% normal CI | true inside? |\n|---|---|---|---|\n"
    );
    for seed in 0..8u64 {
        let r = approx_query(
            &plan,
            &catalog,
            &ApproxOptions {
                seed,
                confidence: 0.95,
                subsample_target: None,
            },
        )
        .unwrap();
        let ci = r.aggs[0].ci_normal.unwrap();
        out.push_str(&format!(
            "| {seed} | {:.0} | [{:.0}, {:.0}] | {} |\n",
            r.aggs[0].estimate,
            ci.lo,
            ci.hi,
            if ci.contains(exact) { "yes" } else { "no" }
        ));
    }
    out
}

/// All Section 8 applications.
pub fn applications() -> String {
    let mut out = String::from("## E8 — Applications (Section 8)\n\n");
    out.push_str(&robustness());
    out.push('\n');
    out.push_str(&design_prediction());
    out.push('\n');
    out.push_str(&size_estimation());
    out
}
