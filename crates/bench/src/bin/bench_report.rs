#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Machine-readable throughput report for the online execution engine.
//!
//! Runs the four canonical TPC-H online workloads — scan, filter+project,
//! grouped, join — to exhaustion at 1 and 4 worker threads, and reports
//! result-tuple throughput (rows/s). A second block measures the out-of-core
//! backend and the scan pushdown: the TPC-H scan over a persisted,
//! memory-mapped catalog with pushdown off/on (`scan_mapped`,
//! `scan_mapped_pushdown`), and a 16-column synthetic filter workload where
//! the fused predicate prunes columns, rows, and whole pages
//! (`wide_filter*`). Unlike the criterion benches this tool emits a stable
//! JSON summary, so perf trajectories can be committed next to the code that
//! changed them (see `BENCH_PR5.json`, `BENCH_PR9.json`).
//!
//! ```sh
//! cargo run --release -p sa-bench --bin bench_report -- --json out.json
//! cargo run --release -p sa-bench --bin bench_report -- --scale 0.02 --reps 5
//! cargo run --release -p sa-bench --bin bench_report -- --check-overhead 5
//! ```
//!
//! `--check-overhead PCT` compares the `metrics_on` / `metrics_off`
//! workload pair and exits non-zero when instrumentation costs more than
//! PCT percent of exhaustion throughput — the observability layer's
//! hot-path contract, enforceable in CI.

use std::time::Instant;

use sa_bench::workloads::{self, columnar};
use sa_expr::col;
use sa_online::{
    run_online, run_online_grouped, Engine, GroupedOnlineOptions, OnlineOptions, StoppingRule,
};
use sa_plan::LogicalPlan;
use sa_storage::{open_catalog_dir, persist_catalog, Catalog};

/// One measured cell of the report.
struct Cell {
    workload: &'static str,
    jobs: usize,
    rows: u64,
    secs: f64,
}

impl Cell {
    fn rows_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.rows as f64 / self.secs
        } else {
            f64::INFINITY
        }
    }
}

fn online_opts(jobs: usize) -> OnlineOptions {
    OnlineOptions {
        seed: 1,
        chunk_rows: 4096,
        rule: StoppingRule::exhaustive(),
        parallelism: jobs,
        ..Default::default()
    }
}

/// Best-of-`reps` exhaustion run of a scalar workload.
fn measure_scalar(
    workload: &'static str,
    plan: &LogicalPlan,
    catalog: &Catalog,
    jobs: usize,
    reps: usize,
) -> Cell {
    let opts = online_opts(jobs);
    let mut best = f64::INFINITY;
    let mut rows = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let r = run_online(plan, catalog, &opts, |_| {}).expect("workload runs");
        let secs = t.elapsed().as_secs_f64();
        rows = r.snapshot.rows;
        best = best.min(secs);
    }
    Cell {
        workload,
        jobs,
        rows,
        secs: best,
    }
}

/// Best-of-`reps` exhaustion run of the grouped workload.
fn measure_grouped(catalog: &Catalog, jobs: usize, reps: usize) -> Cell {
    let opts = GroupedOnlineOptions {
        online: online_opts(jobs),
        ..Default::default()
    };
    let plan = columnar::grouped_plan();
    let mut best = f64::INFINITY;
    let mut rows = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let r = run_online_grouped(&plan, &[col("l_returnflag")], catalog, &opts, |_| {})
            .expect("grouped workload runs");
        let secs = t.elapsed().as_secs_f64();
        rows = r.snapshot.rows;
        best = best.min(secs);
    }
    Cell {
        workload: "grouped",
        jobs,
        rows,
        secs: best,
    }
}

/// Best-of-`reps` run of N concurrent sessions over one table attached to
/// the engine's shared scan cursor. `rows` reports the storage rows
/// *scanned per query* — the serving win to watch: with sharing, N queries
/// cost ~1 table scan, so the per-query cost falls roughly as 1/N.
fn measure_shared(engine: &Engine, clients: usize, reps: usize) -> Cell {
    let plan = columnar::scan_plan();
    let mut best = f64::INFINITY;
    let mut per_query = 0;
    for _ in 0..reps {
        let before = engine
            .scan_stats("lineitem")
            .map(|s| s.rows_gathered)
            .unwrap_or(0);
        let t = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    let engine = engine.clone();
                    let plan = plan.clone();
                    scope.spawn(move || {
                        engine
                            .session()
                            .query_plan(&plan)
                            .seed(i as u64 + 1)
                            .chunk_rows(4096)
                            .run()
                            .expect("shared workload runs")
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
        });
        let secs = t.elapsed().as_secs_f64();
        let after = engine.scan_stats("lineitem").expect("hub exists");
        per_query = (after.rows_gathered - before) / clients as u64;
        best = best.min(secs);
    }
    Cell {
        workload: "shared_scan",
        jobs: clients,
        rows: per_query,
        secs: best,
    }
}

/// Best-of-`reps` exhaustion runs of the scan workload through two engines
/// that differ only in the metrics toggle. Reps interleave off/on so slow
/// drift (thermal, page cache) hits both modes alike.
fn measure_metrics_pair(catalog: &Catalog, reps: usize) -> [Cell; 2] {
    let plan = columnar::scan_plan();
    let engines = [
        Engine::builder(catalog.clone()).build(),
        Engine::builder(catalog.clone()).metrics(true).build(),
    ];
    let mut best = [f64::INFINITY; 2];
    let mut rows = [0u64; 2];
    for _ in 0..reps {
        for (i, engine) in engines.iter().enumerate() {
            let t = Instant::now();
            let r = engine
                .session()
                .query_plan(&plan)
                .seed(1)
                .chunk_rows(4096)
                .run()
                .expect("metrics workload runs");
            let secs = t.elapsed().as_secs_f64();
            rows[i] = r.snapshot.rows();
            best[i] = best[i].min(secs);
        }
    }
    let cell = |workload, i: usize| Cell {
        workload,
        jobs: 1,
        rows: rows[i],
        secs: best[i],
    };
    [cell("metrics_off", 0), cell("metrics_on", 1)]
}

/// Best-of-`reps` exhaustion run through an [`Engine`] session with the
/// scan pushdown toggled — the only surface that exposes the toggle.
/// Shared scans are off so the toggle governs the real per-query scan
/// (attached cursors never fuse predicates).
fn measure_pushdown(
    workload: &'static str,
    plan: &LogicalPlan,
    catalog: &Catalog,
    pushdown: bool,
    reps: usize,
) -> Cell {
    let engine = Engine::builder(catalog.clone()).shared_scans(false).build();
    let mut best = f64::INFINITY;
    let mut rows = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let r = engine
            .session()
            .query_plan(plan)
            .seed(1)
            .chunk_rows(4096)
            .pushdown(pushdown)
            .run()
            .expect("pushdown workload runs");
        let secs = t.elapsed().as_secs_f64();
        rows = r.snapshot.rows();
        best = best.min(secs);
    }
    Cell {
        workload,
        jobs: 1,
        rows,
        secs: best,
    }
}

/// Persist `catalog` as `.sac` files under a per-process temp dir and
/// reopen it memory-mapped.
fn mapped_copy(catalog: &Catalog, tag: &str) -> Catalog {
    let dir = std::env::temp_dir().join(format!("sa-bench-{tag}-{}", std::process::id()));
    persist_catalog(catalog, &dir).expect("persist catalog");
    open_catalog_dir(&dir).expect("reopen mapped catalog")
}

/// The hot-path gate: metrics on may cost at most `pct` percent over off.
fn check_overhead(cells: &[Cell], pct: f64) {
    let secs = |name: &str| {
        cells
            .iter()
            .find(|c| c.workload == name)
            .expect("metrics workload measured")
            .secs
    };
    let (off, on) = (secs("metrics_off"), secs("metrics_on"));
    let overhead = (on - off) / off * 100.0;
    eprintln!(
        "metrics overhead: off {:.1} ms, on {:.1} ms → {overhead:+.2}% (budget {pct}%)",
        off * 1e3,
        on * 1e3
    );
    if overhead > pct {
        eprintln!("metrics overhead exceeds the {pct}% budget");
        std::process::exit(1);
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(path: &str, scale: f64, reps: usize, cells: &[Cell]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"meta\": {{ \"tpch_scale\": {scale}, \"reps\": {reps}, \"seed\": 1, \
         \"chunk_rows\": 4096, \"metric\": \"exhaustion result-tuple throughput, best of reps\" }},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"jobs\": {}, \"rows\": {}, \"secs\": {:.6}, \
             \"rows_per_sec\": {:.1} }}{}\n",
            json_escape(c.workload),
            c.jobs,
            c.rows,
            c.secs,
            c.rows_per_sec(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write json report");
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut scale = 0.02f64;
    let mut reps = 3usize;
    let mut overhead_budget: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = Some(it.next().expect("--json needs a path").clone()),
            "--scale" => scale = it.next().expect("--scale needs a value").parse().unwrap(),
            "--reps" => reps = it.next().expect("--reps needs a value").parse().unwrap(),
            "--check-overhead" => {
                overhead_budget = Some(
                    it.next()
                        .expect("--check-overhead needs a percentage")
                        .parse()
                        .unwrap(),
                );
            }
            other => {
                eprintln!(
                    "usage: bench_report [--json PATH] [--scale S] [--reps N] \
                     [--check-overhead PCT] (got {other})"
                );
                std::process::exit(2);
            }
        }
    }
    eprintln!("generating TPC-H at scale {scale}…");
    let catalog = workloads::tpch_at(scale, 7);
    let mut cells = Vec::new();
    for jobs in [1usize, 4] {
        cells.push(measure_scalar(
            "scan",
            &columnar::scan_plan(),
            &catalog,
            jobs,
            reps,
        ));
        cells.push(measure_scalar(
            "filter_project",
            &columnar::filter_project_plan(),
            &catalog,
            jobs,
            reps,
        ));
        cells.push(measure_grouped(&catalog, jobs, reps));
        cells.push(measure_scalar(
            "join",
            &columnar::join_plan(),
            &catalog,
            jobs,
            reps,
        ));
        for c in cells.iter().rev().take(4) {
            eprintln!(
                "{:>16} jobs={} rows={:>8} {:>8.1} ms {:>12.0} rows/s",
                c.workload,
                c.jobs,
                c.rows,
                c.secs * 1e3,
                c.rows_per_sec()
            );
        }
    }
    // Shared-scan serving workload: N concurrent queries over lineitem via
    // one circular scan; `rows` is the storage scan cost *per query*.
    let engine = Engine::builder(catalog.clone()).shared_scans(true).build();
    for clients in [1usize, 4, 16] {
        let c = measure_shared(&engine, clients, reps);
        eprintln!(
            "{:>16} jobs={} rows/query={:>8} {:>8.1} ms",
            c.workload,
            c.jobs,
            c.rows,
            c.secs * 1e3,
        );
        cells.push(c);
    }
    // Metrics overhead pair: the same exhaustion scan with and without the
    // observability layer recording.
    for c in measure_metrics_pair(&catalog, reps) {
        eprintln!(
            "{:>16} jobs={} rows={:>8} {:>8.1} ms {:>12.0} rows/s",
            c.workload,
            c.jobs,
            c.rows,
            c.secs * 1e3,
            c.rows_per_sec()
        );
        cells.push(c);
    }
    // Out-of-core backend + pushdown cells: the TPC-H scan over the
    // persisted, memory-mapped catalog (pushdown off gathers all sixteen
    // lineitem segments; on gathers one), then the wide-table filter
    // workload where the fused predicate also prunes rows and pages —
    // in-RAM and mapped. The `scan` cells above are the in-RAM baseline.
    let mapped_tpch = mapped_copy(&catalog, "tpch");
    let wide = workloads::wide_catalog(400_000);
    let mapped_wide = mapped_copy(&wide, "wide");
    let scan = columnar::scan_plan();
    let wf = workloads::wide_filter_plan();
    let pushdown_cells: [(&'static str, &LogicalPlan, &Catalog, bool); 6] = [
        ("scan_mapped", &scan, &mapped_tpch, false),
        ("scan_mapped_pushdown", &scan, &mapped_tpch, true),
        ("wide_filter", &wf, &wide, false),
        ("wide_filter_pushdown", &wf, &wide, true),
        ("wide_filter_mapped", &wf, &mapped_wide, false),
        ("wide_filter_mapped_pushdown", &wf, &mapped_wide, true),
    ];
    for (workload, plan, cat, on) in pushdown_cells {
        let c = measure_pushdown(workload, plan, cat, on, reps);
        eprintln!(
            "{:>28} jobs={} rows={:>8} {:>8.1} ms {:>12.0} rows/s",
            c.workload,
            c.jobs,
            c.rows,
            c.secs * 1e3,
            c.rows_per_sec()
        );
        cells.push(c);
    }
    let secs_of = |name: &str| cells.iter().find(|c| c.workload == name).unwrap().secs;
    eprintln!(
        "wide-table pushdown speedup: {:.2}x in-RAM, {:.2}x mapped",
        secs_of("wide_filter") / secs_of("wide_filter_pushdown"),
        secs_of("wide_filter_mapped") / secs_of("wide_filter_mapped_pushdown"),
    );
    println!("workload,jobs,rows,secs,rows_per_sec");
    for c in &cells {
        println!(
            "{},{},{},{:.6},{:.1}",
            c.workload,
            c.jobs,
            c.rows,
            c.secs,
            c.rows_per_sec()
        );
    }
    if let Some(path) = json_path {
        write_json(&path, scale, reps, &cells);
    }
    if let Some(pct) = overhead_budget {
        check_overhead(&cells, pct);
    }
}
