//! `experiments` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p sa-bench --bin experiments -- all
//! cargo run --release -p sa-bench --bin experiments -- figure1 query1 figure4 figure5
//! cargo run --release -p sa-bench --bin experiments -- coverage --trials 100
//! ```
//!
//! Output is markdown; `all` prints the full report EXPERIMENTS.md is built
//! from.

use sa_bench::{exp_accuracy, exp_applications, exp_figures, exp_runtime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trials: u64 = 200;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trials" => {
                trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--trials needs a number"));
            }
            "-h" | "--help" => usage(""),
            name => selected.push(name.to_string()),
        }
    }
    if selected.is_empty() {
        usage("no experiment selected");
    }
    if selected.iter().any(|s| s == "all") {
        selected = vec![
            "figure1".into(),
            "query1".into(),
            "figure4".into(),
            "figure5".into(),
            "coverage".into(),
            "runtime".into(),
            "comparison".into(),
            "applications".into(),
        ];
    }
    println!("# Experiment report — A Sampling Algebra for Aggregate Estimation\n");
    for name in &selected {
        let report = match name.as_str() {
            "figure1" => exp_figures::figure1(),
            "query1" => exp_figures::query1(),
            "figure4" => exp_figures::figure4(),
            "figure5" => exp_figures::figure5(),
            "coverage" => exp_accuracy::coverage(trials),
            "comparison" => exp_accuracy::comparison(trials),
            "runtime" => exp_runtime::runtime(),
            "applications" => exp_applications::applications(),
            other => usage(&format!("unknown experiment `{other}`")),
        };
        println!("{report}");
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage: experiments [--trials N] <experiment>...\n\
         experiments: figure1 query1 figure4 figure5 coverage runtime comparison applications all"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
