#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Experiments E1–E4: regenerate the paper's printed artifacts
//! (Figure 1 table, Figure 2/Examples 1–3, Figure 4/Example 4,
//! Figure 5/Examples 5–6).

use sa_core::{GusParams, LineageBernoulli, RelSet};
use sa_plan::{render_gus_table, rewrite};
use sa_sampling::{measure_single_relation, SamplingMethod};
use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};

use crate::workloads;

fn small_table(rows: u64) -> sa_storage::Table {
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
    let mut b = TableBuilder::new("r", schema);
    for i in 0..rows {
        b.push_row(&[Value::Int(i as i64)]).unwrap();
    }
    b.finish().unwrap()
}

/// E1 / Figure 1: GUS parameters of the known sampling methods, closed form
/// against Monte-Carlo measurement.
pub fn figure1() -> String {
    let mut out = String::from(
        "## E1 — Figure 1: GUS parameters for known sampling methods\n\n\
         | method | parameter | closed form | Monte-Carlo (50k trials) |\n\
         |---|---|---|---|\n",
    );
    let table = small_table(100);
    let trials = 50_000;

    let bern = SamplingMethod::Bernoulli { p: 0.1 };
    let g = bern.gus("r", &table).unwrap();
    let emp = measure_single_relation(&bern, &table, trials, 1).unwrap();
    out.push_str(&format!(
        "| Bernoulli(0.1) | a | {:.4} | {:.4} |\n| Bernoulli(0.1) | b_∅ | {:.4} | {:.4} |\n\
         | Bernoulli(0.1) | b_R | {:.4} | = a (definitional) |\n",
        g.a(),
        emp.a,
        g.b(RelSet::EMPTY),
        emp.b_empty,
        g.b(RelSet::singleton(0))
    ));

    let wor = SamplingMethod::Wor { size: 10 };
    let g = wor.gus("r", &table).unwrap();
    let emp = measure_single_relation(&wor, &table, trials, 2).unwrap();
    out.push_str(&format!(
        "| WOR(10, 100) | a | {:.4} | {:.4} |\n| WOR(10, 100) | b_∅ | {:.6} | {:.6} |\n\
         | WOR(10, 100) | b_R | {:.4} | = a (definitional) |\n",
        g.a(),
        emp.a,
        g.b(RelSet::EMPTY),
        emp.b_empty,
        g.b(RelSet::singleton(0))
    ));

    // The paper's exact Example 2 instance (WOR 1000 of 150000), closed form.
    let g = GusParams::wor("o", 1000, 150_000).unwrap();
    out.push_str(&format!(
        "| WOR(1000, 150000) | a | {:.4e} | paper: 6.667e-3 |\n\
         | WOR(1000, 150000) | b_∅ | {:.4e} | paper: 4.44e-5 |\n",
        g.a(),
        g.b(RelSet::EMPTY)
    ));
    out
}

/// E2 / Figure 2 + Examples 1–3: Query 1's derivation and end-to-end run.
pub fn query1() -> String {
    let mut out = String::from("## E2 — Figure 2 / Examples 1–3: Query 1\n\n");
    // Coefficients at the paper's cardinality (orders = 150 000).
    let catalog = workloads::tpch_paper(17);
    let plan = workloads::query1(&catalog, 10.0, 1000);
    let analysis = rewrite(&plan, &catalog).unwrap();
    out.push_str("Derived top GUS (paper gold: a=6.667e-4, b∅=4.44e-7, b_o=6.667e-5, b_l=4.44e-6, b_lo=6.667e-4):\n\n```\n");
    out.push_str(&analysis.gus_table());
    out.push_str("```\n\nRewrite trace:\n\n```\n");
    out.push_str(&analysis.trace.render());
    out.push_str("```\n");

    // End-to-end estimate vs exact.
    let exact = sa_exec::exact_query(&plan, &catalog).unwrap()[0];
    let r = sa_exec::approx_query(
        &plan,
        &catalog,
        &sa_exec::ApproxOptions {
            seed: 3,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    let a = &r.aggs[0];
    out.push_str(&format!(
        "\n| quantity | value |\n|---|---|\n| exact answer | {exact:.2} |\n\
         | estimate | {:.2} |\n| 95% normal CI | {} |\n| 95% Chebyshev CI | {} |\n\
         | result tuples | {} |\n",
        a.estimate,
        a.ci_normal.as_ref().unwrap(),
        a.ci_chebyshev.as_ref().unwrap(),
        r.result_rows
    ));
    out
}

/// E3 / Figure 4 + Example 4: the four-relation plan transformation.
pub fn figure4() -> String {
    let mut out = String::from("## E3 — Figure 4 / Example 4: four-relation plan\n\n");
    let mut catalog = Catalog::new();
    for (name, key, rows) in [
        ("lineitem", "l_orderkey", 600_000u64),
        ("orders", "o_orderkey", 150_000),
        ("customer", "c_custkey", 15_000),
        ("part", "p_partkey", 20_000),
    ] {
        let schema = Schema::new(vec![Field::new(key, DataType::Int)]).unwrap();
        let mut b = TableBuilder::new(name, schema);
        b.reserve(rows as usize);
        for i in 0..rows {
            b.push_row(&[Value::Int(i as i64)]).unwrap();
        }
        catalog.register(b.finish().unwrap()).unwrap();
    }
    use sa_expr::{col, lit};
    use sa_plan::{AggSpec, LogicalPlan};
    let plan = LogicalPlan::scan("lineitem")
        .sample(SamplingMethod::Bernoulli { p: 0.1 })
        .join_on(
            LogicalPlan::scan("orders").sample(SamplingMethod::Wor { size: 1000 }),
            col("l_orderkey").eq(col("o_orderkey")),
        )
        .join_on(LogicalPlan::scan("customer"), lit(true))
        .join_on(
            LogicalPlan::scan("part").sample(SamplingMethod::Bernoulli { p: 0.5 }),
            lit(true),
        )
        .aggregate(vec![AggSpec::count_star("c")]);
    let analysis = rewrite(&plan, &catalog).unwrap();
    out.push_str("Input plan:\n\n```\n");
    out.push_str(&plan.display_tree());
    out.push_str("```\n\nFinal G(a₁₂₃, b̄₁₂₃) (paper gold: a=3.334e-4, b∅=1.11e-7, …, b_locp=3.334e-4):\n\n```\n");
    out.push_str(&analysis.gus_table());
    out.push_str("```\n");
    out
}

/// E4 / Figure 5 + Examples 5–6: bi-dimensional Bernoulli and the
/// sub-sampled analysis pipeline.
pub fn figure5() -> String {
    let mut out = String::from("## E4 — Figure 5 / Examples 5–6: sub-sampling analysis\n\n");
    // Example 5: B(0.2, 0.3) composition.
    let g3 = GusParams::bernoulli("l", 0.2)
        .unwrap()
        .compose(&GusParams::bernoulli("o", 0.3).unwrap())
        .unwrap();
    out.push_str("Example 5 — bi-dimensional B(0.2, 0.3) (paper gold: a=0.06, b∅=0.0036, b_o=0.012, b_l=0.018, b_lo=0.06):\n\n```\n");
    out.push_str(&render_gus_table(&g3));
    out.push_str("```\n");

    // Example 6 / Figure 5.f: compaction with Query 1's G(a₁₂).
    let g12 = GusParams::bernoulli("l", 0.1)
        .unwrap()
        .join(&GusParams::wor("o", 1000, 150_000).unwrap())
        .unwrap();
    let sub = LineageBernoulli::new(g12.schema().clone(), &[0.2, 0.3], 7).unwrap();
    let g123 = g12.compact(&sub.gus()).unwrap();
    out.push_str("\nExample 6 — G(a₁₂₃) after sub-sampling (paper gold: a=4e-5, b∅=1.598e-9, b_o=8e-7, b_l=7.992e-8, b_lo=4e-5):\n\n```\n");
    out.push_str(&render_gus_table(&g123));
    out.push_str("```\n");
    out
}
