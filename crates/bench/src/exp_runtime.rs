#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Experiment E6: runtime analysis.
//!
//! (i) SOA rewriter latency vs number of relations (the paper claims "a few
//! milliseconds even for plans involving 10 relations");
//! (ii) SBox estimation cost vs result size `m` and vs relation count `n`
//! (the `2ⁿ` group-by terms);
//! (iii) the Section 7 sub-sampled variance estimator: wall-time and
//! accuracy against the full-sample estimator.

use std::time::Instant;

use sa_core::{estimate_from_sample_moments, GroupedMoments, SBox};
use sa_exec::{approx_query, ApproxOptions};
use sa_plan::rewrite;

use crate::workloads;

/// (i) Rewriter latency vs relation count.
pub fn rewriter_latency() -> String {
    let mut out = String::from(
        "### E6(i) — SOA rewriter latency vs number of relations\n\n\
         | relations | rewrite time (µs, median of 50) |\n|---|---|\n",
    );
    for n in [2usize, 4, 6, 8, 10, 12] {
        let catalog = workloads::synthetic_relations(n, 10);
        let plan = workloads::synthetic_plan(n, 0.5);
        let mut times: Vec<u128> = (0..50)
            .map(|_| {
                let t0 = Instant::now();
                let a = rewrite(&plan, &catalog).unwrap();
                std::hint::black_box(a.gus.a());
                t0.elapsed().as_micros()
            })
            .collect();
        times.sort_unstable();
        out.push_str(&format!("| {n} | {} |\n", times[times.len() / 2]));
    }
    out.push_str(
        "\nExpected shape: a few milliseconds at 10 relations, matching the paper's \
         claim; growth beyond that is dominated by the dense 2ⁿ b̄ table.\n",
    );
    out
}

/// (ii) SBox cost vs result size and vs relation count.
pub fn sbox_cost() -> String {
    let mut out = String::from(
        "### E6(ii) — SBox estimation cost\n\n\
         Cost vs result-set size m (2 relations):\n\n\
         | m (tuples) | estimate+variance time (ms) | ns/tuple |\n|---|---|---|\n",
    );
    // Synthetic (lineage, f) streams, 2 relations.
    let gus2 = sa_core::GusParams::bernoulli("x", 0.1)
        .unwrap()
        .join(&sa_core::GusParams::bernoulli("y", 0.1).unwrap())
        .unwrap();
    for m in [1_000u64, 10_000, 100_000, 1_000_000] {
        let t0 = Instant::now();
        let mut sbox = SBox::new(gus2.clone());
        for i in 0..m {
            sbox.push_scalar(&[i % 1000, i % 337], (i % 97) as f64)
                .unwrap();
        }
        let rep = sbox.finish().unwrap();
        std::hint::black_box(rep.estimate[0]);
        let el = t0.elapsed();
        out.push_str(&format!(
            "| {m} | {:.2} | {:.0} |\n",
            el.as_secs_f64() * 1e3,
            el.as_nanos() as f64 / m as f64
        ));
    }

    out.push_str(
        "\nCost vs relation count n (m = 50 000 tuples; the 2ⁿ grouping terms):\n\n\
         | n (relations) | time (ms, best of 3) | vs n=1 |\n|---|---|---|\n",
    );
    let m = 50_000u64;
    let mut base = 0.0;
    for n in [1usize, 2, 3, 4, 5, 6] {
        let mut gus = sa_core::GusParams::bernoulli("r0", 0.5).unwrap();
        for i in 1..n {
            gus = gus
                .join(&sa_core::GusParams::bernoulli(format!("r{i}"), 0.5).unwrap())
                .unwrap();
        }
        let run_once = || {
            let t0 = Instant::now();
            let mut acc = GroupedMoments::new(n, 1);
            let mut lineage = vec![0u64; n];
            for i in 0..m {
                for (j, l) in lineage.iter_mut().enumerate() {
                    *l = (i * (j as u64 + 1)) % 977;
                }
                acc.push_scalar(&lineage, (i % 31) as f64).unwrap();
            }
            let rep = estimate_from_sample_moments(&gus, &acc.finish()).unwrap();
            std::hint::black_box(rep.estimate[0]);
            t0.elapsed().as_secs_f64() * 1e3
        };
        run_once(); // warm up (allocator, page faults)
        let ms = (0..3).map(|_| run_once()).fold(f64::INFINITY, f64::min);
        if n == 1 {
            base = ms;
        }
        out.push_str(&format!("| {n} | {ms:.2} | {:.1}× |\n", ms / base));
    }
    out.push_str("\nExpected shape: linear in m; ≈2× per extra relation (the 2ⁿ terms).\n");
    out
}

/// (iii) Section 7 sub-sampling: estimator wall time and variance agreement.
pub fn subsample() -> String {
    // Larger scale so the full result comfortably exceeds the 10k target.
    let catalog = sa_tpch::generate(&sa_tpch::TpchConfig::scale(0.02).with_seed(31));
    let plan = workloads::two_table(&catalog, 60.0);
    let mut out = String::from(
        "### E6(iii) — Section 7 sub-sampled variance estimation (2-table join, 60% Bernoulli)\n\n\
         | variance source | tuples used | std-error estimate | total time (ms) |\n|---|---|---|---|\n",
    );
    let t0 = Instant::now();
    let full = approx_query(
        &plan,
        &catalog,
        &ApproxOptions {
            seed: 2,
            confidence: 0.95,
            subsample_target: None,
        },
    )
    .unwrap();
    let t_full = t0.elapsed();
    out.push_str(&format!(
        "| full sample | {} | {:.1} | {:.1} |\n",
        full.variance_rows,
        full.aggs[0].variance.unwrap().sqrt(),
        t_full.as_secs_f64() * 1e3
    ));
    for target in [10_000u64, 2_000, 500] {
        let t0 = Instant::now();
        let sub = approx_query(
            &plan,
            &catalog,
            &ApproxOptions {
                seed: 2,
                confidence: 0.95,
                subsample_target: Some(target),
            },
        )
        .unwrap();
        let t_sub = t0.elapsed();
        out.push_str(&format!(
            "| sub-sample ≈{target} | {} | {:.1} | {:.1} |\n",
            sub.variance_rows,
            sub.aggs[0].variance.unwrap().sqrt(),
            t_sub.as_secs_f64() * 1e3
        ));
    }
    out.push_str(
        "\nExpected shape (paper): ~10k tuples suffice — the std-error estimate stays \
         within a small factor while the variance pass shrinks by orders of magnitude \
         (point estimates are identical by construction).\n",
    );
    out
}

/// All three runtime sub-experiments.
pub fn runtime() -> String {
    let mut out = String::from("## E6 — Runtime analysis\n\n");
    out.push_str(&rewriter_latency());
    out.push('\n');
    out.push_str(&sbox_cost());
    out.push('\n');
    out.push_str(&subsample());
    out
}
