//! Shared workload builders for experiments and criterion benches.

use sa_exec::{execute, ExecOptions};
use sa_plan::LogicalPlan;
use sa_sql::plan_sql;
use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use sa_tpch::{generate, TpchConfig};

/// TPC-H at the default experiment scale (orders ≈ 7.5k, lineitem ≈ 30k).
pub fn tpch_small(seed: u64) -> Catalog {
    generate(&TpchConfig::scale(0.005).with_seed(seed))
}

/// TPC-H at an arbitrary scale factor (throughput reports pick their own).
pub fn tpch_at(scale: f64, seed: u64) -> Catalog {
    generate(&TpchConfig::scale(scale).with_seed(seed))
}

/// TPC-H with the paper's Example 1 orders cardinality (150 000), for
/// coefficient reproduction.
pub fn tpch_paper(seed: u64) -> Catalog {
    generate(&TpchConfig::scale(0.1).with_seed(seed))
}

/// The introduction's Query 1 at a given Bernoulli rate and WOR size.
pub fn query1(catalog: &Catalog, percent: f64, rows: u64) -> LogicalPlan {
    plan_sql(
        &format!(
            "SELECT SUM(l_discount*(1.0-l_tax)) \
             FROM lineitem TABLESAMPLE ({percent} PERCENT), orders TABLESAMPLE ({rows} ROWS) \
             WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0"
        ),
        catalog,
    )
    .expect("query1 binds")
}

/// Single-table SUM at a Bernoulli rate.
pub fn single_table(catalog: &Catalog, percent: f64) -> LogicalPlan {
    plan_sql(
        &format!("SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE ({percent} PERCENT)"),
        catalog,
    )
    .expect("single-table binds")
}

/// Single-table SUM with WOR.
pub fn single_table_wor(catalog: &Catalog, rows: u64) -> LogicalPlan {
    plan_sql(
        &format!("SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE ({rows} ROWS)"),
        catalog,
    )
    .expect("single-table WOR binds")
}

/// Two-table sampled join (both sides Bernoulli).
pub fn two_table(catalog: &Catalog, percent: f64) -> LogicalPlan {
    plan_sql(
        &format!(
            "SELECT SUM(l_quantity) \
             FROM lineitem TABLESAMPLE ({percent} PERCENT), \
                  orders TABLESAMPLE ({percent} PERCENT) \
             WHERE l_orderkey = o_orderkey"
        ),
        catalog,
    )
    .expect("two-table binds")
}

/// Three-table sampled join.
pub fn three_table(catalog: &Catalog, percent: f64) -> LogicalPlan {
    plan_sql(
        &format!(
            "SELECT SUM(l_quantity) \
             FROM lineitem TABLESAMPLE ({percent} PERCENT), \
                  orders TABLESAMPLE ({percent} PERCENT), \
                  customer TABLESAMPLE ({percent} PERCENT) \
             WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey"
        ),
        catalog,
    )
    .expect("three-table binds")
}

/// The PR-5 columnar throughput workloads, shared by `bench_online`'s
/// `online_tpch` group and the `bench_report` binary (which writes
/// `BENCH_PR5.json`) — one definition, so the criterion bench and the
/// committed numbers cannot drift apart.
pub mod columnar {
    use sa_expr::{col, lit};
    use sa_plan::{AggSpec, LogicalPlan};
    use sa_sampling::SamplingMethod;

    /// Scan: a sampled single-table SUM, no filter — pure stream +
    /// accumulate cost.
    pub fn scan_plan() -> LogicalPlan {
        LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.9 })
            .aggregate(vec![AggSpec::sum(col("l_quantity"), "s")])
    }

    /// Scan+filter (the acceptance query): selection plus a projected
    /// arithmetic expression.
    pub fn filter_project_plan() -> LogicalPlan {
        LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.9 })
            .filter(
                col("l_extendedprice")
                    .gt(lit(1000.0))
                    .and(col("l_discount").lt(lit(0.08))),
            )
            .project(vec![(
                col("l_extendedprice").mul(lit(1.0).sub(col("l_discount"))),
                "disc_price".into(),
            )])
            .aggregate(vec![AggSpec::sum(col("disc_price"), "s")])
    }

    /// Grouped: per-group SUM over the return flag (drive with
    /// `run_online_grouped` and key `l_returnflag`).
    pub fn grouped_plan() -> LogicalPlan {
        scan_plan()
    }

    /// Join: sampled lineitem ⋈ sampled orders.
    pub fn join_plan() -> LogicalPlan {
        LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .join_on(
                LogicalPlan::scan("orders").sample(SamplingMethod::Bernoulli { p: 0.5 }),
                col("l_orderkey").eq(col("o_orderkey")),
            )
            .aggregate(vec![AggSpec::sum(col("l_quantity"), "s")])
    }
}

/// A wide synthetic table for the pushdown benchmarks: `wide` has 16 Int
/// columns over `rows` rows. `c3` is the block ordinal modulo 32 (constant
/// within a block, so an equality predicate keeps 1/32 of the rows in whole
/// blocks — pages skip), `c11` carries the aggregated payload, the other
/// fourteen columns are dead weight a pruned scan never touches.
pub fn wide_catalog(rows: u64) -> Catalog {
    const BLOCK: u64 = 256;
    let mut catalog = Catalog::new();
    let schema = Schema::new(
        (0..16)
            .map(|i| Field::new(format!("c{i}"), DataType::Int))
            .collect(),
    )
    .unwrap();
    let mut b = TableBuilder::new("wide", schema);
    b.reserve(rows as usize);
    for i in 0..rows {
        let row: Vec<Value> = (0..16i64)
            .map(|col| match col {
                3 => Value::Int(((i / BLOCK) % 32) as i64),
                11 => Value::Int(i as i64),
                _ => Value::Int(col * 1000 + (i % 7) as i64),
            })
            .collect();
        b.push_row(&row).unwrap();
    }
    catalog.register(b.finish().unwrap()).unwrap();
    catalog
}

/// The wide-table filter workload: a selective predicate directly on the
/// scan (fuses into the gather when pushdown is on) feeding a SUM over one
/// other column — 2 of 16 segments needed, ~3% of rows survive.
pub fn wide_filter_plan() -> LogicalPlan {
    use sa_expr::{col, lit};
    use sa_plan::AggSpec;
    LogicalPlan::scan("wide")
        .filter(col("c3").eq(lit(0i64)))
        .aggregate(vec![AggSpec::sum(col("c11"), "s")])
}

/// A synthetic catalog of `n` relations with `rows` rows each, for rewriter
/// scaling experiments.
pub fn synthetic_relations(n: usize, rows: u64) -> Catalog {
    let mut catalog = Catalog::new();
    let schema = Schema::new(vec![Field::new("k", DataType::Int)]).unwrap();
    for i in 0..n {
        let mut b = TableBuilder::new(format!("r{i}"), schema.clone());
        b.reserve(rows as usize);
        for j in 0..rows {
            b.push_row(&[Value::Int(j as i64)]).unwrap();
        }
        catalog.register(b.finish().unwrap()).unwrap();
    }
    catalog
}

/// A left-deep all-Bernoulli join plan over `n` synthetic relations.
pub fn synthetic_plan(n: usize, p: f64) -> LogicalPlan {
    use sa_expr::lit;
    use sa_plan::AggSpec;
    use sa_sampling::SamplingMethod;
    let mut plan = LogicalPlan::scan("r0").sample(SamplingMethod::Bernoulli { p });
    for i in 1..n {
        plan = plan.join_on(
            LogicalPlan::scan(format!("r{i}")).sample(SamplingMethod::Bernoulli { p }),
            lit(true),
        );
    }
    plan.aggregate(vec![AggSpec::count_star("c")])
}

/// Materialized (lineage, f) rows of a sampled join, for estimator-only
/// benchmarks.
pub fn materialized_result(
    catalog: &Catalog,
    plan: &LogicalPlan,
    seed: u64,
) -> (usize, Vec<(Vec<u64>, f64)>) {
    let LogicalPlan::Aggregate { input, aggs } = plan else {
        panic!("aggregate plan required")
    };
    let rs = execute(
        input,
        catalog,
        &ExecOptions {
            seed,
            ..Default::default()
        },
    )
    .expect("executes");
    let expr = aggs[0].expr.as_ref().expect("sum agg");
    let bound = sa_expr::bind(expr, &rs.schema).expect("binds");
    let n = rs.relations.len();
    let rows = rs
        .rows
        .iter()
        .map(|r| {
            let f = sa_expr::eval_f64(&bound, &r.values)
                .expect("evaluates")
                .unwrap_or(0.0);
            (r.lineage.clone(), f)
        })
        .collect();
    (n, rows)
}
