#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Experiments E5 and E7: accuracy/coverage analysis and the comparison
//! against naive estimators.
//!
//! The arXiv copy of the paper references its evaluation section but the
//! text is absent (broken `??` refs); these experiments reconstruct the
//! analysis the paper describes — "we test our implementation thoroughly,
//! and provide accuracy and runtime analysis" — on the TPC-H substrate.

use sa_baselines::compare_estimators;
use sa_exec::{approx_query, exact_query, ApproxOptions};
use sa_plan::LogicalPlan;
use sa_storage::Catalog;

use crate::workloads;

struct CoverageRow {
    workload: &'static str,
    rate: String,
    mean_rel_err: f64,
    normal_cov: f64,
    cheb_cov: f64,
    mean_rel_width: f64,
}

fn coverage_cell(
    catalog: &Catalog,
    plan: &LogicalPlan,
    workload: &'static str,
    rate: String,
    trials: u64,
) -> CoverageRow {
    let exact = exact_query(plan, catalog).unwrap()[0];
    let mut rel_err = 0.0;
    let mut covered_n = 0u64;
    let mut covered_c = 0u64;
    let mut width = 0.0;
    for seed in 0..trials {
        let r = approx_query(
            plan,
            catalog,
            &ApproxOptions {
                seed,
                confidence: 0.95,
                subsample_target: None,
            },
        )
        .unwrap();
        let a = &r.aggs[0];
        rel_err += (a.estimate - exact).abs() / exact.abs();
        let ci_n = a.ci_normal.as_ref().unwrap();
        let ci_c = a.ci_chebyshev.as_ref().unwrap();
        if ci_n.contains(exact) {
            covered_n += 1;
        }
        if ci_c.contains(exact) {
            covered_c += 1;
        }
        width += ci_n.width() / exact.abs();
    }
    CoverageRow {
        workload,
        rate,
        mean_rel_err: rel_err / trials as f64,
        normal_cov: covered_n as f64 / trials as f64,
        cheb_cov: covered_c as f64 / trials as f64,
        mean_rel_width: width / trials as f64,
    }
}

/// E5: empirical coverage of 95% intervals and relative error vs sampling
/// rate, across one-, two- and three-table workloads plus WOR.
pub fn coverage(trials: u64) -> String {
    let catalog = workloads::tpch_small(23);
    let mut rows: Vec<CoverageRow> = Vec::new();
    for pct in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let plan = workloads::single_table(&catalog, pct);
        rows.push(coverage_cell(
            &catalog,
            &plan,
            "1-table B",
            format!("{pct}%"),
            trials,
        ));
    }
    for size in [100u64, 500, 2000] {
        let plan = workloads::single_table_wor(&catalog, size);
        rows.push(coverage_cell(
            &catalog,
            &plan,
            "1-table WOR",
            format!("{size} rows"),
            trials,
        ));
    }
    for pct in [5.0, 10.0, 20.0] {
        let plan = workloads::two_table(&catalog, pct);
        rows.push(coverage_cell(
            &catalog,
            &plan,
            "2-table join",
            format!("{pct}%"),
            trials,
        ));
    }
    for pct in [10.0, 20.0, 40.0] {
        let plan = workloads::three_table(&catalog, pct);
        rows.push(coverage_cell(
            &catalog,
            &plan,
            "3-table join",
            format!("{pct}%"),
            trials,
        ));
    }

    let mut out = format!(
        "## E5 — Accuracy: coverage of 95% intervals and relative error ({trials} trials/cell)\n\n\
         | workload | sampling | mean rel. error | normal coverage | Chebyshev coverage | mean rel. CI width |\n\
         |---|---|---|---|---|---|\n"
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.3}% | {:.1}% | {:.1}% | {:.2}% |\n",
            r.workload,
            r.rate,
            r.mean_rel_err * 100.0,
            r.normal_cov * 100.0,
            r.cheb_cov * 100.0,
            r.mean_rel_width * 100.0
        ));
    }
    out.push_str(
        "\nExpected shape (paper): normal coverage ≈ 95%, Chebyshev ≥ 95%; error and \
         width shrink ∝ 1/√(sample size); joins are noisier than single tables at the \
         same rate.\n",
    );
    out
}

/// E7: GUS vs naive IID-CLT vs bootstrap on a sampled join — coverage of
/// each method's 95% interval over repeated runs.
///
/// The workload samples the *customer* side of a customer ⋈ orders join:
/// each kept customer drags along ≈10 orders, so result tuples are strongly
/// correlated — exactly the situation the paper's introduction describes.
pub fn comparison(trials: u64) -> String {
    let catalog = workloads::tpch_small(29);
    let plan = sa_sql::plan_sql(
        "SELECT SUM(o_totalprice) \
         FROM customer TABLESAMPLE (10 PERCENT), orders \
         WHERE c_custkey = o_custkey",
        &catalog,
    )
    .expect("comparison workload binds");
    let exact = exact_query(&plan, &catalog).unwrap()[0];
    let mut cover = [0u64; 3]; // gus, naive, bootstrap
    let mut width = [0.0f64; 3];
    let mut oracle = 0.0;
    let mut gus_var = 0.0;
    let mut naive_var = 0.0;
    for seed in 0..trials {
        let run = compare_estimators(&plan, &catalog, seed, 0.95, 200).unwrap();
        let gus_ci = run.gus.ci_normal.as_ref().unwrap();
        if gus_ci.contains(exact) {
            cover[0] += 1;
        }
        if run.naive.ci.contains(exact) {
            cover[1] += 1;
        }
        if run.bootstrap.ci.contains(exact) {
            cover[2] += 1;
        }
        width[0] += gus_ci.width();
        width[1] += run.naive.ci.width();
        width[2] += run.bootstrap.ci.width();
        oracle = run.oracle_variance;
        gus_var += run.gus.variance.unwrap();
        naive_var += run.naive.variance;
    }
    let t = trials as f64;
    let mut out = format!(
        "## E7 — Comparison on customer(10% Bernoulli) ⋈ orders (fan-out ≈ 10, {trials} trials)\n\n\
         | estimator | 95% coverage | mean CI width | mean variance belief |\n\
         |---|---|---|---|\n\
         | **GUS (this paper)** | {:.1}% | {:.0} | {:.3e} |\n\
         | naive IID-CLT | {:.1}% | {:.0} | {:.3e} |\n\
         | bootstrap percentile | {:.1}% | {:.0} | — |\n\n\
         True (oracle) estimator variance: {:.3e}\n\n",
        cover[0] as f64 / t * 100.0,
        width[0] / t,
        gus_var / t,
        cover[1] as f64 / t * 100.0,
        width[1] / t,
        naive_var / t,
        cover[2] as f64 / t * 100.0,
        width[2] / t,
        oracle,
    );
    out.push_str(
        "Expected shape (paper's motivation): joins correlate result tuples through \
         shared base tuples; naive/bootstrap believe a variance that is several times \
         too small and under-cover badly, while the GUS analysis tracks the oracle and \
         achieves ≈ nominal coverage.\n",
    );
    out
}
