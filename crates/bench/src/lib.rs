//! # sa-bench — benchmark harness and experiment suite
//!
//! One module per experiment family (see DESIGN.md §3 for the index):
//!
//! * [`exp_figures`] — E1–E4: the paper's printed artifacts (Figures 1–5,
//!   Examples 1–6).
//! * [`exp_accuracy`] — E5 (coverage/accuracy) and E7 (comparison against
//!   naive estimators).
//! * [`exp_runtime`] — E6: rewriter latency, SBox cost scaling, Section 7
//!   sub-sampling.
//! * [`exp_applications`] — E8: the Section 8 applications.
//!
//! The `experiments` binary drives them (`cargo run --release -p sa-bench
//! --bin experiments -- all`); the `benches/` directory holds the criterion
//! micro-benchmarks per performance figure.

#![warn(missing_docs)]

pub mod exp_accuracy;
pub mod exp_applications;
pub mod exp_figures;
pub mod exp_runtime;
pub mod workloads;
