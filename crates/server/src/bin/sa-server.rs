//! `sa-server` — serve online-aggregation queries over TCP.
//!
//! ```sh
//! sa-server --tpch 0.01 --addr 127.0.0.1:5433 --seed 42
//! sa-server --data ./tpch1 --addr 127.0.0.1:5433   # memory-mapped .sac dir
//! ```
//!
//! Generates TPC-H-style data (or memory-maps a directory of `.sac` files
//! written by `sa --persist`), builds an [`sa_server::Server`] with shared
//! scans enabled, prints `READY <addr>` on stdout once listening, and
//! serves until killed. Drive it with the `sa` client:
//!
//! ```sh
//! sa --connect 127.0.0.1:5433 --query \
//!    "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (25 PERCENT) \
//!     WITHIN 5 PERCENT CONFIDENCE 95"
//! ```

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};

use sa_server::{Server, ServerConfig};
use sa_tpch::{generate, TpchConfig};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Set by the SIGTERM/SIGINT handler; polled by the shutdown monitor. A
/// relaxed store on a static atomic is async-signal-safe.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::Relaxed);
}

/// Route SIGTERM (15) and SIGINT (2) to [`on_term`] so `kill` and Ctrl-C
/// drain the server gracefully instead of dropping in-flight queries.
/// Uses libc's `signal(2)` directly — the std runtime links libc anyway —
/// to stay dependency-free.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_term as *const () as usize); // SIGTERM
        signal(2, on_term as *const () as usize); // SIGINT
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.005f64;
    let mut seed = 42u64;
    let mut data_dir: Option<String> = None;
    let mut fault_spec: Option<String> = None;
    let mut config = ServerConfig {
        addr: "127.0.0.1:5433".into(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tpch" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--tpch needs a scale factor"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--data" => {
                data_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--data needs a directory of .sac files"))
                        .clone(),
                );
            }
            "--addr" => {
                config.addr = it
                    .next()
                    .unwrap_or_else(|| die("--addr needs HOST:PORT"))
                    .clone();
            }
            "--workers" => {
                config.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| die("--workers needs a positive count"));
            }
            "--max-concurrent" => {
                config.max_concurrent = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-concurrent needs a number"));
            }
            "--drain-ms" => {
                config.drain_deadline = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(std::time::Duration::from_millis)
                    .unwrap_or_else(|| die("--drain-ms needs milliseconds"));
            }
            "--fault" => {
                fault_spec = Some(
                    it.next()
                        .unwrap_or_else(|| die("--fault needs `site=spec,…`"))
                        .clone(),
                );
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: sa-server [--tpch SCALE | --data DIR] [--seed N] \
                     [--addr HOST:PORT] [--workers N] [--max-concurrent N] \
                     [--drain-ms N] [--fault SPEC]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }

    config.defaults.seed = seed;
    if let Some(spec) = &fault_spec {
        sa_fault::install(spec, seed).unwrap_or_else(|e| die(&format!("bad --fault: {e}")));
        eprintln!("fault injection armed: {spec} (seed {seed})");
    }
    let catalog = match &data_dir {
        Some(dir) => {
            eprintln!("opening mapped catalog from {dir} …");
            sa_storage::open_catalog_dir(std::path::Path::new(dir))
                .unwrap_or_else(|e| die(&format!("cannot open --data {dir}: {e}")))
        }
        None => {
            eprintln!("generating TPC-H data at scale {scale} (seed {seed}) …");
            generate(&TpchConfig::scale(scale).with_seed(seed))
        }
    };
    install_signal_handlers();
    let server =
        Server::bind(catalog, &config).unwrap_or_else(|e| die(&format!("cannot bind: {e}")));
    println!("READY {}", server.local_addr());
    let _ = std::io::stdout().flush();

    // Signal monitor: `signal(2)` handlers can't touch the server safely,
    // so the handler just flips a flag and this thread turns it into a
    // graceful drain.
    let ctl = server.controller();
    let engine = server.engine().clone();
    std::thread::spawn(move || loop {
        if TERM.load(Ordering::Relaxed) {
            eprintln!("signal received: draining …");
            ctl.begin_shutdown();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    });

    // Blocks until a SIGTERM/SIGINT, a client SHUTDOWN, or a controller
    // drain completes; then emit the final metrics so an orchestrator's
    // logs capture what the process did before exiting 0.
    server.join();
    eprintln!("drained; final STATS follow");
    print!("{}", engine.render_prometheus());
    let _ = std::io::stdout().flush();
}
