//! `sa-server` — serve online-aggregation queries over TCP.
//!
//! ```sh
//! sa-server --tpch 0.01 --addr 127.0.0.1:5433 --seed 42
//! sa-server --data ./tpch1 --addr 127.0.0.1:5433   # memory-mapped .sac dir
//! ```
//!
//! Generates TPC-H-style data (or memory-maps a directory of `.sac` files
//! written by `sa --persist`), builds an [`sa_server::Server`] with shared
//! scans enabled, prints `READY <addr>` on stdout once listening, and
//! serves until killed. Drive it with the `sa` client:
//!
//! ```sh
//! sa --connect 127.0.0.1:5433 --query \
//!    "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (25 PERCENT) \
//!     WITHIN 5 PERCENT CONFIDENCE 95"
//! ```

use std::io::Write;

use sa_server::{Server, ServerConfig};
use sa_tpch::{generate, TpchConfig};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.005f64;
    let mut seed = 42u64;
    let mut data_dir: Option<String> = None;
    let mut config = ServerConfig {
        addr: "127.0.0.1:5433".into(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tpch" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--tpch needs a scale factor"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--data" => {
                data_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--data needs a directory of .sac files"))
                        .clone(),
                );
            }
            "--addr" => {
                config.addr = it
                    .next()
                    .unwrap_or_else(|| die("--addr needs HOST:PORT"))
                    .clone();
            }
            "--workers" => {
                config.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| die("--workers needs a positive count"));
            }
            "--max-concurrent" => {
                config.max_concurrent = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-concurrent needs a number"));
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: sa-server [--tpch SCALE | --data DIR] [--seed N] \
                     [--addr HOST:PORT] [--workers N] [--max-concurrent N]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }

    config.defaults.seed = seed;
    let catalog = match &data_dir {
        Some(dir) => {
            eprintln!("opening mapped catalog from {dir} …");
            sa_storage::open_catalog_dir(std::path::Path::new(dir))
                .unwrap_or_else(|e| die(&format!("cannot open --data {dir}: {e}")))
        }
        None => {
            eprintln!("generating TPC-H data at scale {scale} (seed {seed}) …");
            generate(&TpchConfig::scale(scale).with_seed(seed))
        }
    };
    let server =
        Server::bind(catalog, &config).unwrap_or_else(|e| die(&format!("cannot bind: {e}")));
    println!("READY {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.join();
}
