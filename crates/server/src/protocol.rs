//! The line protocol `sa-server` speaks.
//!
//! One UTF-8 line per message, newline-terminated, both ways. Requests:
//!
//! ```text
//! SEED <n>         use sampling seed n for subsequent queries   → OK
//! SHUFFLE on|off   seeded random block order for subsequent
//!                  queries (scan-order robustness)              → OK
//! DEADLINE <ms>    hard wall-clock deadline for subsequent
//!                  queries (0 or `off` clears)                  → OK
//! QUERY <sql>      run a TABLESAMPLE aggregate query            → see below
//! STATS            dump engine metrics                          → see below
//! PING             liveness probe                               → OK
//! SHUTDOWN         drain the whole server gracefully            → OK
//! QUIT             close the connection
//! ```
//!
//! A query cut short by its `DEADLINE` still answers a well-formed
//! `FINAL reason=deadline …` line: the estimate over the prefix absorbed so
//! far is itself unbiased (a deadline run is a WOR(consumed, N) sample —
//! see `docs/estimation-notes.md` §9), so clients can use it.
//!
//! `SHUTDOWN` acknowledges with `OK` and then stops the server accepting
//! new connections; in-flight queries drain under the server's drain
//! deadline (past it they are cancelled and still answer `FINAL
//! reason=cancelled`), after which every connection closes.
//!
//! A `QUERY` answers with a stream of progress lines and always terminates
//! with `DONE`:
//!
//! ```text
//! SNAP rows=<n> chunk=<c> estimate=<e> rel=<r|na>        (scalar, throttled)
//! SNAP rows=<n> chunk=<c> groups=<g> rel=<r|na>          (grouped, throttled)
//! GROUP key=<k> estimate=<e> rel=<r|na>                  (grouped, at the end)
//! FINAL reason=<stop-reason> rows=<n> estimate=<e> ci=<lo>..<hi>
//! FINAL reason=<stop-reason> rows=<n> groups=<g>
//! DONE
//! ```
//!
//! `STATS` answers the engine's metrics in Prometheus text exposition
//! format (`# TYPE` comments, one `name value` sample per line — counters,
//! gauges, and latency summaries with p50/p95/p99 quantile samples),
//! terminated by `DONE`. The engine behind [`crate::Server::bind`] always
//! records metrics, so the dump is never empty.
//!
//! Failures (bad request, planning error, admission rejection) answer
//! `ERR <message>` — still followed by `DONE` for `QUERY` so clients can
//! treat `DONE` as the universal exchange terminator.

use sa_online::{GroupedProgressSnapshot, ProgressSnapshot, QueryResult, Snapshot};

/// A parsed client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `QUERY <sql>`: run an approximate aggregate query.
    Query(String),
    /// `SEED <n>`: pin the sampling seed for subsequent queries.
    Seed(u64),
    /// `SHUFFLE on|off`: visit blocks in a seeded random order for
    /// subsequent queries (restores the random-scan-order assumption on
    /// physically sorted tables).
    Shuffle(bool),
    /// `DEADLINE <ms>`: hard wall-clock deadline (milliseconds) for
    /// subsequent queries on this connection; `None` (0 or `off`) clears.
    Deadline(Option<u64>),
    /// `SHUTDOWN`: begin a graceful server-wide drain.
    Shutdown,
    /// `STATS`: dump engine metrics in Prometheus text format.
    Stats,
    /// `PING`: liveness probe.
    Ping,
    /// `QUIT`: close the connection.
    Quit,
}

/// Parse one request line. Keywords are case-insensitive; the SQL payload
/// is taken verbatim.
pub fn parse(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" if !rest.trim().is_empty() => Ok(Request::Query(rest.trim().to_string())),
        "QUERY" => Err("QUERY needs SQL".into()),
        "SEED" => rest
            .trim()
            .parse()
            .map(Request::Seed)
            .map_err(|_| "SEED needs a non-negative integer".into()),
        "SHUFFLE" => match rest.trim().to_ascii_lowercase().as_str() {
            "on" => Ok(Request::Shuffle(true)),
            "off" => Ok(Request::Shuffle(false)),
            _ => Err("SHUFFLE needs `on` or `off`".into()),
        },
        "DEADLINE" => match rest.trim().to_ascii_lowercase().as_str() {
            "off" | "0" => Ok(Request::Deadline(None)),
            ms => ms
                .parse()
                .map(|n| Request::Deadline(Some(n)))
                .map_err(|_| "DEADLINE needs milliseconds (0 or `off` clears)".into()),
        },
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "QUIT" => Ok(Request::Quit),
        other => Err(format!("unknown request `{other}`")),
    }
}

fn fmt_rel(rel: Option<f64>) -> String {
    rel.map(|r| format!("{r:.6}"))
        .unwrap_or_else(|| "na".into())
}

/// Render a progress snapshot as one `SNAP` line.
pub fn snap_line(snap: &Snapshot) -> String {
    match snap {
        Snapshot::Scalar(s) => format!(
            "SNAP rows={} chunk={} estimate={} rel={}",
            s.rows,
            s.chunk,
            s.aggs[0].estimate,
            fmt_rel(snap.rel_half_width()),
        ),
        Snapshot::Grouped(s) => format!(
            "SNAP rows={} chunk={} groups={} rel={}",
            s.rows,
            s.chunk,
            s.groups.len(),
            fmt_rel(snap.rel_half_width()),
        ),
    }
}

fn scalar_final(s: &ProgressSnapshot, reason: &str) -> Vec<String> {
    let ci = s.aggs[0]
        .ci_normal
        .as_ref()
        .map(|ci| format!("{}..{}", ci.lo, ci.hi))
        .unwrap_or_else(|| "na".into());
    vec![format!(
        "FINAL reason={reason} rows={} estimate={} ci={ci}",
        s.rows, s.aggs[0].estimate,
    )]
}

fn grouped_final(s: &GroupedProgressSnapshot, reason: &str) -> Vec<String> {
    let mut lines: Vec<String> = s
        .groups
        .iter()
        .map(|g| {
            let key: Vec<String> = g.key.iter().map(|v| v.to_string()).collect();
            format!(
                "GROUP key={} estimate={} rel={}",
                key.join(","),
                g.aggs[0].estimate,
                fmt_rel(g.rel_half_width),
            )
        })
        .collect();
    lines.push(format!(
        "FINAL reason={reason} rows={} groups={}",
        s.rows,
        s.groups.len(),
    ));
    lines
}

/// Render a finished query as its `GROUP`*/`FINAL` lines (no `DONE`).
pub fn final_lines(result: &QueryResult) -> Vec<String> {
    let reason = result.reason.to_string();
    match &result.snapshot {
        Snapshot::Scalar(s) => scalar_final(s, &reason),
        Snapshot::Grouped(s) => grouped_final(s, &reason),
    }
}

/// Render an error as one `ERR` line (newlines squashed so the line
/// protocol stays line-shaped).
pub fn err_line(msg: &str) -> String {
    format!("ERR {}", msg.replace(['\n', '\r'], " "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(
            parse("QUERY SELECT 1"),
            Ok(Request::Query("SELECT 1".into()))
        );
        assert_eq!(parse("query select sum(v) from t"), {
            Ok(Request::Query("select sum(v) from t".into()))
        });
        assert_eq!(parse("SEED 42"), Ok(Request::Seed(42)));
        assert_eq!(parse("SHUFFLE on"), Ok(Request::Shuffle(true)));
        assert_eq!(parse("shuffle OFF"), Ok(Request::Shuffle(false)));
        assert!(parse("SHUFFLE maybe").is_err());
        assert_eq!(parse("DEADLINE 250"), Ok(Request::Deadline(Some(250))));
        assert_eq!(parse("deadline off"), Ok(Request::Deadline(None)));
        assert_eq!(parse("DEADLINE 0"), Ok(Request::Deadline(None)));
        assert!(parse("DEADLINE soon").is_err());
        assert_eq!(parse("SHUTDOWN"), Ok(Request::Shutdown));
        assert_eq!(parse("stats"), Ok(Request::Stats));
        assert_eq!(parse(" PING "), Ok(Request::Ping));
        assert_eq!(parse("quit"), Ok(Request::Quit));
        assert!(parse("QUERY").is_err());
        assert!(parse("SEED x").is_err());
        assert!(parse("EXPLAIN SELECT 1").is_err());
    }

    #[test]
    fn err_lines_stay_single_line() {
        assert_eq!(err_line("a\nb\r\nc"), "ERR a b  c");
    }
}
