//! # sa-server — a concurrent online-aggregation query service
//!
//! A std-only TCP front-end over [`sa_online::Engine`]: clients speak the
//! one-line-per-message protocol in [`protocol`], each connection gets its
//! own engine [`sa_online::Session`] (stable per-session seed), a fixed
//! thread pool bounds the connections served at once, and the engine's
//! admission control ([`sa_online::EngineBuilder::max_concurrent`]) sheds
//! query load past the configured bound with `ERR engine busy …` instead
//! of queueing.
//!
//! The serving win is **shared scans**: the engine is built with
//! `shared_scans(true)`, so N concurrent sequential queries over the same
//! table attach to one circular columnar scan and cost ~1 table scan
//! between them — the mid-scan attach is an origin shift the estimator is
//! invariant to (see `docs/estimation-notes.md`).
//!
//! ```no_run
//! use sa_server::{Server, ServerConfig};
//! use sa_storage::Catalog;
//!
//! let catalog = Catalog::new(); // register tables first
//! let server = Server::bind(catalog, &ServerConfig::default()).unwrap();
//! eprintln!("listening on {}", server.local_addr());
//! server.join(); // serve until shutdown() is called from another thread
//! ```

#![warn(missing_docs)]

pub mod protocol;

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use sa_obs::Counter;
use sa_online::{Engine, QueryOptions, Session};
use sa_storage::Catalog;

use protocol::{err_line, final_lines, parse, snap_line, Request};

/// Server-side counters, registered on the engine's metrics registry so
/// they ride along in `STATS` dumps and [`Engine::metrics`] snapshots.
#[derive(Clone, Default)]
struct ServerObs {
    connections: Counter,
    bad_requests: Counter,
    disconnects: Counter,
    read_timeouts: Counter,
}

impl ServerObs {
    fn new(engine: &Engine) -> ServerObs {
        let registry = engine.registry();
        ServerObs {
            connections: registry.counter("sa_server_connections_total"),
            bad_requests: registry.counter("sa_server_bad_requests_total"),
            disconnects: registry.counter("sa_server_disconnects_total"),
            read_timeouts: registry.counter("sa_server_read_timeouts_total"),
        }
    }
}

/// Shared shutdown state: `stop` stops the accept loop and tells idle
/// connections to close after their current exchange; `hard` (set when the
/// drain deadline passes) additionally cancels in-flight queries, which
/// still answer a well-formed `FINAL reason=cancelled` before the
/// connection closes.
struct Ctl {
    stop: AtomicBool,
    hard: AtomicBool,
    addr: OnceLock<SocketAddr>,
}

impl Ctl {
    fn new() -> Ctl {
        Ctl {
            stop: AtomicBool::new(false),
            hard: AtomicBool::new(false),
            addr: OnceLock::new(),
        }
    }

    /// Flip to draining and wake the blocking accept loop (idempotent).
    fn begin_shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            if let Some(addr) = self.addr.get() {
                // Wake the blocking accept with a throwaway connection.
                let _ = TcpStream::connect(addr);
            }
        }
    }

    fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A cloneable remote control for a running [`Server`]: lets another
/// thread (a SIGTERM monitor, a test) start the graceful drain without
/// owning the server handle.
#[derive(Clone)]
pub struct ServerController {
    ctl: Arc<Ctl>,
}

impl ServerController {
    /// Begin the graceful drain: stop accepting, let in-flight queries
    /// finish (until the drain deadline), then close every connection.
    /// [`Server::join`] returns once the drain completes.
    pub fn begin_shutdown(&self) {
        self.ctl.begin_shutdown();
    }

    /// Whether a drain has started.
    pub fn is_draining(&self) -> bool {
        self.ctl.draining()
    }
}

/// Serving policy for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port — read it back
    /// with [`Server::local_addr`]).
    pub addr: String,
    /// Connection-handling threads: at most this many clients are served
    /// simultaneously; further connections wait in the accept queue.
    pub workers: usize,
    /// Engine admission bound: queries past this many in flight are
    /// rejected with `ERR engine busy …`.
    pub max_concurrent: usize,
    /// Default [`QueryOptions`] (seed, chunk size, …) each query starts
    /// from; the per-connection `SEED` request overrides the seed.
    pub defaults: QueryOptions,
    /// Emit every k-th `SNAP` progress line (the `FINAL` line is always
    /// sent). 0 silences progress entirely.
    pub snapshot_every: u64,
    /// Close a connection that sends no request for this long (the socket
    /// is polled every ~250 ms, so drains are noticed promptly even by
    /// idle clients).
    pub read_timeout: Duration,
    /// How long a graceful drain waits for in-flight queries before
    /// cancelling them (they still answer `FINAL reason=cancelled`).
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            max_concurrent: 64,
            defaults: QueryOptions::default(),
            snapshot_every: 8,
            read_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// A running query service: an accept loop plus a fixed worker pool, all
/// plain std threads. Dropping the handle does **not** stop the server —
/// call [`Server::shutdown`] (or let the process exit).
pub struct Server {
    engine: Engine,
    local_addr: SocketAddr,
    ctl: Arc<Ctl>,
    drain_deadline: Duration,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr`, build the engine (shared scans and metrics on,
    /// admission bound from the config) over `catalog`, and start serving.
    pub fn bind(catalog: Catalog, config: &ServerConfig) -> std::io::Result<Server> {
        let engine = Engine::builder(catalog)
            .defaults(config.defaults.clone())
            .max_concurrent(config.max_concurrent)
            .shared_scans(true)
            .metrics(true)
            .build();
        Server::serve(engine, config)
    }

    /// Like [`Server::bind`] but over a fully configured engine (tests use
    /// this to control shared-scan windows or disable sharing).
    pub fn serve(engine: Engine, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let ctl = Arc::new(Ctl::new());
        let _ = ctl.addr.set(local_addr);
        let snapshot_every = config.snapshot_every;
        let read_timeout = config.read_timeout;

        // Fixed worker pool: the accept loop feeds connections through a
        // rendezvous channel, so at most `workers` clients are in service
        // and the rest queue in the listener backlog.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(0);
        let rx = Arc::new(Mutex::new(rx));
        let obs = ServerObs::new(&engine);
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let engine = engine.clone();
                let obs = obs.clone();
                let ctl = Arc::clone(&ctl);
                thread::Builder::new()
                    .name(format!("sa-serve-{i}"))
                    .spawn(move || loop {
                        // Poison recovery: a sibling worker that panicked
                        // while holding the receiver must not wedge the
                        // whole pool — the channel itself is still sound.
                        let conn = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                            Ok(conn) => conn,
                            Err(_) => return, // accept loop gone
                        };
                        obs.connections.inc();
                        let session = engine.session();
                        if handle_connection(
                            conn,
                            session,
                            snapshot_every,
                            read_timeout,
                            &obs,
                            &ctl,
                        )
                        .is_err()
                        {
                            // The client vanished mid-exchange (or the socket
                            // died); the query path has already cancelled and
                            // reaped any in-flight work.
                            obs.disconnects.inc();
                        }
                    })
                    .expect("spawn server worker")
            })
            .collect();

        let accept = {
            let ctl = Arc::clone(&ctl);
            thread::Builder::new()
                .name("sa-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if ctl.draining() {
                            return; // drops tx → workers drain and exit
                        }
                        if let Ok(conn) = conn {
                            if tx.send(conn).is_err() {
                                return;
                            }
                        }
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(Server {
            engine,
            local_addr,
            ctl,
            drain_deadline: config.drain_deadline,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the service (tests inspect scan stats here).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A remote control that can start the graceful drain from another
    /// thread (e.g. a SIGTERM monitor) or a connection's `SHUTDOWN` verb.
    pub fn controller(&self) -> ServerController {
        ServerController {
            ctl: Arc::clone(&self.ctl),
        }
    }

    /// Begin the graceful drain and block until every thread has joined.
    /// In-flight queries get [`ServerConfig::drain_deadline`] to finish
    /// (and answer `FINAL`); past it they are cancelled — they still
    /// answer `FINAL reason=cancelled` before their connections close.
    pub fn shutdown(mut self) {
        self.ctl.begin_shutdown();
        self.drain();
    }

    /// Block until the server drains (after [`ServerController::begin_shutdown`],
    /// a client `SHUTDOWN`, or a signal monitor flips the drain on — use
    /// from `main` to serve until told to stop).
    pub fn join(mut self) {
        self.drain();
    }

    /// Join the accept loop, give in-flight work the drain deadline, then
    /// hard-cancel whatever is left and join the workers.
    fn drain(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Accept thread gone ⇒ the channel sender is dropped; each worker
        // exits once its current connection closes. Idle connections poll
        // the drain flag every ~250 ms; busy ones finish their query.
        let deadline = Instant::now() + self.drain_deadline;
        while Instant::now() < deadline && self.workers.iter().any(|h| !h.is_finished()) {
            thread::sleep(Duration::from_millis(10));
        }
        // Past the drain deadline: cancel in-flight queries. They still
        // produce a FINAL line (a cancelled run is a valid prefix
        // estimate) and then their connections close.
        self.ctl.hard.store(true, Ordering::SeqCst);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// How often an idle connection re-checks the drain flag. The socket read
/// timeout is the min of this and the configured read timeout, so drains
/// are noticed within a poll tick even by clients that send nothing.
const IDLE_POLL: Duration = Duration::from_millis(250);

/// Per-connection query settings the `SEED`/`SHUFFLE`/`DEADLINE` verbs
/// accumulate between `QUERY` requests.
#[derive(Default)]
struct ConnState {
    seed: Option<u64>,
    shuffle: bool,
    deadline: Option<Duration>,
}

/// Serve one client connection until `QUIT`, EOF, a read timeout, a
/// server drain, or an I/O error.
fn handle_connection(
    conn: TcpStream,
    session: Session,
    snapshot_every: u64,
    read_timeout: Duration,
    obs: &ServerObs,
    ctl: &Ctl,
) -> std::io::Result<()> {
    if sa_fault::hit(sa_fault::sites::SERVER_CONN_DROP) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "injected fault: connection dropped",
        ));
    }
    // A short socket timeout turns the blocking read into a poll loop so
    // idle connections notice drains and enforce the read timeout.
    conn.set_read_timeout(Some(IDLE_POLL.min(read_timeout)))?;
    conn.set_write_timeout(Some(read_timeout))?;
    let probe = conn.try_clone()?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut out = BufWriter::new(conn);
    let mut st = ConnState::default();
    let mut line = String::new();
    let mut idle_since = Instant::now();
    loop {
        line.clear();
        // Poll for a full request line; `read_line` buffers partial reads
        // across timeouts, so a slow sender is reassembled correctly.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // EOF: client closed cleanly
                Ok(_) if line.ends_with('\n') => break,
                Ok(_) => continue, // partial line, keep reading
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if ctl.draining() && line.is_empty() {
                        return Ok(()); // server drain: close the idle connection
                    }
                    if idle_since.elapsed() >= read_timeout {
                        obs.read_timeouts.inc();
                        return Ok(()); // idle too long: reclaim the worker
                    }
                }
                Err(e) => return Err(e),
            }
        }
        idle_since = Instant::now();
        match parse(&line) {
            Ok(Request::Ping) => writeln!(out, "OK")?,
            Ok(Request::Seed(s)) => {
                st.seed = Some(s);
                writeln!(out, "OK")?;
            }
            Ok(Request::Shuffle(on)) => {
                st.shuffle = on;
                writeln!(out, "OK")?;
            }
            Ok(Request::Deadline(ms)) => {
                st.deadline = ms.map(Duration::from_millis);
                writeln!(out, "OK")?;
            }
            Ok(Request::Shutdown) => {
                writeln!(out, "OK")?;
                out.flush()?;
                ctl.begin_shutdown();
                return Ok(());
            }
            Ok(Request::Quit) => return Ok(()),
            Ok(Request::Stats) => {
                out.write_all(session.engine().render_prometheus().as_bytes())?;
                writeln!(out, "DONE")?;
            }
            Ok(Request::Query(sql)) => {
                run_query(&mut out, &probe, &session, &sql, &st, snapshot_every, ctl)?;
                writeln!(out, "DONE")?;
            }
            Err(msg) => {
                obs.bad_requests.inc();
                writeln!(out, "{}", err_line(&msg))?;
            }
        }
        out.flush()?;
        if ctl.draining() {
            return Ok(()); // drain: close after completing the exchange
        }
    }
}

/// Has the client hung up? A non-blocking `peek` distinguishes "no data
/// yet" (`WouldBlock`) from an orderly EOF or a reset — this is what lets
/// a throttled query notice a disconnect even when it never writes.
fn client_gone(conn: &TcpStream) -> bool {
    let mut buf = [0u8; 1];
    if conn.set_nonblocking(true).is_err() {
        return true;
    }
    let gone = match conn.peek(&mut buf) {
        Ok(0) => true,  // orderly shutdown
        Ok(_) => false, // a pipelined request is waiting — still alive
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true, // reset / aborted
    };
    let _ = conn.set_nonblocking(false);
    gone
}

/// Run one query, streaming throttled `SNAP` lines and the `FINAL` readout.
///
/// Runs through an online [`sa_online::QueryHandle`] so a client that
/// disconnects mid-stream cancels the query instead of letting it run to
/// completion holding an admission slot and (under shared scans) a hub
/// cursor. The first failed `SNAP` write cancels; on throttled ticks that
/// write nothing, the socket is probed directly (`client_gone`) so a
/// client that vanishes between `QUERY` and the first emitted `SNAP` —
/// or under `snapshot_every = 0`, which never writes — still cancels
/// instead of running to completion holding its slot. Either way,
/// `wait()` then reaps the query thread — dropping its admission guard
/// and detaching its cursor — before the I/O error propagates.
fn run_query(
    out: &mut impl Write,
    probe: &TcpStream,
    session: &Session,
    sql: &str,
    st: &ConnState,
    snapshot_every: u64,
    ctl: &Ctl,
) -> std::io::Result<()> {
    let mut builder = session.query(sql).shuffle_scan(st.shuffle);
    if let Some(s) = st.seed {
        builder = builder.seed(s);
    }
    if let Some(d) = st.deadline {
        builder = builder.deadline(d);
    }
    let handle = match builder.online() {
        Ok(handle) => handle,
        Err(e) => {
            writeln!(out, "{}", err_line(&e.to_string()))?;
            return Ok(());
        }
    };
    let mut io_err = None;
    let mut hard_cancelled = false;
    for snap in handle.snapshots() {
        if ctl.hard.load(Ordering::SeqCst) && !hard_cancelled {
            // Drain deadline passed: stop the query but keep draining its
            // snapshot channel so `wait()` returns a FINAL to report.
            handle.cancel();
            hard_cancelled = true;
        }
        if snapshot_every == 0 || snap.chunk() % snapshot_every != 0 {
            // Throttled tick: nothing is written, so a vanished client
            // would go unnoticed — probe the socket instead.
            if client_gone(probe) {
                handle.cancel();
                io_err = Some(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "client disconnected mid-query",
                ));
                break;
            }
            continue;
        }
        if sa_fault::hit(sa_fault::sites::SERVER_CONN_SLOW) {
            thread::sleep(Duration::from_millis(1));
        }
        if let Err(e) = writeln!(out, "{}", snap_line(&snap)).and_then(|_| out.flush()) {
            handle.cancel();
            io_err = Some(e);
            break;
        }
    }
    // Always reap the query thread, even on the disconnect path: this is
    // what releases the admission slot and the shared-scan cursor.
    let result = handle.wait();
    if let Some(e) = io_err {
        return Err(e);
    }
    match result {
        Ok(r) => {
            for line in final_lines(&r) {
                writeln!(out, "{line}")?;
            }
        }
        Err(e) => writeln!(out, "{}", err_line(&e.to_string()))?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog(rows: i64) -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            b.push_row(&[Value::Int(i % 10), Value::Float(1.0 + (i % 7) as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn start(rows: i64) -> Server {
        Server::bind(
            catalog(rows),
            &ServerConfig {
                snapshot_every: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    }

    fn exchange(addr: SocketAddr, requests: &[&str]) -> Vec<String> {
        let conn = TcpStream::connect(addr).unwrap();
        let mut tx = conn.try_clone().unwrap();
        for r in requests {
            writeln!(tx, "{r}").unwrap();
        }
        writeln!(tx, "QUIT").unwrap();
        tx.flush().unwrap();
        BufReader::new(conn).lines().map(|l| l.unwrap()).collect()
    }

    #[test]
    fn ping_seed_and_bad_requests() {
        let server = start(100);
        let lines = exchange(server.local_addr(), &["PING", "SEED 9", "EXPLAIN"]);
        assert_eq!(lines[0], "OK");
        assert_eq!(lines[1], "OK");
        assert!(lines[2].starts_with("ERR unknown request"), "{}", lines[2]);
        let metrics = server.engine().metrics();
        assert_eq!(metrics.counter("sa_server_bad_requests_total"), Some(1));
        assert_eq!(metrics.counter("sa_server_connections_total"), Some(1));
        server.shutdown();
    }

    #[test]
    fn malformed_query_lines_hold_no_admission_slot() {
        let server = start(100);
        let lines = exchange(server.local_addr(), &["QUERY", "QUERY   ", "PING"]);
        assert!(lines[0].starts_with("ERR QUERY needs SQL"), "{}", lines[0]);
        assert!(lines[1].starts_with("ERR QUERY needs SQL"), "{}", lines[1]);
        assert_eq!(lines[2], "OK");
        assert_eq!(server.engine().active_queries(), 0);
        let metrics = server.engine().metrics();
        assert_eq!(metrics.counter("sa_server_bad_requests_total"), Some(2));
        assert_eq!(metrics.counter("sa_queries_started_total"), Some(0));
        server.shutdown();
    }

    #[test]
    fn stats_reports_prometheus_metrics() {
        let server = start(4000);
        let lines = exchange(
            server.local_addr(),
            &[
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)",
                "STATS",
            ],
        );
        assert_eq!(lines.last().unwrap(), "DONE");
        let dump = lines.join("\n");
        assert!(
            dump.contains("# TYPE sa_queries_started_total counter"),
            "{dump}"
        );
        assert!(dump.contains("sa_queries_started_total 1"), "{dump}");
        assert!(
            dump.contains("sa_queries_finished_total{reason=\"exhausted\"} 1"),
            "{dump}"
        );
        assert!(
            dump.contains("sa_query_duration_us{quantile=\"0.99\"}"),
            "{dump}"
        );
        assert!(
            dump.contains("sa_shared_scan_rows_gathered_total"),
            "{dump}"
        );
        assert!(dump.contains("sa_server_connections_total 1"), "{dump}");
        server.shutdown();
    }

    #[test]
    fn aborted_clients_release_slots_and_cursors() {
        use std::time::Duration;

        let server = start(400_000);
        let addr = server.local_addr();
        // Hammer: start an exhaustive query, read a couple of progress
        // lines to make sure it is in flight, then slam the socket shut.
        for _ in 0..6 {
            let conn = TcpStream::connect(addr).unwrap();
            let mut tx = conn.try_clone().unwrap();
            writeln!(
                tx,
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)"
            )
            .unwrap();
            tx.flush().unwrap();
            let mut reader = BufReader::new(conn);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("SNAP "), "{line}");
            // Dropping both halves aborts the connection mid-stream; the
            // server's next SNAP write fails and cancels the query.
        }
        // The disconnect path must give back both the admission slot and
        // the shared-scan cursor — poll briefly while the server reaps.
        let mut tries = 0;
        loop {
            let attached = server.engine().scan_stats("t").map_or(0, |s| s.attached);
            if server.engine().active_queries() == 0 && attached == 0 {
                break;
            }
            tries += 1;
            assert!(tries < 500, "query slots or cursors never released");
            thread::sleep(Duration::from_millis(10));
        }
        let metrics = server.engine().metrics();
        assert_eq!(metrics.counter("sa_queries_started_total"), Some(6));
        let finished: u64 = [
            "ci-converged",
            "row-budget",
            "time-budget",
            "exhausted",
            "cancelled",
            "deadline",
            "degraded",
        ]
        .iter()
        .filter_map(|r| metrics.counter(&format!("sa_queries_finished_total{{reason=\"{r}\"}}")))
        .sum();
        assert_eq!(finished, 6, "every aborted query must still finish");
        assert!(
            metrics.counter("sa_server_disconnects_total").unwrap_or(0) >= 1,
            "mid-stream aborts should register as disconnects"
        );
        server.shutdown();
    }

    #[test]
    fn deadline_verb_cuts_a_query_short_with_a_valid_final() {
        let server = start(800_000);
        let lines = exchange(
            server.local_addr(),
            &[
                "DEADLINE 1",
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)",
            ],
        );
        assert_eq!(lines[0], "OK");
        let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
        assert!(final_line.contains("reason=deadline"), "{final_line}");
        assert!(final_line.contains("estimate="), "{final_line}");
        assert_eq!(lines.last().unwrap(), "DONE");
        // Clearing the deadline restores run-to-exhaustion behaviour.
        let lines = exchange(
            server.local_addr(),
            &[
                "DEADLINE 1",
                "DEADLINE off",
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (1 PERCENT)",
            ],
        );
        let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
        assert!(final_line.contains("reason=exhausted"), "{final_line}");
        server.shutdown();
    }

    #[test]
    fn disconnect_before_first_snap_releases_the_slot() {
        use std::time::Duration;

        // snapshot_every = 0 never writes SNAP lines, so only the socket
        // probe can notice the client is gone: this is the regression
        // test for the throttled-tick slot leak.
        let server = Server::bind(
            catalog(800_000),
            &ServerConfig {
                snapshot_every: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        {
            let conn = TcpStream::connect(server.local_addr()).unwrap();
            let mut tx = conn.try_clone().unwrap();
            writeln!(
                tx,
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)"
            )
            .unwrap();
            tx.flush().unwrap();
            // Give the server a moment to start the query, then vanish
            // without ever reading a byte.
            thread::sleep(Duration::from_millis(30));
        }
        let mut tries = 0;
        while server.engine().active_queries() != 0 {
            tries += 1;
            assert!(tries < 500, "silent query leaked its admission slot");
            thread::sleep(Duration::from_millis(10));
        }
        let metrics = server.engine().metrics();
        assert_eq!(metrics.counter("sa_queries_started_total"), Some(1));
        assert_eq!(
            metrics.counter("sa_queries_finished_total{reason=\"cancelled\"}"),
            Some(1),
            "the probed disconnect must cancel, not run to completion"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_verb_drains_the_whole_server() {
        let server = start(4000);
        let addr = server.local_addr();
        let ctl = server.controller();
        assert!(!ctl.is_draining());
        let lines = exchange(addr, &["SHUTDOWN"]);
        assert_eq!(lines[0], "OK");
        assert!(ctl.is_draining());
        // join() must return now that the drain is underway.
        server.join();
        // New connections are either refused outright or (if the kernel
        // backlog takes them) never served: a PING gets no reply.
        let unserved = match TcpStream::connect(addr) {
            Err(_) => true,
            Ok(c) => {
                let mut tx = c.try_clone().unwrap();
                let _ = writeln!(tx, "PING");
                let _ = tx.flush();
                let _ = c.set_read_timeout(Some(std::time::Duration::from_millis(500)));
                let mut line = String::new();
                !matches!(BufReader::new(c).read_line(&mut line), Ok(n) if n > 0)
            }
        };
        assert!(unserved, "a drained server must not serve new connections");
    }

    #[test]
    fn mid_query_drain_still_answers_final_then_done() {
        use std::time::Duration;

        // Short drain deadline: the in-flight query is hard-cancelled and
        // must still produce a FINAL line and DONE before the close.
        let server = Server::bind(
            catalog(800_000),
            &ServerConfig {
                snapshot_every: 1,
                drain_deadline: Duration::from_millis(50),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let conn = TcpStream::connect(addr).unwrap();
        let mut tx = conn.try_clone().unwrap();
        writeln!(
            tx,
            "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)"
        )
        .unwrap();
        tx.flush().unwrap();
        let mut reader = BufReader::new(conn);
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.starts_with("SNAP "), "{first}");
        let ctl = server.controller();
        let drainer = thread::spawn(move || server.shutdown());
        let lines: Vec<String> = reader.lines().map_while(|l| l.ok()).collect();
        drainer.join().unwrap();
        assert!(ctl.is_draining());
        let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
        assert!(
            final_line.contains("reason=cancelled")
                || final_line.contains("reason=exhausted")
                || final_line.contains("reason=ci-converged"),
            "{final_line}"
        );
        assert!(lines.iter().any(|l| l == "DONE"), "{lines:?}");
    }

    #[test]
    fn scalar_query_streams_snaps_then_final_then_done() {
        let server = start(4000);
        let lines = exchange(
            server.local_addr(),
            &[
                "SEED 7",
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)",
            ],
        );
        assert_eq!(lines[0], "OK");
        assert!(lines[1].starts_with("SNAP rows="), "{}", lines[1]);
        let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
        assert!(final_line.contains("reason=exhausted"), "{final_line}");
        assert_eq!(lines.last().unwrap(), "DONE");
        server.shutdown();
    }

    #[test]
    fn grouped_query_reports_groups() {
        let server = start(4000);
        let lines = exchange(
            server.local_addr(),
            &["QUERY SELECT k, SUM(v) AS s FROM t TABLESAMPLE (60 PERCENT) GROUP BY k"],
        );
        assert_eq!(
            lines.iter().filter(|l| l.starts_with("GROUP key=")).count(),
            10
        );
        let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
        assert!(final_line.contains("groups=10"), "{final_line}");
        assert_eq!(lines.last().unwrap(), "DONE");
        server.shutdown();
    }

    #[test]
    fn planning_errors_come_back_as_err_done() {
        let server = start(100);
        let lines = exchange(server.local_addr(), &["QUERY SELECT FROM nowhere"]);
        assert!(lines[0].starts_with("ERR "), "{}", lines[0]);
        assert_eq!(lines[1], "DONE");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_converge() {
        let server = start(60_000);
        let addr = server.local_addr();
        let sql = "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT) \
                   WITHIN 5 PERCENT CONFIDENCE 95";
        let results: Vec<Vec<String>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| scope.spawn(move || exchange(addr, &[&format!("SEED {i}"), sql])))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for lines in &results {
            let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
            assert!(final_line.contains("reason=ci-converged"), "{final_line}");
            assert_eq!(lines.last().unwrap(), "DONE");
        }
        server.shutdown();
    }

    #[test]
    fn admission_bound_sheds_load_with_err_busy() {
        let server = Server::bind(
            catalog(100),
            &ServerConfig {
                max_concurrent: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let lines = exchange(
            server.local_addr(),
            &["QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)"],
        );
        assert!(lines[0].starts_with("ERR engine busy"), "{}", lines[0]);
        assert_eq!(lines[1], "DONE");
        server.shutdown();
    }
}
