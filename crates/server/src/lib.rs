//! # sa-server — a concurrent online-aggregation query service
//!
//! A std-only TCP front-end over [`sa_online::Engine`]: clients speak the
//! one-line-per-message protocol in [`protocol`], each connection gets its
//! own engine [`sa_online::Session`] (stable per-session seed), a fixed
//! thread pool bounds the connections served at once, and the engine's
//! admission control ([`sa_online::EngineBuilder::max_concurrent`]) sheds
//! query load past the configured bound with `ERR engine busy …` instead
//! of queueing.
//!
//! The serving win is **shared scans**: the engine is built with
//! `shared_scans(true)`, so N concurrent sequential queries over the same
//! table attach to one circular columnar scan and cost ~1 table scan
//! between them — the mid-scan attach is an origin shift the estimator is
//! invariant to (see `docs/estimation-notes.md`).
//!
//! ```no_run
//! use sa_server::{Server, ServerConfig};
//! use sa_storage::Catalog;
//!
//! let catalog = Catalog::new(); // register tables first
//! let server = Server::bind(catalog, &ServerConfig::default()).unwrap();
//! eprintln!("listening on {}", server.local_addr());
//! server.join(); // serve until shutdown() is called from another thread
//! ```

#![warn(missing_docs)]

pub mod protocol;

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use sa_online::{Engine, QueryOptions, Session};
use sa_storage::Catalog;

use protocol::{err_line, final_lines, parse, snap_line, Request};

/// Serving policy for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port — read it back
    /// with [`Server::local_addr`]).
    pub addr: String,
    /// Connection-handling threads: at most this many clients are served
    /// simultaneously; further connections wait in the accept queue.
    pub workers: usize,
    /// Engine admission bound: queries past this many in flight are
    /// rejected with `ERR engine busy …`.
    pub max_concurrent: usize,
    /// Default [`QueryOptions`] (seed, chunk size, …) each query starts
    /// from; the per-connection `SEED` request overrides the seed.
    pub defaults: QueryOptions,
    /// Emit every k-th `SNAP` progress line (the `FINAL` line is always
    /// sent). 0 silences progress entirely.
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            max_concurrent: 64,
            defaults: QueryOptions::default(),
            snapshot_every: 8,
        }
    }
}

/// A running query service: an accept loop plus a fixed worker pool, all
/// plain std threads. Dropping the handle does **not** stop the server —
/// call [`Server::shutdown`] (or let the process exit).
pub struct Server {
    engine: Engine,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr`, build the engine (shared scans on, admission
    /// bound from the config) over `catalog`, and start serving.
    pub fn bind(catalog: Catalog, config: &ServerConfig) -> std::io::Result<Server> {
        let engine = Engine::builder(catalog)
            .defaults(config.defaults.clone())
            .max_concurrent(config.max_concurrent)
            .shared_scans(true)
            .build();
        Server::serve(engine, config)
    }

    /// Like [`Server::bind`] but over a fully configured engine (tests use
    /// this to control shared-scan windows or disable sharing).
    pub fn serve(engine: Engine, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let snapshot_every = config.snapshot_every;

        // Fixed worker pool: the accept loop feeds connections through a
        // rendezvous channel, so at most `workers` clients are in service
        // and the rest queue in the listener backlog.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(0);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let engine = engine.clone();
                thread::Builder::new()
                    .name(format!("sa-serve-{i}"))
                    .spawn(move || loop {
                        let conn = match rx.lock().unwrap().recv() {
                            Ok(conn) => conn,
                            Err(_) => return, // accept loop gone
                        };
                        let session = engine.session();
                        let _ = handle_connection(conn, session, snapshot_every);
                    })
                    .expect("spawn server worker")
            })
            .collect();

        let accept = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("sa-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            return; // drops tx → workers drain and exit
                        }
                        if let Ok(conn) = conn {
                            if tx.send(conn).is_err() {
                                return;
                            }
                        }
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(Server {
            engine,
            local_addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the service (tests inspect scan stats here).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Stop accepting, wake the accept loop, and join every thread.
    /// Connections already in service finish their current exchange.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Block until the server stops (never, unless another thread calls
    /// [`Server::shutdown`] — use from `main` to serve forever).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Serve one client connection until `QUIT`, EOF, or an I/O error.
fn handle_connection(
    conn: TcpStream,
    session: Session,
    snapshot_every: u64,
) -> std::io::Result<()> {
    let reader = BufReader::new(conn.try_clone()?);
    let mut out = BufWriter::new(conn);
    let mut seed: Option<u64> = None;
    for line in reader.lines() {
        match parse(&line?) {
            Ok(Request::Ping) => writeln!(out, "OK")?,
            Ok(Request::Seed(s)) => {
                seed = Some(s);
                writeln!(out, "OK")?;
            }
            Ok(Request::Quit) => break,
            Ok(Request::Query(sql)) => {
                run_query(&mut out, &session, &sql, seed, snapshot_every)?;
                writeln!(out, "DONE")?;
            }
            Err(msg) => writeln!(out, "{}", err_line(&msg))?,
        }
        out.flush()?;
    }
    Ok(())
}

/// Run one query, streaming throttled `SNAP` lines and the `FINAL` readout.
fn run_query(
    out: &mut impl Write,
    session: &Session,
    sql: &str,
    seed: Option<u64>,
    snapshot_every: u64,
) -> std::io::Result<()> {
    let mut builder = session.query(sql);
    if let Some(s) = seed {
        builder = builder.seed(s);
    }
    // Progress lines go straight to the socket as the query runs; any I/O
    // error is remembered and re-raised after the run.
    let mut io_err = None;
    let result = builder.run_with(|snap| {
        if io_err.is_some() || snapshot_every == 0 || snap.chunk() % snapshot_every != 0 {
            return;
        }
        if let Err(e) = writeln!(out, "{}", snap_line(&snap)).and_then(|_| out.flush()) {
            io_err = Some(e);
        }
    });
    if let Some(e) = io_err {
        return Err(e);
    }
    match result {
        Ok(r) => {
            for line in final_lines(&r) {
                writeln!(out, "{line}")?;
            }
        }
        Err(e) => writeln!(out, "{}", err_line(&e.to_string()))?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog(rows: i64) -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            b.push_row(&[Value::Int(i % 10), Value::Float(1.0 + (i % 7) as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn start(rows: i64) -> Server {
        Server::bind(
            catalog(rows),
            &ServerConfig {
                snapshot_every: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    }

    fn exchange(addr: SocketAddr, requests: &[&str]) -> Vec<String> {
        let conn = TcpStream::connect(addr).unwrap();
        let mut tx = conn.try_clone().unwrap();
        for r in requests {
            writeln!(tx, "{r}").unwrap();
        }
        writeln!(tx, "QUIT").unwrap();
        tx.flush().unwrap();
        BufReader::new(conn).lines().map(|l| l.unwrap()).collect()
    }

    #[test]
    fn ping_seed_and_bad_requests() {
        let server = start(100);
        let lines = exchange(server.local_addr(), &["PING", "SEED 9", "EXPLAIN"]);
        assert_eq!(lines[0], "OK");
        assert_eq!(lines[1], "OK");
        assert!(lines[2].starts_with("ERR unknown request"), "{}", lines[2]);
        server.shutdown();
    }

    #[test]
    fn scalar_query_streams_snaps_then_final_then_done() {
        let server = start(4000);
        let lines = exchange(
            server.local_addr(),
            &[
                "SEED 7",
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)",
            ],
        );
        assert_eq!(lines[0], "OK");
        assert!(lines[1].starts_with("SNAP rows="), "{}", lines[1]);
        let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
        assert!(final_line.contains("reason=exhausted"), "{final_line}");
        assert_eq!(lines.last().unwrap(), "DONE");
        server.shutdown();
    }

    #[test]
    fn grouped_query_reports_groups() {
        let server = start(4000);
        let lines = exchange(
            server.local_addr(),
            &["QUERY SELECT k, SUM(v) AS s FROM t TABLESAMPLE (60 PERCENT) GROUP BY k"],
        );
        assert_eq!(
            lines.iter().filter(|l| l.starts_with("GROUP key=")).count(),
            10
        );
        let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
        assert!(final_line.contains("groups=10"), "{final_line}");
        assert_eq!(lines.last().unwrap(), "DONE");
        server.shutdown();
    }

    #[test]
    fn planning_errors_come_back_as_err_done() {
        let server = start(100);
        let lines = exchange(server.local_addr(), &["QUERY SELECT FROM nowhere"]);
        assert!(lines[0].starts_with("ERR "), "{}", lines[0]);
        assert_eq!(lines[1], "DONE");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_converge() {
        let server = start(60_000);
        let addr = server.local_addr();
        let sql = "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT) \
                   WITHIN 5 PERCENT CONFIDENCE 95";
        let results: Vec<Vec<String>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| scope.spawn(move || exchange(addr, &[&format!("SEED {i}"), sql])))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for lines in &results {
            let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
            assert!(final_line.contains("reason=ci-converged"), "{final_line}");
            assert_eq!(lines.last().unwrap(), "DONE");
        }
        server.shutdown();
    }

    #[test]
    fn admission_bound_sheds_load_with_err_busy() {
        let server = Server::bind(
            catalog(100),
            &ServerConfig {
                max_concurrent: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let lines = exchange(
            server.local_addr(),
            &["QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)"],
        );
        assert!(lines[0].starts_with("ERR engine busy"), "{}", lines[0]);
        assert_eq!(lines[1], "DONE");
        server.shutdown();
    }
}
