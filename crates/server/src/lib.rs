//! # sa-server — a concurrent online-aggregation query service
//!
//! A std-only TCP front-end over [`sa_online::Engine`]: clients speak the
//! one-line-per-message protocol in [`protocol`], each connection gets its
//! own engine [`sa_online::Session`] (stable per-session seed), a fixed
//! thread pool bounds the connections served at once, and the engine's
//! admission control ([`sa_online::EngineBuilder::max_concurrent`]) sheds
//! query load past the configured bound with `ERR engine busy …` instead
//! of queueing.
//!
//! The serving win is **shared scans**: the engine is built with
//! `shared_scans(true)`, so N concurrent sequential queries over the same
//! table attach to one circular columnar scan and cost ~1 table scan
//! between them — the mid-scan attach is an origin shift the estimator is
//! invariant to (see `docs/estimation-notes.md`).
//!
//! ```no_run
//! use sa_server::{Server, ServerConfig};
//! use sa_storage::Catalog;
//!
//! let catalog = Catalog::new(); // register tables first
//! let server = Server::bind(catalog, &ServerConfig::default()).unwrap();
//! eprintln!("listening on {}", server.local_addr());
//! server.join(); // serve until shutdown() is called from another thread
//! ```

#![warn(missing_docs)]

pub mod protocol;

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use sa_obs::Counter;
use sa_online::{Engine, QueryOptions, Session};
use sa_storage::Catalog;

use protocol::{err_line, final_lines, parse, snap_line, Request};

/// Server-side counters, registered on the engine's metrics registry so
/// they ride along in `STATS` dumps and [`Engine::metrics`] snapshots.
#[derive(Clone, Default)]
struct ServerObs {
    connections: Counter,
    bad_requests: Counter,
    disconnects: Counter,
}

impl ServerObs {
    fn new(engine: &Engine) -> ServerObs {
        let registry = engine.registry();
        ServerObs {
            connections: registry.counter("sa_server_connections_total"),
            bad_requests: registry.counter("sa_server_bad_requests_total"),
            disconnects: registry.counter("sa_server_disconnects_total"),
        }
    }
}

/// Serving policy for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port — read it back
    /// with [`Server::local_addr`]).
    pub addr: String,
    /// Connection-handling threads: at most this many clients are served
    /// simultaneously; further connections wait in the accept queue.
    pub workers: usize,
    /// Engine admission bound: queries past this many in flight are
    /// rejected with `ERR engine busy …`.
    pub max_concurrent: usize,
    /// Default [`QueryOptions`] (seed, chunk size, …) each query starts
    /// from; the per-connection `SEED` request overrides the seed.
    pub defaults: QueryOptions,
    /// Emit every k-th `SNAP` progress line (the `FINAL` line is always
    /// sent). 0 silences progress entirely.
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            max_concurrent: 64,
            defaults: QueryOptions::default(),
            snapshot_every: 8,
        }
    }
}

/// A running query service: an accept loop plus a fixed worker pool, all
/// plain std threads. Dropping the handle does **not** stop the server —
/// call [`Server::shutdown`] (or let the process exit).
pub struct Server {
    engine: Engine,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr`, build the engine (shared scans and metrics on,
    /// admission bound from the config) over `catalog`, and start serving.
    pub fn bind(catalog: Catalog, config: &ServerConfig) -> std::io::Result<Server> {
        let engine = Engine::builder(catalog)
            .defaults(config.defaults.clone())
            .max_concurrent(config.max_concurrent)
            .shared_scans(true)
            .metrics(true)
            .build();
        Server::serve(engine, config)
    }

    /// Like [`Server::bind`] but over a fully configured engine (tests use
    /// this to control shared-scan windows or disable sharing).
    pub fn serve(engine: Engine, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let snapshot_every = config.snapshot_every;

        // Fixed worker pool: the accept loop feeds connections through a
        // rendezvous channel, so at most `workers` clients are in service
        // and the rest queue in the listener backlog.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(0);
        let rx = Arc::new(Mutex::new(rx));
        let obs = ServerObs::new(&engine);
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let engine = engine.clone();
                let obs = obs.clone();
                thread::Builder::new()
                    .name(format!("sa-serve-{i}"))
                    .spawn(move || loop {
                        let conn = match rx.lock().unwrap().recv() {
                            Ok(conn) => conn,
                            Err(_) => return, // accept loop gone
                        };
                        obs.connections.inc();
                        let session = engine.session();
                        if handle_connection(conn, session, snapshot_every, &obs).is_err() {
                            // The client vanished mid-exchange (or the socket
                            // died); the query path has already cancelled and
                            // reaped any in-flight work.
                            obs.disconnects.inc();
                        }
                    })
                    .expect("spawn server worker")
            })
            .collect();

        let accept = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("sa-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            return; // drops tx → workers drain and exit
                        }
                        if let Ok(conn) = conn {
                            if tx.send(conn).is_err() {
                                return;
                            }
                        }
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(Server {
            engine,
            local_addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the service (tests inspect scan stats here).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Stop accepting, wake the accept loop, and join every thread.
    /// Connections already in service finish their current exchange.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Block until the server stops (never, unless another thread calls
    /// [`Server::shutdown`] — use from `main` to serve forever).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Serve one client connection until `QUIT`, EOF, or an I/O error.
fn handle_connection(
    conn: TcpStream,
    session: Session,
    snapshot_every: u64,
    obs: &ServerObs,
) -> std::io::Result<()> {
    let reader = BufReader::new(conn.try_clone()?);
    let mut out = BufWriter::new(conn);
    let mut seed: Option<u64> = None;
    let mut shuffle = false;
    for line in reader.lines() {
        match parse(&line?) {
            Ok(Request::Ping) => writeln!(out, "OK")?,
            Ok(Request::Seed(s)) => {
                seed = Some(s);
                writeln!(out, "OK")?;
            }
            Ok(Request::Shuffle(on)) => {
                shuffle = on;
                writeln!(out, "OK")?;
            }
            Ok(Request::Quit) => break,
            Ok(Request::Stats) => {
                out.write_all(session.engine().render_prometheus().as_bytes())?;
                writeln!(out, "DONE")?;
            }
            Ok(Request::Query(sql)) => {
                run_query(&mut out, &session, &sql, seed, shuffle, snapshot_every)?;
                writeln!(out, "DONE")?;
            }
            Err(msg) => {
                obs.bad_requests.inc();
                writeln!(out, "{}", err_line(&msg))?;
            }
        }
        out.flush()?;
    }
    Ok(())
}

/// Run one query, streaming throttled `SNAP` lines and the `FINAL` readout.
///
/// Runs through an online [`sa_online::QueryHandle`] so a client that
/// disconnects mid-stream cancels the query instead of letting it run to
/// completion holding an admission slot and (under shared scans) a hub
/// cursor. The first failed `SNAP` write cancels; `wait()` then reaps the
/// query thread — dropping its admission guard and detaching its cursor —
/// before the I/O error propagates to the connection loop.
fn run_query(
    out: &mut impl Write,
    session: &Session,
    sql: &str,
    seed: Option<u64>,
    shuffle: bool,
    snapshot_every: u64,
) -> std::io::Result<()> {
    let mut builder = session.query(sql).shuffle_scan(shuffle);
    if let Some(s) = seed {
        builder = builder.seed(s);
    }
    let handle = match builder.online() {
        Ok(handle) => handle,
        Err(e) => {
            writeln!(out, "{}", err_line(&e.to_string()))?;
            return Ok(());
        }
    };
    let mut io_err = None;
    for snap in handle.snapshots() {
        if snapshot_every == 0 || snap.chunk() % snapshot_every != 0 {
            continue;
        }
        if let Err(e) = writeln!(out, "{}", snap_line(&snap)).and_then(|_| out.flush()) {
            handle.cancel();
            io_err = Some(e);
            break;
        }
    }
    // Always reap the query thread, even on the disconnect path: this is
    // what releases the admission slot and the shared-scan cursor.
    let result = handle.wait();
    if let Some(e) = io_err {
        return Err(e);
    }
    match result {
        Ok(r) => {
            for line in final_lines(&r) {
                writeln!(out, "{line}")?;
            }
        }
        Err(e) => writeln!(out, "{}", err_line(&e.to_string()))?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog(rows: i64) -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            b.push_row(&[Value::Int(i % 10), Value::Float(1.0 + (i % 7) as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn start(rows: i64) -> Server {
        Server::bind(
            catalog(rows),
            &ServerConfig {
                snapshot_every: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    }

    fn exchange(addr: SocketAddr, requests: &[&str]) -> Vec<String> {
        let conn = TcpStream::connect(addr).unwrap();
        let mut tx = conn.try_clone().unwrap();
        for r in requests {
            writeln!(tx, "{r}").unwrap();
        }
        writeln!(tx, "QUIT").unwrap();
        tx.flush().unwrap();
        BufReader::new(conn).lines().map(|l| l.unwrap()).collect()
    }

    #[test]
    fn ping_seed_and_bad_requests() {
        let server = start(100);
        let lines = exchange(server.local_addr(), &["PING", "SEED 9", "EXPLAIN"]);
        assert_eq!(lines[0], "OK");
        assert_eq!(lines[1], "OK");
        assert!(lines[2].starts_with("ERR unknown request"), "{}", lines[2]);
        let metrics = server.engine().metrics();
        assert_eq!(metrics.counter("sa_server_bad_requests_total"), Some(1));
        assert_eq!(metrics.counter("sa_server_connections_total"), Some(1));
        server.shutdown();
    }

    #[test]
    fn malformed_query_lines_hold_no_admission_slot() {
        let server = start(100);
        let lines = exchange(server.local_addr(), &["QUERY", "QUERY   ", "PING"]);
        assert!(lines[0].starts_with("ERR QUERY needs SQL"), "{}", lines[0]);
        assert!(lines[1].starts_with("ERR QUERY needs SQL"), "{}", lines[1]);
        assert_eq!(lines[2], "OK");
        assert_eq!(server.engine().active_queries(), 0);
        let metrics = server.engine().metrics();
        assert_eq!(metrics.counter("sa_server_bad_requests_total"), Some(2));
        assert_eq!(metrics.counter("sa_queries_started_total"), Some(0));
        server.shutdown();
    }

    #[test]
    fn stats_reports_prometheus_metrics() {
        let server = start(4000);
        let lines = exchange(
            server.local_addr(),
            &[
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)",
                "STATS",
            ],
        );
        assert_eq!(lines.last().unwrap(), "DONE");
        let dump = lines.join("\n");
        assert!(
            dump.contains("# TYPE sa_queries_started_total counter"),
            "{dump}"
        );
        assert!(dump.contains("sa_queries_started_total 1"), "{dump}");
        assert!(
            dump.contains("sa_queries_finished_total{reason=\"exhausted\"} 1"),
            "{dump}"
        );
        assert!(
            dump.contains("sa_query_duration_us{quantile=\"0.99\"}"),
            "{dump}"
        );
        assert!(
            dump.contains("sa_shared_scan_rows_gathered_total"),
            "{dump}"
        );
        assert!(dump.contains("sa_server_connections_total 1"), "{dump}");
        server.shutdown();
    }

    #[test]
    fn aborted_clients_release_slots_and_cursors() {
        use std::time::Duration;

        let server = start(400_000);
        let addr = server.local_addr();
        // Hammer: start an exhaustive query, read a couple of progress
        // lines to make sure it is in flight, then slam the socket shut.
        for _ in 0..6 {
            let conn = TcpStream::connect(addr).unwrap();
            let mut tx = conn.try_clone().unwrap();
            writeln!(
                tx,
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)"
            )
            .unwrap();
            tx.flush().unwrap();
            let mut reader = BufReader::new(conn);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("SNAP "), "{line}");
            // Dropping both halves aborts the connection mid-stream; the
            // server's next SNAP write fails and cancels the query.
        }
        // The disconnect path must give back both the admission slot and
        // the shared-scan cursor — poll briefly while the server reaps.
        let mut tries = 0;
        loop {
            let attached = server.engine().scan_stats("t").map_or(0, |s| s.attached);
            if server.engine().active_queries() == 0 && attached == 0 {
                break;
            }
            tries += 1;
            assert!(tries < 500, "query slots or cursors never released");
            thread::sleep(Duration::from_millis(10));
        }
        let metrics = server.engine().metrics();
        assert_eq!(metrics.counter("sa_queries_started_total"), Some(6));
        let finished: u64 = [
            "ci-converged",
            "row-budget",
            "time-budget",
            "exhausted",
            "cancelled",
        ]
        .iter()
        .filter_map(|r| metrics.counter(&format!("sa_queries_finished_total{{reason=\"{r}\"}}")))
        .sum();
        assert_eq!(finished, 6, "every aborted query must still finish");
        assert!(
            metrics.counter("sa_server_disconnects_total").unwrap_or(0) >= 1,
            "mid-stream aborts should register as disconnects"
        );
        server.shutdown();
    }

    #[test]
    fn scalar_query_streams_snaps_then_final_then_done() {
        let server = start(4000);
        let lines = exchange(
            server.local_addr(),
            &[
                "SEED 7",
                "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)",
            ],
        );
        assert_eq!(lines[0], "OK");
        assert!(lines[1].starts_with("SNAP rows="), "{}", lines[1]);
        let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
        assert!(final_line.contains("reason=exhausted"), "{final_line}");
        assert_eq!(lines.last().unwrap(), "DONE");
        server.shutdown();
    }

    #[test]
    fn grouped_query_reports_groups() {
        let server = start(4000);
        let lines = exchange(
            server.local_addr(),
            &["QUERY SELECT k, SUM(v) AS s FROM t TABLESAMPLE (60 PERCENT) GROUP BY k"],
        );
        assert_eq!(
            lines.iter().filter(|l| l.starts_with("GROUP key=")).count(),
            10
        );
        let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
        assert!(final_line.contains("groups=10"), "{final_line}");
        assert_eq!(lines.last().unwrap(), "DONE");
        server.shutdown();
    }

    #[test]
    fn planning_errors_come_back_as_err_done() {
        let server = start(100);
        let lines = exchange(server.local_addr(), &["QUERY SELECT FROM nowhere"]);
        assert!(lines[0].starts_with("ERR "), "{}", lines[0]);
        assert_eq!(lines[1], "DONE");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_converge() {
        let server = start(60_000);
        let addr = server.local_addr();
        let sql = "QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT) \
                   WITHIN 5 PERCENT CONFIDENCE 95";
        let results: Vec<Vec<String>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| scope.spawn(move || exchange(addr, &[&format!("SEED {i}"), sql])))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for lines in &results {
            let final_line = lines.iter().find(|l| l.starts_with("FINAL ")).unwrap();
            assert!(final_line.contains("reason=ci-converged"), "{final_line}");
            assert_eq!(lines.last().unwrap(), "DONE");
        }
        server.shutdown();
    }

    #[test]
    fn admission_bound_sheds_load_with_err_busy() {
        let server = Server::bind(
            catalog(100),
            &ServerConfig {
                max_concurrent: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let lines = exchange(
            server.local_addr(),
            &["QUERY SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)"],
        );
        assert!(lines[0].starts_with("ERR engine busy"), "{}", lines[0]);
        assert_eq!(lines[1], "DONE");
        server.shutdown();
    }
}
