//! Error type for execution and approximate-query driving.

use std::fmt;

/// Errors from executing plans or producing approximate answers.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Propagated plan error (validation, rewriting).
    Plan(sa_plan::PlanError),
    /// Propagated storage error.
    Storage(sa_storage::StorageError),
    /// Propagated expression error.
    Expr(sa_expr::ExprError),
    /// Propagated sampling error.
    Sampling(sa_sampling::SamplingError),
    /// Propagated estimator error.
    Core(sa_core::CoreError),
    /// A plan shape the executor cannot run (should be caught by
    /// validation; kept as defense in depth).
    Unsupported(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Plan(e) => write!(f, "{e}"),
            ExecError::Storage(e) => write!(f, "{e}"),
            ExecError::Expr(e) => write!(f, "{e}"),
            ExecError::Sampling(e) => write!(f, "{e}"),
            ExecError::Core(e) => write!(f, "{e}"),
            ExecError::Unsupported(msg) => write!(f, "unsupported plan: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Plan(e) => Some(e),
            ExecError::Storage(e) => Some(e),
            ExecError::Expr(e) => Some(e),
            ExecError::Sampling(e) => Some(e),
            ExecError::Core(e) => Some(e),
            ExecError::Unsupported(_) => None,
        }
    }
}

impl From<sa_plan::PlanError> for ExecError {
    fn from(e: sa_plan::PlanError) -> Self {
        ExecError::Plan(e)
    }
}
impl From<sa_storage::StorageError> for ExecError {
    fn from(e: sa_storage::StorageError) -> Self {
        ExecError::Storage(e)
    }
}
impl From<sa_expr::ExprError> for ExecError {
    fn from(e: sa_expr::ExprError) -> Self {
        ExecError::Expr(e)
    }
}
impl From<sa_sampling::SamplingError> for ExecError {
    fn from(e: sa_sampling::SamplingError) -> Self {
        ExecError::Sampling(e)
    }
}
impl From<sa_core::CoreError> for ExecError {
    fn from(e: sa_core::CoreError) -> Self {
        ExecError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_chain() {
        let e: ExecError = sa_storage::StorageError::UnknownTable { name: "t".into() }.into();
        assert!(e.to_string().contains('t'));
        assert!(std::error::Error::source(&e).is_some());
    }
}
