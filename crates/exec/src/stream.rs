//! Chunked, pull-based plan execution — the feed of the online driver.
//!
//! [`crate::execute`] materializes every operator's full output, which is
//! fine for one-shot estimation but useless for *online aggregation*: there
//! the consumer wants the first tuples of the sampled result immediately,
//! an estimate after every chunk, and the right to stop early. This module
//! provides exactly that: [`open_stream`] compiles a (non-aggregate) plan
//! into a small Volcano-style operator tree that yields result tuples a
//! chunk at a time — with full per-base-relation lineage, identical in
//! content to what the batch executor would produce.
//!
//! ## Columnar batches
//!
//! Operators exchange [`ColumnarChunk`]s — typed column vectors gathered
//! straight from `sa-storage` columns plus per-relation lineage columns —
//! and evaluate filters/projections through `sa-expr`'s *compiled*
//! expressions ([`sa_expr::compile()`]): type dispatch happens once at open,
//! per-chunk work is tight loops over `i64`/`f64`/`bool`/dictionary-code
//! slices, and no per-row `Vec<Value>` is allocated on the hot path. A
//! `Filter` directly under a `Project` fuses into one operator that gathers
//! only the columns the projection reads. Joins key their hash tables by a
//! 64-bit fingerprint of the equi-key cells (with a stored-key equality
//! check on probe, so a fingerprint collision can never produce a wrong
//! join). [`ChunkStream::next_batch`] exposes the columnar chunks;
//! [`ChunkStream::next_chunk`] is a thin adapter that materializes
//! [`Row`]s for row-at-a-time consumers.
//!
//! Streaming vs blocking operators:
//!
//! * scans, Bernoulli/`SYSTEM` samples, filters and projections stream;
//! * a join materializes its **build** (right) side at open and streams the
//!   probe side through it — the classic streaming hash join;
//! * fixed-size samplers (`WOR`, with-replacement) are blocking by nature
//!   (they must see their whole input's cardinality), so their subtree is
//!   materialized at open and drained in chunks.
//!
//! Randomness: every stochastic operator draws its own RNG seed from a
//! master RNG seeded with [`crate::ExecOptions::seed`] during `open`, in
//! plan traversal order — and per-row samplers draw **one coin per input
//! row in row order** — so a given `(plan, seed)` pair always streams the
//! *same* sample realization, chunk-size independent and identical to what
//! the row-at-a-time stream realized before batching. (The realization
//! differs from [`crate::execute`]'s for the same seed: the batch executor
//! interleaves all operators' draws on one RNG stream, which a pull-based
//! pipeline cannot reproduce.)

use std::collections::HashSet;
use std::hash::Hasher;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sa_core::hash::{FxHashMap, FxHasher};
use sa_expr::{bind, compile, CompiledExpr};
use sa_plan::{LogicalPlan, ScanColumnMap};
use sa_sampling::SamplingMethod;
use sa_storage::{Catalog, ColumnVec, ColumnarBatch, Schema, SchemaRef, Table};

use crate::columnar::ColumnarChunk;
use crate::error::ExecError;
use crate::exec::{
    base_table, exec_node, scan_schema, split_join_condition, ExecOptions, Row, ScanObs,
};
use crate::shared::{SharedScanCursor, SharedTableScan};
use crate::Result;

/// A chunked executor over a (non-aggregate) plan. Obtained from
/// [`open_stream`]; columnar chunks come out of [`ChunkStream::next_batch`]
/// (and materialized rows out of the [`ChunkStream::next_chunk`] adapter).
#[derive(Debug)]
pub struct ChunkStream {
    schema: SchemaRef,
    relations: Vec<String>,
    root: Node,
    rows_out: u64,
}

impl ChunkStream {
    /// Output schema of the streamed rows.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Base-relation aliases aligned with each row's lineage.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// Total rows yielded so far.
    pub fn rows_yielded(&self) -> u64 {
        self.rows_out
    }

    /// Pull the next columnar chunk of roughly `hint` rows (operators may
    /// over- or under-fill; a join chunk, e.g., carries every match of its
    /// probe rows). An **empty chunk means the stream is exhausted** —
    /// operators keep pulling internally until they can either emit a row
    /// or prove there are none left.
    pub fn next_batch(&mut self, hint: usize) -> Result<ColumnarChunk> {
        let hint = hint.max(1);
        let chunk = self.root.next_batch(hint)?;
        self.rows_out += chunk.rows() as u64;
        Ok(chunk)
    }

    /// Row-at-a-time adapter over [`ChunkStream::next_batch`]: the same
    /// tuples, materialized as [`Row`]s.
    pub fn next_chunk(&mut self, hint: usize) -> Result<Vec<Row>> {
        Ok(self.next_batch(hint)?.to_rows())
    }

    /// Per-relation **coverage** of the stream so far, aligned with
    /// [`ChunkStream::relations`]: `(consumed, available)` sampling units of
    /// each base relation whose tuples have had the chance to reach the
    /// output yet. A scan that has emitted its first `k` of `N` rows reports
    /// `(k, N)`; a fully materialized side (a join's build side, a drained
    /// blocking sampler) reports complete coverage; `SYSTEM`-sampled
    /// relations count blocks (their sampling/lineage unit).
    ///
    /// Online aggregation uses this to scale mid-stream estimates to the
    /// full population: under a random scan order, the consumed prefix is a
    /// WOR(`consumed`, `available`) sample of the relation, which compacts
    /// onto the plan's GUS (Proposition 8).
    pub fn progress(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.relations.len());
        self.root.progress(&mut out);
        debug_assert_eq!(out.len(), self.relations.len());
        out
    }

    /// The stream's coverage with its union structure intact (see
    /// [`ProgressTree`]). Where [`ChunkStream::progress`] flattens a union
    /// to the per-relation minimum across branches, this reports each
    /// branch's coverage separately plus whether the second branch has
    /// started — exactly what per-branch Prop-8 prefix composition needs.
    /// Union-free plans yield a single [`ProgressTree::Leaf`] equal to
    /// [`ChunkStream::progress`].
    pub fn progress_tree(&self) -> ProgressTree {
        self.root.progress_tree()
    }

    /// Drain the stream into one vector (testing / fallback convenience).
    pub fn collect_rows(mut self, hint: usize) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        loop {
            let chunk = self.next_chunk(hint)?;
            if chunk.is_empty() {
                return Ok(out);
            }
            out.extend(chunk);
        }
    }
}

/// Compile `plan` into a pull-based [`ChunkStream`]. The plan must not
/// contain an `Aggregate` node — the online driver aggregates incrementally
/// on top of the stream (pass the aggregate's *input* subtree).
pub fn open_stream(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> Result<ChunkStream> {
    let mut streams = open_stream_partitioned(plan, catalog, opts, 1)?;
    Ok(streams.pop().expect("one partition yields one stream"))
}

/// Compile `plan` into `parts` [`ChunkStream`]s over **disjoint,
/// deterministic slices** of the sampled data, for shard-parallel online
/// aggregation (`sa-online` drives one worker thread per stream).
///
/// Partitioning semantics, chosen so the union of the worker streams is a
/// single coherent sample of the plan and summed per-worker
/// [`ChunkStream::progress`] is a true per-relation `(consumed, available)`
/// coverage (the Prop-8 prefix compaction keeps working):
///
/// * the streaming **scan spine** is split into `parts` contiguous,
///   block-aligned row slices (block alignment keeps `SYSTEM` block
///   coverage and keep-decisions whole per worker);
/// * **Bernoulli** samplers on the spine draw from per-worker RNG streams
///   (seeds derived deterministically from the operator seed and the worker
///   index), so per-row keep decisions stay independent across rows;
/// * **`SYSTEM`** keep decisions, **blocking samplers** (WOR /
///   with-replacement, materialized once and sliced contiguously) and
///   **join build sides** (materialized once, shared behind `Arc`) are
///   drawn exactly once from the same master-RNG positions the sequential
///   [`open_stream`] uses — so those realizations are *identical* to the
///   single-stream run and every worker probes the same build side;
/// * `UnionSamples` cannot be partitioned (its lineage dedup is global
///   state across both branches) and is rejected for `parts > 1` — run
///   union plans at `parallelism = 1`, where they stream, report
///   per-branch coverage through [`ChunkStream::progress_tree`], and
///   support mid-stream population scaling.
///
/// With [`ExecOptions::shuffle_scan`] set, each worker visits its own
/// block slice in a seeded random order (slices stay disjoint, coverage
/// still sums); the permutation is fixed by `(seed, parts, worker)`.
///
/// `parts == 1` IS the sequential stream ([`open_stream`] delegates here),
/// so the two paths cannot drift: one full-range slice, base seeds used
/// directly, `UnionSamples` supported.
/// For `parts > 1`, a plan whose only stochastic operators are shared
/// (scans, `SYSTEM`, WOR, build sides) streams the *same* rows as the
/// sequential run, in the same order when worker outputs are concatenated
/// by index; only spine Bernoulli draws differ (each worker has its own
/// stream), and the union remains a valid Bernoulli sample.
pub fn open_stream_partitioned(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
    parts: usize,
) -> Result<Vec<ChunkStream>> {
    if parts == 0 {
        return Err(ExecError::Unsupported(
            "open_stream_partitioned needs at least one partition".into(),
        ));
    }
    plan.validate(catalog)?;
    let mut master = StdRng::seed_from_u64(opts.seed);
    let ctx = BuildCtx::new(plan, catalog, opts, parts, true);
    let (roots, schema, relations) = build_partitioned(plan, &ctx, &mut master)?;
    Ok(roots
        .into_iter()
        .map(|root| ChunkStream {
            schema: schema.clone(),
            relations: relations.clone(),
            root,
            rows_out: 0,
        })
        .collect())
}

/// The catalog table name of a plan that can ride a shared scan cursor, or
/// `None` when it cannot. Eligible shapes are a single-table streaming
/// chain — `Scan`, optionally through tuple-level `Bernoulli` sampling,
/// `Filter`s and `Project`s. Everything else (joins, unions, `SYSTEM` — a
/// block-coverage design whose keep decisions are tied to a scan-prefix
/// origin — and blocking samplers, which materialize privately anyway)
/// falls back to a private stream.
pub fn shared_scan_table(plan: &LogicalPlan) -> Option<&str> {
    shared_scan_ids(plan).map(|(table, _)| table)
}

/// Like [`shared_scan_table`] but also returns the scan's lineage alias
/// (the key needed-column analysis is indexed by).
pub fn shared_scan_ids(plan: &LogicalPlan) -> Option<(&str, &str)> {
    match plan {
        LogicalPlan::Scan { table, alias } => Some((table, alias)),
        LogicalPlan::Sample {
            method: SamplingMethod::Bernoulli { .. },
            input,
        } => shared_scan_ids(input),
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            shared_scan_ids(input)
        }
        _ => None,
    }
}

/// The table-schema column indices the shared-eligible scan in `plan` must
/// gather under `map`'s analysis (`None` = every column) — what a hub
/// manager needs to pick or create a covering [`SharedTableScan`] before
/// [`open_shared_stream`] attaches a cursor to it. Mirrors the pruning the
/// stream build performs, so the attach can never be rejected for missing
/// columns.
pub fn shared_scan_needs(
    plan: &LogicalPlan,
    catalog: &Catalog,
    map: &ScanColumnMap,
) -> Result<Option<Vec<usize>>> {
    let Some((table, alias)) = shared_scan_ids(plan) else {
        return Err(ExecError::Unsupported(
            "plan is not shared-scan eligible".into(),
        ));
    };
    let (_, schema) = scan_schema(catalog, table, alias)?;
    Ok(map.project_indices(alias, &schema))
}

/// Compile `plan` into a [`ChunkStream`] whose leaf is a cursor on `scan`
/// instead of a private table scan: the stream attaches at the hub's
/// current position and drains after one full revolution, sharing the
/// gather work with every other cursor (see [`SharedTableScan`]).
///
/// The plan must be shared-scan eligible ([`shared_scan_table`]) over the
/// hub's table. Everything else is identical to [`open_stream`] — the same
/// master-RNG seed derivation (a Bernoulli sampler's coins depend only on
/// `opts.seed` and the attach origin, one coin per consumed row in
/// consumption order), the same compiled expressions, the same fused
/// operators.
pub fn open_shared_stream(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
    scan: &Arc<SharedTableScan>,
) -> Result<ChunkStream> {
    let Some(table) = shared_scan_table(plan) else {
        return Err(ExecError::Unsupported(
            "plan is not shared-scan eligible: only a single-table chain of \
             Scan/Bernoulli/Filter/Project can ride a shared cursor"
                .into(),
        ));
    };
    if table != scan.table().name() {
        return Err(ExecError::Unsupported(format!(
            "shared scan hub is over table '{}' but the plan scans '{table}'",
            scan.table().name()
        )));
    }
    if opts.shuffle_scan {
        // A hub's circular gather order is shared by every cursor; one
        // query cannot permute it. Callers (sa-online) bypass the hub for
        // shuffled queries instead of hitting this.
        return Err(ExecError::Unsupported(
            "shuffle_scan cannot ride a shared scan cursor: the hub's gather order is \
             shared state — open a private stream for shuffled queries"
                .into(),
        ));
    }
    plan.validate(catalog)?;
    let mut master = StdRng::seed_from_u64(opts.seed);
    // Predicate fusion stays off on the shared path: the scan leaf is about
    // to be swapped for a hub cursor, which serves pre-gathered bus chunks —
    // a fused predicate would be lost in the swap. Projection pruning still
    // applies (the cursor selects its columns from the hub's set).
    let ctx = BuildCtx::new(plan, catalog, opts, 1, false);
    let (mut roots, schema, relations) = build_partitioned(plan, &ctx, &mut master)?;
    let mut root = roots.pop().expect("one partition yields one stream");
    let swapped = swap_in_shared_cursor(&mut root, scan)?;
    debug_assert!(swapped, "eligible plan must bottom out in a scan");
    Ok(ChunkStream {
        schema,
        relations,
        root,
        rows_out: 0,
    })
}

/// Replace the scan leaf of an eligible operator tree with a cursor
/// attached to `scan`; returns whether a leaf was swapped. The cursor
/// selects the leaf's (possibly pruned) column set out of the hub's bus
/// chunks, so the stream's schema is unchanged by the swap; a hub that
/// does not gather every needed column is rejected.
fn swap_in_shared_cursor(node: &mut Node, scan: &Arc<SharedTableScan>) -> Result<bool> {
    match node {
        Node::Scan { gather, .. } => {
            debug_assert!(
                gather.predicate.is_none(),
                "shared builds never fuse predicates into the scan leaf"
            );
            let cursor = scan.attach_columns(gather.cols.as_ref().map(|c| c.as_slice()))?;
            *node = Node::Shared { cursor };
            Ok(true)
        }
        Node::Bernoulli { input, .. }
        | Node::Filter { input, .. }
        | Node::Project { input, .. }
        | Node::FilterProject { input, .. } => swap_in_shared_cursor(input, scan),
        _ => Ok(false),
    }
}

/// Derive worker `w`'s RNG seed from a spine operator's base seed —
/// splitmix64-style finalization, so per-worker streams are decorrelated
/// but fully determined by `(plan, seed, parts)`.
fn worker_seed(base: u64, worker: u64) -> u64 {
    let mut z = base ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stream's scan coverage with the plan's union structure preserved.
///
/// [`ChunkStream::progress`] flattens a `UnionSamples` to the per-relation
/// minimum across branches — safe for display, but useless for mid-stream
/// population scaling, where each branch needs its *own* WOR prefix factor
/// (the branches cover the relations independently and the executor drains
/// the first branch fully before the second starts). This tree mirrors
/// `sa_plan::GusTree`: maximal union-free regions collapse into flat
/// leaves; unions — and joins above unions — stay structural.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressTree {
    /// A union-free subtree's per-relation `(consumed, available)`
    /// coverage, in scan order (the [`ChunkStream::progress`] semantics).
    Leaf(Vec<(u64, u64)>),
    /// A Proposition-7 union. Both branches cover the same relations.
    /// `second_started` is the executor's drain state: `false` means the
    /// first branch is still streaming and no tuple of the second has had
    /// a chance to appear; `true` means the first branch is complete.
    Union {
        /// Coverage of the first (drained-first) branch.
        left: Box<ProgressTree>,
        /// Coverage of the second branch.
        right: Box<ProgressTree>,
        /// Has the second branch started streaming (⇒ first is complete)?
        second_started: bool,
    },
    /// A join above a union: the operands' coverages, concatenated in scan
    /// order (left then right).
    Concat(Box<ProgressTree>, Box<ProgressTree>),
}

impl ProgressTree {
    /// Concatenate two subtree coverages, collapsing `Leaf ++ Leaf` into
    /// one leaf so union-free regions stay flat (mirrors the plan side,
    /// where compaction is associative).
    fn concat(left: ProgressTree, right: ProgressTree) -> ProgressTree {
        match (left, right) {
            (ProgressTree::Leaf(mut a), ProgressTree::Leaf(b)) => {
                a.extend(b);
                ProgressTree::Leaf(a)
            }
            (l, r) => ProgressTree::Concat(Box::new(l), Box::new(r)),
        }
    }
}

/// Build-time context threaded through [`build_partitioned`]: the catalog,
/// the partitioning shape, and the pushdown configuration derived from
/// [`ExecOptions`] and the plan's needed-column analysis.
struct BuildCtx<'a> {
    catalog: &'a Catalog,
    parts: usize,
    shuffle: bool,
    /// Fuse a `Filter`'s compiled predicate into a directly-underlying scan
    /// node. Off under [`ExecOptions::disable_pushdown`] and on the shared
    /// path (see [`open_shared_stream`]). Structure guarantees RNG safety:
    /// plan validation only admits samplers over `Sample*/Scan` chains, so
    /// a `Filter` sitting directly on a scan never has a sampler's
    /// per-row coin stream between them.
    fuse_predicates: bool,
    /// Per-alias needed-column sets (empty — prune nothing — when pushdown
    /// is disabled).
    cols: ScanColumnMap,
    obs: ScanObs,
}

impl<'a> BuildCtx<'a> {
    fn new(
        plan: &LogicalPlan,
        catalog: &'a Catalog,
        opts: &ExecOptions,
        parts: usize,
        fuse_predicates: bool,
    ) -> BuildCtx<'a> {
        let pushdown = !opts.disable_pushdown;
        BuildCtx {
            catalog,
            parts,
            shuffle: opts.shuffle_scan,
            fuse_predicates: pushdown && fuse_predicates,
            cols: if pushdown {
                match &opts.scan_cols {
                    Some(map) => map.clone(),
                    None => ScanColumnMap::analyze(plan),
                }
            } else {
                ScanColumnMap::default()
            },
            obs: opts.scan_obs.clone(),
        }
    }
}

/// What a streaming scan node gathers per chunk: the (possibly pruned)
/// output column set, an optional scan-level predicate, and the scan
/// observability handles. Shared by [`Node::Scan`] and
/// [`Node::ShuffledScan`]; built in [`build_partitioned`]'s scan arm and
/// extended with a predicate by its `Filter` arm.
#[derive(Debug)]
struct ScanGather {
    /// Output columns as ascending indices into the table schema; `None`
    /// gathers every column (the scan's output schema is pruned to match,
    /// so downstream compiled expressions see consistent positions).
    cols: Option<Arc<Vec<usize>>>,
    /// A predicate pushed into the scan (a `Filter` that sat directly on
    /// it): rows it drops never materialize into a batch.
    predicate: Option<ScanPredicate>,
    obs: ScanObs,
}

/// A scan-level predicate: the compiled mask expression remapped onto the
/// gather order of its own columns.
#[derive(Debug)]
struct ScanPredicate {
    /// Compiled mask; its column indices point into `table_cols` positions
    /// (the predicate columns are gathered first, alone).
    expr: CompiledExpr,
    /// The predicate's columns as ascending table-schema indices.
    table_cols: Vec<usize>,
    /// For each scan output position, where to find the column after the
    /// mask: `PredCol(i)` reuses already-gathered `table_cols[i]`,
    /// `LateCol(j)` is the j-th late-gathered remaining column.
    out_map: Vec<OutCol>,
    /// The late-gathered columns (output columns not read by the
    /// predicate), ascending table-schema indices.
    late_cols: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
enum OutCol {
    /// Position within [`ScanPredicate::table_cols`].
    PredCol(usize),
    /// Position within [`ScanPredicate::late_cols`].
    LateCol(usize),
}

impl ScanGather {
    /// The scan's output columns as table-schema indices.
    fn out_cols(&self, table: &Table) -> Vec<usize> {
        match &self.cols {
            Some(c) => c.as_ref().clone(),
            None => (0..table.column_count()).collect(),
        }
    }

    /// This gather extended with `compiled`, a predicate over the scan's
    /// output schema: map its columns back to table indices, remap the
    /// expression onto their gather positions, and precompute where each
    /// output column comes from after masking.
    fn with_predicate(&self, compiled: &CompiledExpr, table: &Table) -> ScanGather {
        let out = self.out_cols(table);
        let mut used = compiled.columns_used();
        used.sort_unstable();
        used.dedup();
        let table_cols: Vec<usize> = used.iter().map(|&i| out[i]).collect();
        let mut expr = compiled.clone();
        expr.remap_columns(&|old| {
            used.binary_search(&old)
                .expect("columns_used covers every referenced column")
        });
        let late_cols: Vec<usize> = out
            .iter()
            .copied()
            .filter(|c| !table_cols.contains(c))
            .collect();
        let out_map = out
            .iter()
            .map(|c| match table_cols.iter().position(|t| t == c) {
                Some(i) => OutCol::PredCol(i),
                None => {
                    OutCol::LateCol(late_cols.iter().position(|l| l == c).expect("late column"))
                }
            })
            .collect();
        ScanGather {
            cols: self.cols.clone(),
            predicate: Some(ScanPredicate {
                expr,
                table_cols,
                out_map,
                late_cols,
            }),
            obs: self.obs.clone(),
        }
    }

    /// Gather rows `[from, upto)` of `table` into a chunk with physical
    /// row-id lineage. Without a predicate this is a straight (possibly
    /// column-pruned) range gather. With one, the predicate's columns are
    /// gathered alone, the mask is evaluated, and only surviving rows of
    /// the remaining columns are materialized — a chunk may come back
    /// empty without meaning exhaustion (callers loop).
    fn gather(&self, table: &Table, from: u64, upto: u64) -> Result<ColumnarChunk> {
        let n = upto.saturating_sub(from);
        self.obs.rows_scanned.add(n);
        let Some(pred) = &self.predicate else {
            let batch = match &self.cols {
                None => table.batch_range(from, upto),
                Some(cols) => table.batch_range_cols(from, upto, cols),
            }
            .map_err(ExecError::Storage)?;
            self.obs.rows_gathered.add(n);
            return Ok(ColumnarChunk {
                batch,
                lineage: vec![(from..upto).collect()],
            });
        };
        let pred_batch = table
            .batch_range_cols(from, upto, &pred.table_cols)
            .map_err(ExecError::Storage)?;
        let mask = pred.expr.eval_mask(&pred_batch)?;
        let selected: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i as u32)
            .collect();
        let ids: Vec<u64> = selected.iter().map(|&i| from + i as u64).collect();
        // Page accounting: blocks of the range whose every row the mask
        // dropped never have their non-predicate columns touched.
        if n > 0 {
            let br = table.block_rows() as u64;
            let blocks_total = (upto - 1) / br - from / br + 1;
            let mut covered = 0u64;
            let mut prev = u64::MAX;
            for &id in &ids {
                let b = id / br;
                if b != prev {
                    covered += 1;
                    prev = b;
                }
            }
            self.obs.pages_skipped.add(blocks_total - covered);
        }
        self.obs.rows_gathered.add(ids.len() as u64);
        let pred_taken = pred_batch.take(&selected);
        let late_batch = table
            .gather_rows_cols(&ids, &pred.late_cols)
            .map_err(ExecError::Storage)?;
        let columns = pred
            .out_map
            .iter()
            .map(|&m| match m {
                OutCol::PredCol(i) => pred_taken.column(i).clone(),
                OutCol::LateCol(j) => late_batch.column(j).clone(),
            })
            .collect();
        Ok(ColumnarChunk {
            batch: ColumnarBatch::new(columns, ids.len()),
            lineage: vec![ids],
        })
    }
}

/// One operator of the streaming pipeline. Every operator transforms whole
/// [`ColumnarChunk`]s.
#[derive(Debug)]
enum Node {
    /// Base-table scan over the row range `[start, end)`: gathers column
    /// slices straight from storage plus a lineage column of row ids. A
    /// full scan has `start = 0`, `end = row_count`; a partitioned worker
    /// scans a block-aligned slice. What gets gathered — the pruned column
    /// set and an optional pushed-down predicate — lives in [`ScanGather`].
    Scan {
        table: Arc<Table>,
        start: u64,
        next: u64,
        end: u64,
        gather: ScanGather,
    },
    /// A seeded block-permuted scan ([`ExecOptions::shuffle_scan`]): the
    /// slice's blocks are visited in a seeded random order, rows inside a
    /// block in physical order — so columnar gathers stay batched while the
    /// consumed prefix becomes a uniform random set of blocks, making the
    /// online driver's random-scan-order assumption true by construction.
    /// Lineage stays physical row ids; downstream per-row samplers draw
    /// their coins in emission (visit) order.
    ShuffledScan {
        table: Arc<Table>,
        /// Block row-ranges `[start, end)` in visit order.
        order: Vec<(u64, u64)>,
        /// Index into `order` of the block currently draining.
        block: usize,
        /// Row offset within the current block.
        offset: u64,
        /// Rows emitted so far.
        emitted: u64,
        /// Total rows in the slice.
        total: u64,
        gather: ScanGather,
    },
    /// A cursor on a [`SharedTableScan`] hub in place of a private scan:
    /// the same chunks-with-row-id-lineage contract, but the rows arrive in
    /// circular order from the cursor's attach origin and the gathering
    /// work is shared with every other cursor on the hub.
    Shared { cursor: SharedScanCursor },
    /// Tuple-level Bernoulli sampling with its own RNG stream (one coin per
    /// input row, in row order).
    Bernoulli {
        p: f64,
        rng: StdRng,
        input: Box<Node>,
    },
    /// Block-level Bernoulli: the keep decisions are drawn at open (one coin
    /// per block), rows ride along with their block and have their lineage
    /// rewritten to the block id.
    System {
        keep: Vec<bool>,
        base: Arc<Table>,
        /// True when the input chain is a streaming scan prefix, so its
        /// consumed-row count is a base-table row-id prefix that converts to
        /// block coverage. False over a materialized sampler (WOR below
        /// SYSTEM), whose consumed count indexes *sample* rows — block
        /// coverage is then unknowable and reported as complete.
        row_prefix: bool,
        input: Box<Node>,
    },
    /// A blocking subtree (WOR / with-replacement sample), materialized at
    /// open as one columnar chunk and drained in slices.
    Materialized { chunk: ColumnarChunk, next: usize },
    /// Relational selection (compiled predicate → mask → compact).
    Filter {
        predicate: CompiledExpr,
        input: Box<Node>,
    },
    /// Projection (compiled kernels evaluated per chunk).
    Project {
        exprs: Vec<CompiledExpr>,
        input: Box<Node>,
    },
    /// Fused selection + projection: one pass computes the selection mask,
    /// gathers only the columns the projection reads, and evaluates the
    /// projection kernels over the compacted batch — no intermediate
    /// filtered chunk of untouched columns.
    FilterProject {
        predicate: CompiledExpr,
        /// Projection kernels, column-remapped onto `used`.
        exprs: Vec<CompiledExpr>,
        /// Input column indices the projection reads, ascending.
        used: Vec<usize>,
        input: Box<Node>,
    },
    /// Streaming hash join: build side materialized and fingerprint-keyed,
    /// probe side streamed. The build sits behind `Arc` so partitioned
    /// worker streams share one materialization instead of re-drawing (and
    /// re-sampling!) the build side per worker.
    HashJoin {
        probe: Box<Node>,
        build: Arc<JoinBuild>,
        residual: Option<CompiledExpr>,
    },
    /// Nested-loop join (cross product / arbitrary θ): right side
    /// materialized (shared across partitioned workers), left side streamed.
    NestedLoop {
        left: Box<Node>,
        build: Arc<JoinBuild>,
        residual: Option<CompiledExpr>,
    },
    /// Union of two independent samplings of one expression, deduplicated
    /// by lineage (Proposition 7): left drained first, then right.
    Dedup {
        first: Box<Node>,
        second: Box<Node>,
        on_second: bool,
        seen: HashSet<Vec<u64>>,
    },
}

/// Build one operator tree per worker over disjoint slices; returns
/// `(nodes, schema, relations)` with `nodes.len() == parts`. This is THE
/// builder — the sequential stream is simply `parts == 1` (one full-range
/// slice, base seeds used directly), so the traversal, the master-RNG draw
/// order and the compiled expressions cannot drift between the sequential
/// and partitioned paths. Shared stochastic operators (SYSTEM keeps,
/// blocking samplers, join build sides) are drawn once at the same master
/// positions regardless of `parts`; only spine Bernoulli samplers derive
/// per-worker seeds when `parts > 1`.
fn build_partitioned(
    plan: &LogicalPlan,
    ctx: &BuildCtx<'_>,
    master: &mut StdRng,
) -> Result<(Vec<Node>, SchemaRef, Vec<String>)> {
    let parts = ctx.parts;
    match plan {
        LogicalPlan::Scan { table, alias } => {
            let (t, schema) = scan_schema(ctx.catalog, table, alias)?;
            // Projection pushdown: prune the scan to the columns the rest
            // of the plan can observe. The scan's output schema shrinks to
            // match (same field order), so downstream name-based binding
            // and compiled column positions stay consistent; lineage row
            // ids ride beside the batch and need no column at all.
            let (schema, cols) = match ctx.cols.project_indices(alias, &schema) {
                None => (schema, None),
                Some(idx) => {
                    let fields: Vec<_> = idx.iter().map(|&i| schema.fields()[i].clone()).collect();
                    let pruned = Arc::new(Schema::new(fields).map_err(ExecError::Storage)?);
                    (pruned, Some(Arc::new(idx)))
                }
            };
            ctx.obs
                .cols_gathered
                .add(cols.as_ref().map_or(t.column_count(), |c| c.len()) as u64);
            let block_rows = t.block_rows() as u64;
            let rows = t.row_count();
            let blocks = t.block_count();
            // One base seed per scan, drawn ONLY in shuffle mode so the
            // master-RNG draw order — and therefore every realization every
            // pinned test depends on — is untouched when the flag is off.
            let shuffle_base = if ctx.shuffle {
                Some(master.random::<u64>())
            } else {
                None
            };
            // Contiguous block-aligned slices: worker w owns blocks
            // [blocks·w/parts, blocks·(w+1)/parts). Some slices are empty
            // when there are fewer blocks than workers — they just drain
            // immediately (oversubscription degrades gracefully).
            let nodes = (0..parts as u64)
                .map(|w| {
                    let gather = ScanGather {
                        cols: cols.clone(),
                        predicate: None,
                        obs: ctx.obs.clone(),
                    };
                    let lo = blocks * w / parts as u64;
                    let hi = blocks * (w + 1) / parts as u64;
                    let start = (lo * block_rows).min(rows);
                    let end = (hi * block_rows).min(rows);
                    let Some(base) = shuffle_base else {
                        return Node::Scan {
                            table: t.clone(),
                            start,
                            next: start,
                            end,
                            gather,
                        };
                    };
                    // Seeded Fisher–Yates over the worker's own block
                    // slice: slices stay disjoint, progress still sums,
                    // and the permutation is fixed by (seed, parts, w).
                    let mut order: Vec<(u64, u64)> = (lo..hi)
                        .map(|b| ((b * block_rows).min(rows), ((b + 1) * block_rows).min(rows)))
                        .filter(|(s, e)| s < e)
                        .collect();
                    let seed = if parts == 1 {
                        base
                    } else {
                        worker_seed(base, w)
                    };
                    let mut rng = StdRng::seed_from_u64(seed);
                    for i in (1..order.len()).rev() {
                        let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
                        order.swap(i, j);
                    }
                    Node::ShuffledScan {
                        table: t.clone(),
                        order,
                        block: 0,
                        offset: 0,
                        emitted: 0,
                        total: end - start,
                        gather,
                    }
                })
                .collect();
            Ok((nodes, schema, vec![alias.clone()]))
        }
        LogicalPlan::Sample { method, input } => {
            method.validate().map_err(ExecError::Sampling)?;
            match method {
                SamplingMethod::Bernoulli { p } => {
                    let base = master.random::<u64>();
                    let (inputs, schema, relations) = build_partitioned(input, ctx, master)?;
                    let nodes = inputs
                        .into_iter()
                        .enumerate()
                        .map(|(w, node)| {
                            // A single stream uses the base seed directly
                            // (the historical sequential realization);
                            // workers get derived, decorrelated streams.
                            let seed = if parts == 1 {
                                base
                            } else {
                                worker_seed(base, w as u64)
                            };
                            Node::Bernoulli {
                                p: *p,
                                rng: StdRng::seed_from_u64(seed),
                                input: Box::new(node),
                            }
                        })
                        .collect();
                    Ok((nodes, schema, relations))
                }
                SamplingMethod::System { p } => {
                    let base = base_table(input, ctx.catalog)?;
                    let mut rng = StdRng::seed_from_u64(master.random::<u64>());
                    // ONE keep vector for all workers: slices are
                    // block-aligned, so each block's keep decision is used
                    // by exactly one worker and the union is a single
                    // coherent SYSTEM sample (identical to the sequential
                    // realization for the same seed).
                    let keep: Vec<bool> = (0..base.block_count())
                        .map(|_| rng.random::<f64>() < *p)
                        .collect();
                    let (inputs, schema, relations) = build_partitioned(input, ctx, master)?;
                    let nodes = inputs
                        .into_iter()
                        .map(|node| {
                            let row_prefix = node.is_scan_prefix();
                            Node::System {
                                keep: keep.clone(),
                                base: base.clone(),
                                row_prefix,
                                input: Box::new(node),
                            }
                        })
                        .collect();
                    Ok((nodes, schema, relations))
                }
                SamplingMethod::Wor { .. } | SamplingMethod::WithReplacement { .. } => {
                    // Blocking samplers need their input's full cardinality
                    // up front: materialized once via the batch executor
                    // (the same draw at any `parts`), sample rows sliced
                    // contiguously across workers.
                    let mut rng = StdRng::seed_from_u64(master.random::<u64>());
                    let rs = exec_node(plan, ctx.catalog, &mut rng)?;
                    let n_rels = rs.relations.len();
                    let chunk = ColumnarChunk::from_rows(&rs.schema, n_rels, &rs.rows);
                    let len = chunk.rows();
                    let nodes = if parts == 1 {
                        vec![Node::Materialized { chunk, next: 0 }]
                    } else {
                        (0..parts)
                            .map(|w| {
                                let start = len * w / parts;
                                let end = len * (w + 1) / parts;
                                Node::Materialized {
                                    chunk: chunk.slice(start, end - start),
                                    next: 0,
                                }
                            })
                            .collect()
                    };
                    Ok((nodes, rs.schema, rs.relations))
                }
            }
        }
        LogicalPlan::Filter { predicate, input } => {
            let (inputs, schema, relations) = build_partitioned(input, ctx, master)?;
            let compiled = compile(predicate, &schema)?;
            // Predicate pushdown: a Filter sitting directly on a scan node
            // fuses into the scan's gather — its dropped rows never
            // materialize. Plan validation keeps samplers on Sample*/Scan
            // chains only, so no per-row coin stream can sit between this
            // Filter and the scan; the realized sample is unchanged. A scan
            // already carrying a predicate keeps the second Filter as an
            // operator (compiled masks don't compose).
            let nodes = inputs
                .into_iter()
                .map(|node| match node {
                    Node::Scan {
                        table,
                        start,
                        next,
                        end,
                        gather,
                    } if ctx.fuse_predicates && gather.predicate.is_none() => {
                        let gather = gather.with_predicate(&compiled, &table);
                        Node::Scan {
                            table,
                            start,
                            next,
                            end,
                            gather,
                        }
                    }
                    Node::ShuffledScan {
                        table,
                        order,
                        block,
                        offset,
                        emitted,
                        total,
                        gather,
                    } if ctx.fuse_predicates && gather.predicate.is_none() => {
                        let gather = gather.with_predicate(&compiled, &table);
                        Node::ShuffledScan {
                            table,
                            order,
                            block,
                            offset,
                            emitted,
                            total,
                            gather,
                        }
                    }
                    node => Node::Filter {
                        predicate: compiled.clone(),
                        input: Box::new(node),
                    },
                })
                .collect();
            Ok((nodes, schema, relations))
        }
        LogicalPlan::Project { exprs, input } => {
            let (inputs, in_schema, relations) = build_partitioned(input, ctx, master)?;
            let mut compiled = Vec::with_capacity(exprs.len());
            let mut fields = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                let be = bind(e, &in_schema)?;
                let dt =
                    sa_expr::data_type(&be, &in_schema)?.unwrap_or(sa_storage::DataType::Float);
                fields.push(sa_storage::Field::new(name, dt));
                compiled.push(compile(&be, &in_schema)?);
            }
            let schema = Arc::new(Schema::new(fields).map_err(ExecError::Storage)?);
            // Fuse a directly-underlying Filter: gather only the columns the
            // projection reads, once, after masking.
            let mut used: Vec<usize> = Vec::new();
            for c in &compiled {
                for i in c.columns_used() {
                    if !used.contains(&i) {
                        used.push(i);
                    }
                }
            }
            used.sort_unstable();
            let remapped: Vec<CompiledExpr> = compiled
                .iter()
                .map(|c| {
                    let mut c = c.clone();
                    let used = &used;
                    c.remap_columns(&|old| {
                        used.binary_search(&old).expect("used covers every column")
                    });
                    c
                })
                .collect();
            let nodes = inputs
                .into_iter()
                .map(|node| match node {
                    Node::Filter { predicate, input } => Node::FilterProject {
                        predicate,
                        exprs: remapped.clone(),
                        used: used.clone(),
                        input,
                    },
                    node => Node::Project {
                        exprs: compiled.clone(),
                        input: Box::new(node),
                    },
                })
                .collect();
            Ok((nodes, schema, relations))
        }
        LogicalPlan::Join {
            condition,
            left,
            right,
        } => {
            let (probes, l_schema, l_rels) = build_partitioned(left, ctx, master)?;
            // Build side: materialized ONCE (same master position as the
            // sequential build) and shared behind Arc by every worker —
            // re-drawing it per worker would join each probe slice against
            // a different sample of the right input.
            let mut rng = StdRng::seed_from_u64(master.random::<u64>());
            let r = exec_node(right, ctx.catalog, &mut rng)?;
            let schema = Arc::new(l_schema.join(&r.schema)?);
            let mut relations = l_rels;
            relations.extend(r.relations.iter().cloned());
            let (keys, residual) = match condition {
                None => (vec![], None),
                Some(c) => split_join_condition(c, &l_schema, &r.schema)?,
            };
            let residual = residual.map(|e| compile(&e, &schema)).transpose()?;
            let build_chunk = ColumnarChunk::from_rows(&r.schema, r.relations.len(), &r.rows);
            let build = Arc::new(JoinBuild::new(build_chunk, r.relations.len(), keys));
            let nodes = probes
                .into_iter()
                .map(|probe| build.clone().node(probe, residual.clone()))
                .collect();
            Ok((nodes, schema, relations))
        }
        LogicalPlan::UnionSamples { left, right } => {
            // The union's lineage dedup is global state across both
            // branches, so it only streams on a single stream.
            if parts > 1 {
                return Err(ExecError::Unsupported(
                    "a UNION of samples cannot be partitioned: its lineage dedup is global \
                     state across both branches — run it on a single stream (parallelism = 1)"
                        .into(),
                ));
            }
            let (mut l, schema, relations) = build_partitioned(left, ctx, master)?;
            let (mut r, _, _) = build_partitioned(right, ctx, master)?;
            Ok((
                vec![Node::Dedup {
                    first: Box::new(l.pop().expect("one part")),
                    second: Box::new(r.pop().expect("one part")),
                    on_second: false,
                    seen: HashSet::new(),
                }],
                schema,
                relations,
            ))
        }
        LogicalPlan::Aggregate { .. } => Err(ExecError::Unsupported(
            "open_stream streams the aggregate's input; strip the Aggregate root and \
             accumulate incrementally (see sa-online)"
                .into(),
        )),
    }
}

impl Node {
    /// Pull roughly `hint` rows as one columnar chunk. Invariant: an empty
    /// return means this operator is exhausted — filtering operators keep
    /// pulling until they can emit at least one row or their input drains.
    fn next_batch(&mut self, hint: usize) -> Result<ColumnarChunk> {
        match self {
            Node::Scan {
                table,
                next,
                end,
                gather,
                ..
            } => loop {
                // A pushed-down predicate can empty a whole range; an empty
                // chunk is the exhaustion signal upstream, so keep scanning
                // until a row survives or the slice truly drains.
                let upto = (*next + hint as u64).min(*end);
                let chunk = gather.gather(table, *next, upto)?;
                *next = upto;
                if !chunk.is_empty() || *next >= *end {
                    return Ok(chunk);
                }
            },
            Node::ShuffledScan {
                table,
                order,
                block,
                offset,
                emitted,
                gather,
                ..
            } => {
                while *block < order.len() {
                    let (s, e) = order[*block];
                    let from = s + *offset;
                    if from >= e {
                        *block += 1;
                        *offset = 0;
                        continue;
                    }
                    let upto = (from + hint as u64).min(e);
                    let chunk = gather.gather(table, from, upto)?;
                    // `emitted` counts *consumed* rows — every row of the
                    // visited range had its chance, whatever a pushed
                    // predicate dropped — so Prop-8 coverage is unchanged.
                    *offset += upto - from;
                    *emitted += upto - from;
                    if chunk.is_empty() {
                        continue;
                    }
                    return Ok(chunk);
                }
                // Exhausted: an empty chunk with the scan's column shape.
                gather.gather(table, 0, 0)
            }
            Node::Shared { cursor } => cursor.next_batch(hint),
            Node::Materialized { chunk, next } => {
                let end = (*next + hint).min(chunk.rows());
                let out = chunk.slice(*next, end - *next);
                *next = end;
                Ok(out)
            }
            Node::Bernoulli { p, rng, input } => loop {
                let chunk = input.next_batch(hint)?;
                if chunk.is_empty() {
                    return Ok(chunk);
                }
                // One coin per input row, in row order — the same RNG
                // consumption as a per-row filter, so the realization is
                // chunk-size independent.
                let mask: Vec<bool> = (0..chunk.rows())
                    .map(|_| rng.random::<f64>() < *p)
                    .collect();
                if mask.iter().any(|&m| m) {
                    return Ok(chunk.filter(&mask));
                }
            },
            Node::System {
                keep, base, input, ..
            } => loop {
                let chunk = input.next_batch(hint)?;
                if chunk.is_empty() {
                    return Ok(chunk);
                }
                let rids = chunk.lineage.last().expect("scan lineage");
                let mask: Vec<bool> = rids
                    .iter()
                    .map(|&rid| keep[base.block_of(rid) as usize])
                    .collect();
                if !mask.iter().any(|&m| m) {
                    continue;
                }
                let mut out = chunk.filter(&mask);
                // This relation's sampling — and hence lineage — unit is
                // the block: rewrite the kept rows' ids.
                let blocks = out.lineage.last_mut().expect("scan lineage");
                for rid in blocks.iter_mut() {
                    *rid = base.block_of(*rid);
                }
                return Ok(out);
            },
            Node::Filter { predicate, input } => loop {
                let chunk = input.next_batch(hint)?;
                if chunk.is_empty() {
                    return Ok(chunk);
                }
                let mask = predicate.eval_mask(&chunk.batch)?;
                if mask.iter().any(|&m| m) {
                    return Ok(chunk.filter(&mask));
                }
            },
            Node::Project { exprs, input } => {
                let chunk = input.next_batch(hint)?;
                let rows = chunk.rows();
                let columns = exprs
                    .iter()
                    .map(|e| e.eval_column(&chunk.batch))
                    .collect::<sa_expr::Result<Vec<_>>>()?;
                Ok(ColumnarChunk {
                    batch: ColumnarBatch::new(columns, rows),
                    lineage: chunk.lineage,
                })
            }
            Node::FilterProject {
                predicate,
                exprs,
                used,
                input,
            } => loop {
                let chunk = input.next_batch(hint)?;
                let indices: Vec<u32> = if chunk.is_empty() {
                    // An exhausted input still flows through the gather +
                    // eval below (with no rows), so the chunk keeps the
                    // projected column count — consumers above may evaluate
                    // expressions against it.
                    Vec::new()
                } else {
                    let mask = predicate.eval_mask(&chunk.batch)?;
                    let selected: Vec<u32> = mask
                        .iter()
                        .enumerate()
                        .filter(|(_, &m)| m)
                        .map(|(i, _)| i as u32)
                        .collect();
                    if selected.is_empty() {
                        continue;
                    }
                    selected
                };
                // Gather only the columns the projection reads, compacted
                // to the selected rows, then evaluate densely. (The
                // projection kernels are remapped onto `used`, so they must
                // never see the full-width input batch — not even empty.)
                let gathered = ColumnarBatch::new(
                    used.iter()
                        .map(|&c| chunk.batch.column(c).take(&indices))
                        .collect(),
                    indices.len(),
                );
                let columns = exprs
                    .iter()
                    .map(|e| e.eval_column(&gathered))
                    .collect::<sa_expr::Result<Vec<_>>>()?;
                let lineage = chunk
                    .lineage
                    .iter()
                    .map(|l| indices.iter().map(|&i| l[i as usize]).collect())
                    .collect();
                return Ok(ColumnarChunk {
                    batch: ColumnarBatch::new(columns, indices.len()),
                    lineage,
                });
            },
            Node::HashJoin {
                probe,
                build,
                residual,
            } => loop {
                let chunk = probe.next_batch(hint)?;
                if chunk.is_empty() {
                    return join_output(&chunk, &[], build, &[], residual.as_ref());
                }
                let probe_cols: Vec<&ColumnVec> = build
                    .keys
                    .iter()
                    .map(|(li, _)| chunk.batch.column(*li))
                    .collect();
                let mut probe_idx: Vec<u32> = Vec::new();
                let mut build_idx: Vec<u32> = Vec::new();
                for i in 0..chunk.rows() {
                    let Some(fp) = key_fingerprint(&probe_cols, i) else {
                        continue; // NULL keys never match
                    };
                    let Some(candidates) = build.table.get(&fp) else {
                        continue;
                    };
                    for &j in candidates {
                        // Stored-key equality check: a fingerprint
                        // collision (or cross-type coercion subtlety) can
                        // never fabricate a match.
                        if build.key_matches(&probe_cols, i, j) {
                            probe_idx.push(i as u32);
                            build_idx.push(j);
                        }
                    }
                }
                let out = join_output(&chunk, &probe_idx, build, &build_idx, residual.as_ref())?;
                if !out.is_empty() {
                    return Ok(out);
                }
            },
            Node::NestedLoop {
                left,
                build,
                residual,
            } => loop {
                let chunk = left.next_batch(hint)?;
                if chunk.is_empty() {
                    return join_output(&chunk, &[], build, &[], residual.as_ref());
                }
                let n = build.chunk.rows() as u32;
                let mut probe_idx = Vec::with_capacity(chunk.rows() * n as usize);
                let mut build_idx = Vec::with_capacity(chunk.rows() * n as usize);
                for i in 0..chunk.rows() as u32 {
                    for j in 0..n {
                        probe_idx.push(i);
                        build_idx.push(j);
                    }
                }
                let out = join_output(&chunk, &probe_idx, build, &build_idx, residual.as_ref())?;
                if !out.is_empty() {
                    return Ok(out);
                }
            },
            Node::Dedup {
                first,
                second,
                on_second,
                seen,
            } => loop {
                let active: &mut Node = if *on_second { second } else { first };
                let chunk = active.next_batch(hint)?;
                if chunk.is_empty() {
                    if *on_second {
                        return Ok(chunk);
                    }
                    *on_second = true;
                    continue;
                }
                let mask: Vec<bool> = (0..chunk.rows())
                    .map(|i| {
                        let lin: Vec<u64> = chunk.lineage.iter().map(|l| l[i]).collect();
                        seen.insert(lin)
                    })
                    .collect();
                if mask.iter().any(|&m| m) {
                    return Ok(chunk.filter(&mask));
                }
            },
        }
    }
}

/// The 64-bit fingerprint of a row's equi-key cells, or `None` when any
/// cell is NULL (NULL join keys never match). Hashing goes through
/// [`ColumnVec::hash_cell`], which writes exactly what `Value::hash` would —
/// so numerically equal `Int`/`Float` keys collide on purpose and the
/// stored-key check resolves them. The Fx state is finalized with
/// splitmix64: numeric cells hash by their f64 bit pattern, whose entropy
/// sits in the HIGH bits, and Fx's multiply-only mixing never propagates
/// high bits downward — without full avalanche, every small-integer key
/// would share its low bits and the hash table would degenerate into one
/// giant probe chain.
fn key_fingerprint(cols: &[&ColumnVec], row: usize) -> Option<u64> {
    let mut h = FxHasher::default();
    for c in cols {
        if !c.is_valid(row) {
            return None;
        }
        c.hash_cell(row, &mut h);
    }
    Some(sa_core::hash::splitmix64(h.finish()))
}

/// Assemble a join's output chunk from matched (probe, build) index pairs:
/// gather both sides, concatenate columns and lineage, apply the residual.
fn join_output(
    probe: &ColumnarChunk,
    probe_idx: &[u32],
    build: &JoinBuild,
    build_idx: &[u32],
    residual: Option<&CompiledExpr>,
) -> Result<ColumnarChunk> {
    let left = probe.take(probe_idx);
    let right = build.chunk.take(build_idx);
    let mut lineage = left.lineage;
    lineage.extend(right.lineage);
    let combined = ColumnarChunk {
        batch: left.batch.concat_columns(right.batch),
        lineage,
    };
    match residual {
        None => Ok(combined),
        Some(pred) => {
            let mask = pred.eval_mask(&combined.batch)?;
            Ok(combined.filter(&mask))
        }
    }
}

impl Node {
    /// Append this subtree's per-relation `(consumed, available)` coverage
    /// to `out`, in scan order (see [`ChunkStream::progress`]).
    fn progress(&self, out: &mut Vec<(u64, u64)>) {
        match self {
            // Coverage is relative to this node's slice, so a partitioned
            // set of workers sums to the whole relation's `(consumed,
            // available)` — a full scan reports `(next, row_count)` as ever.
            Node::Scan {
                start, next, end, ..
            } => out.push((*next - *start, *end - *start)),
            // A shuffled scan's consumed rows are a seeded-random set of
            // blocks (plus at most one partial block) — a WOR(consumed,
            // available) draw of the slice by construction, which is
            // exactly the coverage contract.
            Node::ShuffledScan { emitted, total, .. } => out.push((*emitted, *total)),
            // A shared cursor's consumed prefix is a circularly-shifted row
            // range — still WOR(consumed, N) coverage (the design is
            // invariant under a fixed rotation of the relation), so it
            // reports exactly like a private scan.
            Node::Shared { cursor } => out.push(cursor.progress()),
            // A materialized blocking sampler: coverage over the *drawn
            // sample* — it stacks onto the plan's own WOR factor exactly
            // like a scan prefix stacks onto a Bernoulli.
            Node::Materialized { chunk, next } => out.push((*next as u64, chunk.rows() as u64)),
            Node::Bernoulli { input, .. } | Node::Filter { input, .. } => input.progress(out),
            Node::Project { input, .. } | Node::FilterProject { input, .. } => input.progress(out),
            Node::System {
                base,
                row_prefix,
                input,
                ..
            } => {
                if !*row_prefix {
                    // The input's consumed count is not a base-row prefix
                    // (a materialized sampler sits below): block coverage is
                    // unknowable, so report complete — conservative for
                    // scaling (no inflation; converges at exhaustion).
                    out.push((base.block_count(), base.block_count()));
                    return;
                }
                // Convert the row-level coverage of the underlying chain to
                // this relation's sampling unit: blocks. A partially scanned
                // block counts as covered (its tuples had their chance as a
                // group; the boundary error is at most one block). Slices
                // are block-aligned, so per-worker block ranges are disjoint
                // and sum to the full block count.
                let (start, next, end) =
                    input.scan_span().expect("row_prefix chains end in a scan");
                let blocks_seen = if next == start {
                    0
                } else {
                    base.block_of(next - 1) - base.block_of(start) + 1
                };
                let blocks_avail = if end == start {
                    0
                } else {
                    base.block_of(end - 1) - base.block_of(start) + 1
                };
                out.push((blocks_seen, blocks_avail));
            }
            Node::HashJoin { probe, build, .. } => {
                probe.progress(out);
                // Build side is fully materialized: complete coverage.
                out.extend(std::iter::repeat_n((1, 1), build.n_rels));
            }
            Node::NestedLoop { left, build, .. } => {
                left.progress(out);
                out.extend(std::iter::repeat_n((1, 1), build.n_rels));
            }
            Node::Dedup { first, second, .. } => {
                // Both branches sample the same relations, but the union's
                // true coverage is NOT a simple function of the two scan
                // prefixes (while the second branch streams, tuples unique
                // to it are still arriving even though the first branch
                // covered every position). This flat view reports the
                // *minimum* — complete only once both branches drained —
                // which is honest for display; the online driver's union
                // scaling reads [`Node::progress_tree`] instead, where each
                // branch's coverage stays separate for per-branch Prop-8
                // prefix composition.
                let mut a = Vec::new();
                let mut b = Vec::new();
                first.progress(&mut a);
                second.progress(&mut b);
                for ((ca, na), (cb, _)) in a.into_iter().zip(b) {
                    out.push((ca.min(cb), na));
                }
            }
        }
    }

    /// This subtree's coverage with union structure intact (see
    /// [`ProgressTree`] and [`ChunkStream::progress_tree`]).
    fn progress_tree(&self) -> ProgressTree {
        match self {
            // Pass-through operators: coverage lives below.
            Node::Bernoulli { input, .. }
            | Node::Filter { input, .. }
            | Node::Project { input, .. }
            | Node::FilterProject { input, .. } => input.progress_tree(),
            Node::HashJoin { probe, build, .. } => ProgressTree::concat(
                probe.progress_tree(),
                ProgressTree::Leaf(vec![(1, 1); build.n_rels]),
            ),
            Node::NestedLoop { left, build, .. } => ProgressTree::concat(
                left.progress_tree(),
                ProgressTree::Leaf(vec![(1, 1); build.n_rels]),
            ),
            Node::Dedup {
                first,
                second,
                on_second,
                ..
            } => ProgressTree::Union {
                left: Box::new(first.progress_tree()),
                right: Box::new(second.progress_tree()),
                second_started: *on_second,
            },
            // Leaves (scans, cursors, materialized samplers) and SYSTEM —
            // whose unit conversion `progress` already performs — have no
            // union structure below them.
            Node::Scan { .. }
            | Node::ShuffledScan { .. }
            | Node::Shared { .. }
            | Node::Materialized { .. }
            | Node::System { .. } => {
                let mut out = Vec::new();
                self.progress(&mut out);
                ProgressTree::Leaf(out)
            }
        }
    }

    /// True when this chain's consumed-row count is a prefix of base-table
    /// row ids (a scan, possibly through streaming per-row samplers) —
    /// false as soon as a materialized sampler or a block-unit rewrite sits
    /// below, because their counts index different units.
    fn is_scan_prefix(&self) -> bool {
        match self {
            Node::Scan { .. } => true,
            Node::Bernoulli { input, .. } => input.is_scan_prefix(),
            _ => false,
        }
    }

    /// The `(start, next, end)` row span of the scan at the bottom of a
    /// scan-prefix chain (`None` when [`Node::is_scan_prefix`] is false).
    fn scan_span(&self) -> Option<(u64, u64, u64)> {
        match self {
            Node::Scan {
                start, next, end, ..
            } => Some((*start, *next, *end)),
            Node::Bernoulli { input, .. } => input.scan_span(),
            _ => None,
        }
    }
}

/// A join's materialized build side: the columnar build rows, shared (via
/// `Arc`) by every worker stream that probes them, plus the
/// fingerprint-keyed hash table. The table maps the 64-bit key fingerprint
/// to the build row indices carrying it (in build order); probes verify
/// actual key equality against the stored rows, so fingerprint collisions
/// cost a comparison, never correctness.
#[derive(Debug)]
struct JoinBuild {
    chunk: ColumnarChunk,
    n_rels: usize,
    keys: crate::exec::EquiKeys,
    table: FxHashMap<u64, Vec<u32>>,
}

impl JoinBuild {
    fn new(chunk: ColumnarChunk, n_rels: usize, keys: crate::exec::EquiKeys) -> Self {
        let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        if !keys.is_empty() {
            let key_cols: Vec<&ColumnVec> =
                keys.iter().map(|(_, ri)| chunk.batch.column(*ri)).collect();
            for i in 0..chunk.rows() {
                if let Some(fp) = key_fingerprint(&key_cols, i) {
                    table.entry(fp).or_default().push(i as u32);
                }
            }
        }
        JoinBuild {
            chunk,
            n_rels,
            keys,
            table,
        }
    }

    /// Does build row `j`'s key equal probe row `i`'s (cell-by-cell, with
    /// the engine's cross-type numeric equality)?
    fn key_matches(&self, probe_cols: &[&ColumnVec], i: usize, j: u32) -> bool {
        self.keys
            .iter()
            .zip(probe_cols)
            .all(|((_, ri), pc)| pc.cell_eq(i, self.chunk.batch.column(*ri), j as usize))
    }

    /// The join operator over one probe node (hash join when equi-keys
    /// exist, nested loop otherwise).
    fn node(self: Arc<Self>, probe: Node, residual: Option<CompiledExpr>) -> Node {
        if self.keys.is_empty() {
            Node::NestedLoop {
                left: Box::new(probe),
                build: self,
                residual,
            }
        } else {
            Node::HashJoin {
                probe: Box::new(probe),
                build: self,
                residual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use sa_expr::{col, lit};
    use sa_storage::{DataType, Field, TableBuilder, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema).with_block_rows(16);
        for i in 0..200 {
            b.push_row(&[Value::Int(i % 10), Value::Float(i as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        let schema2 = Schema::new(vec![
            Field::new("dk", DataType::Int),
            Field::new("w", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("d", schema2);
        for i in 0..10 {
            b.push_row(&[Value::Int(i), Value::Float(10.0 * i as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    /// The streamed rows of an unsampled plan must equal the batch
    /// executor's, in order, for any chunk hint.
    fn assert_stream_matches_batch(plan: &LogicalPlan, hint: usize) {
        let c = catalog();
        let batch = execute(plan, &c, &ExecOptions::default()).unwrap();
        let stream = open_stream(plan, &c, &ExecOptions::default()).unwrap();
        assert_eq!(stream.schema().as_ref(), batch.schema.as_ref());
        assert_eq!(stream.relations(), &batch.relations[..]);
        let rows = stream.collect_rows(hint).unwrap();
        assert_eq!(rows, batch.rows, "hint={hint}");
    }

    #[test]
    fn scan_filter_project_match_batch_for_many_hints() {
        let plan = LogicalPlan::scan("t")
            .filter(col("v").gt_eq(lit(25.0)))
            .project(vec![(col("v").mul(lit(2.0)), "vv".into())]);
        for hint in [1, 3, 64, 1000] {
            assert_stream_matches_batch(&plan, hint);
        }
    }

    #[test]
    fn hash_join_matches_batch() {
        let plan = LogicalPlan::scan("t").join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
        for hint in [1, 7, 512] {
            assert_stream_matches_batch(&plan, hint);
        }
    }

    #[test]
    fn theta_and_cross_joins_match_batch() {
        // v > w is not an equi-condition → nested loop with residual.
        let theta = LogicalPlan::scan("t").join_on(LogicalPlan::scan("d"), col("v").gt(col("w")));
        let cross = LogicalPlan::scan("t").cross(LogicalPlan::scan("d"));
        for hint in [1, 4, 300] {
            assert_stream_matches_batch(&theta, hint);
            assert_stream_matches_batch(&cross, hint);
        }
    }

    #[test]
    fn chunk_sizes_do_not_change_the_sample() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.3 });
        let c = catalog();
        let collect = |hint: usize| {
            open_stream(
                &plan,
                &c,
                &ExecOptions {
                    seed: 11,
                    ..Default::default()
                },
            )
            .unwrap()
            .collect_rows(hint)
            .unwrap()
        };
        let small = collect(2);
        let big = collect(500);
        assert_eq!(small, big, "sample realization must be chunk-independent");
        assert!(!small.is_empty() && small.len() < 200);
    }

    #[test]
    fn different_seeds_stream_different_samples() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 });
        let c = catalog();
        let sizes: HashSet<usize> = (0..20)
            .map(|s| {
                open_stream(
                    &plan,
                    &c,
                    &ExecOptions {
                        seed: s,
                        ..Default::default()
                    },
                )
                .unwrap()
                .collect_rows(64)
                .unwrap()
                .len()
            })
            .collect();
        assert!(sizes.len() > 1, "seed ignored");
    }

    #[test]
    fn system_sampling_rewrites_lineage_to_blocks() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::System { p: 1.0 });
        let c = catalog();
        let rows = open_stream(&plan, &c, &ExecOptions::default())
            .unwrap()
            .collect_rows(13)
            .unwrap();
        assert_eq!(rows.len(), 200);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.lineage, vec![(i as u64) / 16]);
        }
    }

    #[test]
    fn wor_sample_streams_exact_count() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Wor { size: 40 });
        let c = catalog();
        let rows = open_stream(
            &plan,
            &c,
            &ExecOptions {
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap()
        .collect_rows(7)
        .unwrap();
        assert_eq!(rows.len(), 40);
        let distinct: HashSet<u64> = rows.iter().map(|r| r.lineage[0]).collect();
        assert_eq!(distinct.len(), 40);
    }

    #[test]
    fn union_samples_dedups_by_lineage() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.4 }));
        let c = catalog();
        let rows = open_stream(
            &plan,
            &c,
            &ExecOptions {
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .collect_rows(16)
        .unwrap();
        let distinct: HashSet<&Vec<u64>> = rows.iter().map(|r| &r.lineage).collect();
        assert_eq!(distinct.len(), rows.len(), "duplicate lineage survived");
    }

    #[test]
    fn progress_tracks_scan_coverage() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
        let c = catalog();
        let mut s = open_stream(
            &plan,
            &c,
            &ExecOptions {
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // Probe side untouched, build side already complete.
        assert_eq!(s.progress(), vec![(0, 200), (1, 1)]);
        let mut last = 0;
        while !s.next_chunk(32).unwrap().is_empty() {
            let p = s.progress();
            assert!(p[0].0 > last && p[0].0 <= 200, "monotone scan coverage");
            last = p[0].0;
            assert_eq!(p[0].1, 200);
            assert_eq!(p[1], (1, 1));
        }
        assert_eq!(s.progress()[0], (200, 200), "drained scan is complete");
    }

    #[test]
    fn progress_counts_blocks_for_system_sampling() {
        // t has block_rows = 16 → 13 blocks (200 rows).
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::System { p: 1.0 });
        let c = catalog();
        let mut s = open_stream(&plan, &c, &ExecOptions::default()).unwrap();
        assert_eq!(s.progress(), vec![(0, 13)]);
        s.next_chunk(20).unwrap(); // 20 rows scanned → 2 blocks covered
        assert_eq!(s.progress(), vec![(2, 13)]);
        while !s.next_chunk(64).unwrap().is_empty() {}
        assert_eq!(s.progress(), vec![(13, 13)]);
    }

    #[test]
    fn progress_over_materialized_wor_counts_sample_rows() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Wor { size: 40 });
        let c = catalog();
        let mut s = open_stream(
            &plan,
            &c,
            &ExecOptions {
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(s.progress(), vec![(0, 40)]);
        s.next_chunk(15).unwrap();
        assert_eq!(s.progress(), vec![(15, 40)]);
        while !s.next_chunk(64).unwrap().is_empty() {}
        assert_eq!(s.progress(), vec![(40, 40)]);
    }

    #[test]
    fn union_progress_is_not_complete_until_both_branches_drain() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.4 }));
        let c = catalog();
        let mut s = open_stream(
            &plan,
            &c,
            &ExecOptions {
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut complete_since = None;
        let mut chunks = 0;
        loop {
            let chunk = s.next_chunk(16).unwrap();
            let (consumed, total) = s.progress()[0];
            if chunk.is_empty() {
                assert_eq!((consumed, total), (200, 200));
                break;
            }
            chunks += 1;
            // Once coverage claims completion, no further rows may arrive —
            // the old max-of-branches report declared completion when the
            // first branch drained, while tuples unique to the second were
            // still streaming in.
            assert!(
                complete_since.is_none(),
                "rows arrived after completion was claimed at chunk {complete_since:?}"
            );
            if consumed >= total {
                complete_since = Some(chunks);
            }
        }
    }

    #[test]
    fn system_over_wor_progress_reports_complete_not_inflated() {
        // The WOR sample's consumed count indexes *sample* rows, not base
        // row ids; block coverage is unknowable, so it must be reported
        // complete rather than converted (which would claim ~1 of 13 blocks
        // and inflate scaled estimates ~13x).
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Wor { size: 40 })
            .sample(SamplingMethod::System { p: 1.0 });
        let c = catalog();
        let mut s = open_stream(
            &plan,
            &c,
            &ExecOptions {
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        s.next_chunk(15).unwrap();
        assert_eq!(s.progress(), vec![(13, 13)]);
    }

    /// Drain a stream into rows with the given chunk hint.
    fn drain(mut s: ChunkStream, hint: usize) -> Vec<Row> {
        let mut out = Vec::new();
        loop {
            let chunk = s.next_chunk(hint).unwrap();
            if chunk.is_empty() {
                return out;
            }
            out.extend(chunk);
        }
    }

    /// Element-wise sum of per-worker progress reports.
    fn summed_progress(streams: &[ChunkStream]) -> Vec<(u64, u64)> {
        let mut total = vec![(0u64, 0u64); streams[0].relations().len()];
        for s in streams {
            for (t, (c, n)) in total.iter_mut().zip(s.progress()) {
                t.0 += c;
                t.1 += n;
            }
        }
        total
    }

    #[test]
    fn partitioned_streams_are_sendable() {
        fn assert_send<T: Send>() {}
        assert_send::<ChunkStream>();
    }

    #[test]
    fn one_partition_is_the_sequential_stream() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .filter(col("v").gt_eq(lit(10.0)));
        let c = catalog();
        let opts = ExecOptions {
            seed: 11,
            ..Default::default()
        };
        let seq = open_stream(&plan, &c, &opts)
            .unwrap()
            .collect_rows(64)
            .unwrap();
        let mut parts = open_stream_partitioned(&plan, &c, &opts, 1).unwrap();
        assert_eq!(parts.len(), 1);
        let rows = parts.pop().unwrap().collect_rows(64).unwrap();
        assert_eq!(rows, seq, "parts = 1 must be byte-identical to open_stream");
    }

    #[test]
    fn partitioned_scan_concatenates_to_the_sequential_rows() {
        // No per-tuple Bernoulli on the spine → the union of the worker
        // slices IS the sequential realization, in worker-index order.
        let c = catalog();
        for plan in [
            LogicalPlan::scan("t"),
            LogicalPlan::scan("t")
                .filter(col("v").gt_eq(lit(25.0)))
                .project(vec![(col("v").mul(lit(2.0)), "vv".into())]),
            LogicalPlan::scan("t").sample(SamplingMethod::Wor { size: 40 }),
            LogicalPlan::scan("t").sample(SamplingMethod::System { p: 0.6 }),
            LogicalPlan::scan("t").join_on(LogicalPlan::scan("d"), col("k").eq(col("dk"))),
        ] {
            let opts = ExecOptions {
                seed: 5,
                ..Default::default()
            };
            let seq = open_stream(&plan, &c, &opts)
                .unwrap()
                .collect_rows(32)
                .unwrap();
            for parts in [2usize, 3, 5] {
                let streams = open_stream_partitioned(&plan, &c, &opts, parts).unwrap();
                assert_eq!(streams.len(), parts);
                let rows: Vec<Row> = streams.into_iter().flat_map(|s| drain(s, 17)).collect();
                assert_eq!(rows, seq, "parts={parts} plan={plan:?}");
            }
        }
    }

    #[test]
    fn partitioned_bernoulli_slices_are_disjoint_and_deterministic() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 });
        let c = catalog();
        let opts = ExecOptions {
            seed: 9,
            ..Default::default()
        };
        let collect = || -> Vec<Vec<Row>> {
            open_stream_partitioned(&plan, &c, &opts, 4)
                .unwrap()
                .into_iter()
                .map(|s| drain(s, 16))
                .collect()
        };
        let a = collect();
        assert_eq!(a, collect(), "same (plan, seed, parts) must replay exactly");
        let all: Vec<u64> = a.iter().flatten().map(|r| r.lineage[0]).collect();
        let distinct: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len(), "worker slices must be disjoint");
        assert!(all.len() > 50 && all.len() < 150, "p=0.5 of 200 rows");
        // Worker slices are contiguous and ordered: every row of worker w
        // precedes every row of worker w+1.
        for w in 1..a.len() {
            let prev_max = a[w - 1].iter().map(|r| r.lineage[0]).max();
            let cur_min = a[w].iter().map(|r| r.lineage[0]).min();
            if let (Some(p), Some(c)) = (prev_max, cur_min) {
                assert!(p < c, "slice {w} overlaps slice {}", w - 1);
            }
        }
    }

    #[test]
    fn partitioned_progress_sums_to_full_relation_coverage() {
        // t: 200 rows; d joins as a fully-materialized build side.
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
        let c = catalog();
        let mut streams = open_stream_partitioned(
            &plan,
            &c,
            &ExecOptions {
                seed: 1,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        assert_eq!(summed_progress(&streams), vec![(0, 200), (3, 3)]);
        let mut last = 0u64;
        loop {
            let mut any = false;
            for s in streams.iter_mut() {
                any |= !s.next_chunk(16).unwrap().is_empty();
            }
            let p = summed_progress(&streams);
            assert!(p[0].0 >= last && p[0].1 == 200, "monotone summed coverage");
            last = p[0].0;
            if !any {
                break;
            }
        }
        assert_eq!(summed_progress(&streams)[0], (200, 200));
    }

    #[test]
    fn partitioned_system_blocks_sum_to_block_count() {
        // 200 rows, block_rows 16 → 13 blocks split over 4 workers.
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::System { p: 1.0 });
        let c = catalog();
        let mut streams = open_stream_partitioned(&plan, &c, &ExecOptions::default(), 4).unwrap();
        assert_eq!(summed_progress(&streams)[0], (0, 13));
        for s in streams.iter_mut() {
            while !s.next_chunk(64).unwrap().is_empty() {}
        }
        assert_eq!(summed_progress(&streams)[0], (13, 13));
    }

    #[test]
    fn oversubscribed_partitioning_degrades_gracefully() {
        // d has 10 rows (one block): far more workers than blocks — extra
        // workers get empty slices and drain immediately.
        let plan = LogicalPlan::scan("d");
        let c = catalog();
        let streams = open_stream_partitioned(&plan, &c, &ExecOptions::default(), 64).unwrap();
        assert_eq!(streams.len(), 64);
        let rows: Vec<Row> = streams.into_iter().flat_map(|s| drain(s, 4)).collect();
        assert_eq!(rows.len(), 10, "every row exactly once");
    }

    #[test]
    fn partitioned_union_and_aggregate_and_zero_parts_rejected() {
        let c = catalog();
        let union = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.4 }));
        let err = open_stream_partitioned(&union, &c, &ExecOptions::default(), 2).unwrap_err();
        assert!(err.to_string().contains("UNION"), "{err}");
        let agg = LogicalPlan::scan("t").aggregate(vec![sa_plan::AggSpec::count_star("c")]);
        assert!(open_stream_partitioned(&agg, &c, &ExecOptions::default(), 2).is_err());
        let scan = LogicalPlan::scan("t");
        assert!(open_stream_partitioned(&scan, &c, &ExecOptions::default(), 0).is_err());
    }

    #[test]
    fn aggregate_root_rejected() {
        let plan = LogicalPlan::scan("t").aggregate(vec![sa_plan::AggSpec::count_star("c")]);
        assert!(open_stream(&plan, &catalog(), &ExecOptions::default()).is_err());
    }

    #[test]
    fn exhausted_stream_keeps_returning_empty() {
        let plan = LogicalPlan::scan("d");
        let mut s = open_stream(&plan, &catalog(), &ExecOptions::default()).unwrap();
        let mut total = 0;
        loop {
            let chunk = s.next_chunk(4).unwrap();
            if chunk.is_empty() {
                break;
            }
            total += chunk.len();
        }
        assert_eq!(total, 10);
        assert_eq!(s.rows_yielded(), 10);
        assert!(s.next_chunk(4).unwrap().is_empty());
    }

    #[test]
    fn filter_under_project_fuses_and_matches_unfused() {
        // With pushdown on, a Filter directly on a Scan is eaten by the
        // scan itself (masked before materialization); with pushdown off,
        // Project(Filter(x)) falls back to the fused FilterProject
        // operator. Both shapes must produce identical rows.
        let fused = LogicalPlan::scan("t")
            .filter(col("v").gt_eq(lit(25.0)).and(col("k").lt(lit(8i64))))
            .project(vec![
                (col("v").mul(lit(2.0)), "vv".into()),
                (col("k"), "k".into()),
            ]);
        let c = catalog();
        let streams = open_stream_partitioned(&fused, &c, &ExecOptions::default(), 1).unwrap();
        match &streams[0].root {
            Node::Project { input, .. } => assert!(
                matches!(&**input, Node::Scan { gather, .. } if gather.predicate.is_some()),
                "filter directly on a scan must push into the scan"
            ),
            other => panic!("expected Project over predicated Scan, got {other:?}"),
        }
        let off = ExecOptions {
            disable_pushdown: true,
            ..Default::default()
        };
        let streams = open_stream_partitioned(&fused, &c, &off, 1).unwrap();
        assert!(
            matches!(streams[0].root, Node::FilterProject { .. }),
            "with pushdown off, filter under project must fuse into FilterProject"
        );
        for hint in [1, 9, 100] {
            assert_stream_matches_batch(&fused, hint);
        }
    }

    #[test]
    fn fused_filter_project_drains_cleanly_under_another_project() {
        // Regression: the fused operator's exhaustion chunk must carry the
        // PROJECTED column layout (kernels are remapped onto `used`), or an
        // expression-evaluating consumer above — here an outer Project —
        // errors on the final empty pull instead of draining.
        let plan = LogicalPlan::scan("t")
            .filter(col("v").gt_eq(lit(10.0)))
            .project(vec![(col("v").mul(lit(2.0)), "x".into())])
            .project(vec![(col("x").add(lit(1.0)), "y".into())]);
        for hint in [1, 7, 1000] {
            assert_stream_matches_batch(&plan, hint);
        }
        // Exhaustion also stays clean when the fused operator feeds a
        // join's probe side (join_output evaluates over the empty chunk).
        let joined = LogicalPlan::scan("t")
            .filter(col("v").gt_eq(lit(10.0)))
            .project(vec![(col("k"), "k".into())])
            .join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
        assert_stream_matches_batch(&joined, 64);
    }

    #[test]
    fn columnar_batches_match_row_adapter() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.6 })
            .filter(col("v").gt_eq(lit(10.0)));
        let c = catalog();
        let opts = ExecOptions {
            seed: 4,
            ..Default::default()
        };
        let mut via_batch = open_stream(&plan, &c, &opts).unwrap();
        let mut via_rows = open_stream(&plan, &c, &opts).unwrap();
        loop {
            let batch = via_batch.next_batch(33).unwrap();
            let rows = via_rows.next_chunk(33).unwrap();
            assert_eq!(batch.to_rows(), rows);
            if rows.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn nan_join_keys_match_like_the_batch_executor() {
        // Value::total_cmp says NaN == NaN, and the batch executor's
        // Value-keyed hash join honours that — the fingerprint join must
        // too (hash_cell already hashes every NaN identically; cell_eq
        // must agree).
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Float),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("l", schema);
        for v in [f64::NAN, 1.0, 2.0, f64::NAN] {
            b.push_row(&[Value::Float(v), Value::Float(10.0)]).unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        let schema = Schema::new(vec![
            Field::new("rk", DataType::Float),
            Field::new("w", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("r", schema);
        for v in [f64::NAN, 2.0] {
            b.push_row(&[Value::Float(v), Value::Float(20.0)]).unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        let plan = LogicalPlan::scan("l").join_on(LogicalPlan::scan("r"), col("k").eq(col("rk")));
        let batch = execute(&plan, &c, &ExecOptions::default()).unwrap();
        let rows = open_stream(&plan, &c, &ExecOptions::default())
            .unwrap()
            .collect_rows(8)
            .unwrap();
        assert_eq!(rows.len(), 3, "two NaN matches + the 2.0 match");
        assert_eq!(rows, batch.rows);
    }

    #[test]
    fn shared_stream_at_origin_zero_matches_private_stream() {
        // A fresh hub's first cursor starts at physical row 0, and the
        // Bernoulli seed derivation is identical to the private path — so
        // the realization must be byte-identical to open_stream.
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .filter(col("v").gt_eq(lit(10.0)))
            .project(vec![(col("v").mul(lit(2.0)), "vv".into())]);
        let c = catalog();
        let opts = ExecOptions {
            seed: 11,
            ..Default::default()
        };
        let private = open_stream(&plan, &c, &opts)
            .unwrap()
            .collect_rows(64)
            .unwrap();
        let hub = Arc::new(SharedTableScan::new(c.get("t").unwrap(), 32));
        let shared = open_shared_stream(&plan, &c, &opts, &hub)
            .unwrap()
            .collect_rows(17)
            .unwrap();
        assert_eq!(shared, private);
        assert_eq!(hub.rows_gathered(), 200);
    }

    #[test]
    fn shared_stream_progress_covers_the_whole_relation() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 });
        let c = catalog();
        let hub = Arc::new(SharedTableScan::new(c.get("t").unwrap(), 64));
        // Advance the hub so the stream attaches mid-scan.
        let mut warm = hub.attach();
        warm.next_batch(64).unwrap();
        drop(warm);
        let mut s = open_shared_stream(
            &plan,
            &c,
            &ExecOptions {
                seed: 3,
                ..Default::default()
            },
            &hub,
        )
        .unwrap();
        assert_eq!(s.progress(), vec![(0, 200)]);
        let mut last = 0;
        while !s.next_chunk(32).unwrap().is_empty() {
            let (consumed, total) = s.progress()[0];
            assert!(consumed > last && total == 200);
            last = consumed;
        }
        assert_eq!(s.progress(), vec![(200, 200)], "full circular coverage");
    }

    #[test]
    fn ineligible_plans_are_rejected_for_shared_scans() {
        let c = catalog();
        let hub = Arc::new(SharedTableScan::new(c.get("t").unwrap(), 64));
        let join = LogicalPlan::scan("t").join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
        let system = LogicalPlan::scan("t").sample(SamplingMethod::System { p: 0.5 });
        let wor = LogicalPlan::scan("t").sample(SamplingMethod::Wor { size: 10 });
        let other = LogicalPlan::scan("d");
        for plan in [&join, &system, &wor] {
            assert!(shared_scan_table(plan).is_none());
            assert!(open_shared_stream(plan, &c, &ExecOptions::default(), &hub).is_err());
        }
        // Eligible shape, wrong table for this hub.
        assert_eq!(shared_scan_table(&other), Some("d"));
        let err = open_shared_stream(&other, &c, &ExecOptions::default(), &hub).unwrap_err();
        assert!(err.to_string().contains("'t'"), "{err}");
    }

    #[test]
    fn join_fingerprint_table_checks_stored_keys() {
        // Cross-type keys: t.k is Int, join against a Float-typed key
        // column — numeric equality must hold and the fingerprint bucket's
        // stored-key verification must reject non-equal keys that share a
        // bucket.
        let mut c = catalog();
        let schema = Schema::new(vec![
            Field::new("fk", DataType::Float),
            Field::new("u", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("f", schema);
        for i in 0..10 {
            b.push_row(&[Value::Float(i as f64), Value::Float(100.0 + i as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        let plan = LogicalPlan::scan("t").join_on(LogicalPlan::scan("f"), col("k").eq(col("fk")));
        let batch = execute(&plan, &c, &ExecOptions::default()).unwrap();
        let rows = open_stream(&plan, &c, &ExecOptions::default())
            .unwrap()
            .collect_rows(64)
            .unwrap();
        assert_eq!(rows, batch.rows);
        assert_eq!(rows.len(), 200, "every t row matches exactly one f row");
    }

    fn shuffled(seed: u64) -> ExecOptions {
        ExecOptions {
            seed,
            shuffle_scan: true,
            ..Default::default()
        }
    }

    #[test]
    fn shuffled_scan_permutes_blocks_and_covers_every_row() {
        // An unsampled shuffled scan emits every row exactly once, in a
        // non-physical order (13 blocks of 16 rows — the identity
        // permutation would be astronomically unlucky across seeds).
        let c = catalog();
        let plan = LogicalPlan::scan("t");
        let mut permuted = false;
        for seed in 0..4 {
            let rows = open_stream(&plan, &c, &shuffled(seed))
                .unwrap()
                .collect_rows(64)
                .unwrap();
            assert_eq!(rows.len(), 200);
            let mut ids: Vec<u64> = rows.iter().map(|r| r.lineage[0]).collect();
            if ids.windows(2).any(|w| w[0] > w[1]) {
                permuted = true;
            }
            ids.sort_unstable();
            assert_eq!(ids, (0..200).collect::<Vec<u64>>(), "seed={seed}");
        }
        assert!(permuted, "no seed permuted the block order");
    }

    #[test]
    fn shuffled_scan_is_byte_reproducible_and_chunk_independent() {
        let c = catalog();
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.4 });
        let collect = |hint: usize| {
            open_stream(&plan, &c, &shuffled(9))
                .unwrap()
                .collect_rows(hint)
                .unwrap()
        };
        let a = collect(3);
        let b = collect(512);
        assert_eq!(a, b, "same seed, same realization, any chunk hint");
        let other = open_stream(&plan, &c, &shuffled(10))
            .unwrap()
            .collect_rows(64)
            .unwrap();
        assert_ne!(a, other, "the shuffle seed must matter");
    }

    #[test]
    fn shuffled_scan_keeps_physical_lineage_and_progress() {
        // Lineage ids stay physical row positions (the estimator keys on
        // them); progress counts emitted rows against the full table.
        let c = catalog();
        let plan = LogicalPlan::scan("t");
        let mut stream = open_stream(&plan, &c, &shuffled(5)).unwrap();
        // A shuffled scan under-fills the hint at block boundaries (one
        // permuted block per gather keeps the columnar copy contiguous).
        let chunk = stream.next_batch(48).unwrap();
        assert_eq!(chunk.rows(), 16, "one 16-row block per gather");
        for ids in &chunk.lineage {
            assert!(ids.iter().all(|&i| i < 200));
        }
        assert_eq!(stream.progress(), vec![(16, 200)]);
    }

    #[test]
    fn shuffled_scan_partitions_stay_disjoint_and_exhaustive() {
        let c = catalog();
        let plan = LogicalPlan::scan("t");
        let streams = open_stream_partitioned(&plan, &c, &shuffled(21), 3).unwrap();
        let mut all: Vec<u64> = Vec::new();
        for s in streams {
            let rows = s.collect_rows(32).unwrap();
            all.extend(rows.iter().map(|r| r.lineage[0]));
        }
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn shuffle_off_keeps_the_physical_scan_order() {
        // The shuffle seed is drawn from the master RNG only when the flag
        // is on, so off-mode streams are untouched: physical order, same
        // realization as before the flag existed.
        let c = catalog();
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 });
        let off = ExecOptions {
            seed: 3,
            shuffle_scan: false,
            ..Default::default()
        };
        let rows = open_stream(&plan, &c, &off)
            .unwrap()
            .collect_rows(64)
            .unwrap();
        let ids: Vec<u64> = rows.iter().map(|r| r.lineage[0]).collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "off-mode lineage must stay monotone (physical scan order)"
        );
    }

    #[test]
    fn shuffled_scan_refuses_shared_hubs() {
        let c = catalog();
        let hub = Arc::new(SharedTableScan::new(c.get("t").unwrap(), 64));
        let err = open_shared_stream(&LogicalPlan::scan("t"), &c, &shuffled(1), &hub).unwrap_err();
        assert!(err.to_string().contains("shared"), "{err}");
    }

    #[test]
    fn progress_tree_tracks_union_branches() {
        // Branch 1 drains fully before branch 2 starts; the tree exposes
        // per-branch coverage plus the second_started flip the online
        // driver's per-branch scaling keys on.
        let c = catalog();
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 }));
        let mut stream = open_stream(&plan, &c, &ExecOptions::default()).unwrap();
        let mut saw_first_only = false;
        let mut saw_second = false;
        loop {
            let chunk = stream.next_batch(16).unwrap();
            match stream.progress_tree() {
                ProgressTree::Union {
                    left,
                    right,
                    second_started,
                } => {
                    let (ProgressTree::Leaf(l), ProgressTree::Leaf(r)) = (*left, *right) else {
                        panic!("union branches over one scan each must be leaves");
                    };
                    assert_eq!(l.len(), 1);
                    assert_eq!(r.len(), 1);
                    if second_started {
                        saw_second = true;
                        assert_eq!(l[0], (200, 200), "branch 1 drains before branch 2");
                    } else {
                        saw_first_only = true;
                        assert_eq!(r[0].0, 0, "branch 2 untouched while branch 1 streams");
                    }
                }
                other => panic!("union plan must report a union progress tree, got {other:?}"),
            }
            if chunk.is_empty() {
                break;
            }
        }
        assert!(saw_first_only && saw_second);
        // Flat progress still reports the conservative min view.
        assert_eq!(stream.progress(), vec![(200, 200)]);
    }

    #[test]
    fn progress_tree_flattens_union_free_joins() {
        let c = catalog();
        let plan = LogicalPlan::scan("t").join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
        let mut stream = open_stream(&plan, &c, &ExecOptions::default()).unwrap();
        stream.next_batch(32).unwrap();
        let ProgressTree::Leaf(cov) = stream.progress_tree() else {
            panic!("a union-free join must flatten to one leaf");
        };
        assert_eq!(cov.len(), 2, "probe relation first, build relation after");
        assert_eq!(cov[1], (1, 1), "materialized build side is fully covered");
    }
}
