//! Chunked, pull-based plan execution — the feed of the online driver.
//!
//! [`crate::execute`] materializes every operator's full output, which is
//! fine for one-shot estimation but useless for *online aggregation*: there
//! the consumer wants the first tuples of the sampled result immediately,
//! an estimate after every chunk, and the right to stop early. This module
//! provides exactly that: [`open_stream`] compiles a (non-aggregate) plan
//! into a small Volcano-style operator tree whose [`ChunkStream::next_chunk`]
//! yields result rows — with full per-base-relation lineage, identical in
//! content to what the batch executor would produce — a chunk at a time.
//!
//! Streaming vs blocking operators:
//!
//! * scans, Bernoulli/`SYSTEM` samples, filters and projections stream;
//! * a join materializes its **build** (right) side at open and streams the
//!   probe side through it — the classic streaming hash join;
//! * fixed-size samplers (`WOR`, with-replacement) are blocking by nature
//!   (they must see their whole input's cardinality), so their subtree is
//!   materialized at open and drained in chunks.
//!
//! Randomness: every stochastic operator draws its own RNG seed from a
//! master RNG seeded with [`crate::ExecOptions::seed`] during `open`, in
//! plan traversal order — so a given `(plan, seed)` pair always streams the
//! *same* sample realization, chunk-size independent. (The realization
//! differs from [`crate::execute`]'s for the same seed: the batch executor
//! interleaves all operators' draws on one RNG stream, which a pull-based
//! pipeline cannot reproduce.)

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sa_expr::{bind, eval, eval_predicate, Expr};
use sa_plan::LogicalPlan;
use sa_sampling::SamplingMethod;
use sa_storage::{Catalog, Schema, SchemaRef, Table, Value};

use crate::error::ExecError;
use crate::exec::{
    base_table, exec_node, scan_schema, split_join_condition, EquiKeys, ExecOptions, Row,
};
use crate::Result;

/// A chunked executor over a (non-aggregate) plan. Obtained from
/// [`open_stream`]; rows come out of [`ChunkStream::next_chunk`].
#[derive(Debug)]
pub struct ChunkStream {
    schema: SchemaRef,
    relations: Vec<String>,
    root: Node,
    rows_out: u64,
}

impl ChunkStream {
    /// Output schema of the streamed rows.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Base-relation aliases aligned with each row's lineage.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// Total rows yielded so far.
    pub fn rows_yielded(&self) -> u64 {
        self.rows_out
    }

    /// Pull the next chunk of roughly `hint` rows (operators may over- or
    /// under-fill; a join chunk, e.g., carries every match of its probe
    /// rows). An **empty chunk means the stream is exhausted** — operators
    /// keep pulling internally until they can either emit a row or prove
    /// there are none left.
    pub fn next_chunk(&mut self, hint: usize) -> Result<Vec<Row>> {
        let hint = hint.max(1);
        let chunk = self.root.next_chunk(hint)?;
        self.rows_out += chunk.len() as u64;
        Ok(chunk)
    }

    /// Per-relation **coverage** of the stream so far, aligned with
    /// [`ChunkStream::relations`]: `(consumed, available)` sampling units of
    /// each base relation whose tuples have had the chance to reach the
    /// output yet. A scan that has emitted its first `k` of `N` rows reports
    /// `(k, N)`; a fully materialized side (a join's build side, a drained
    /// blocking sampler) reports complete coverage; `SYSTEM`-sampled
    /// relations count blocks (their sampling/lineage unit).
    ///
    /// Online aggregation uses this to scale mid-stream estimates to the
    /// full population: under a random scan order, the consumed prefix is a
    /// WOR(`consumed`, `available`) sample of the relation, which compacts
    /// onto the plan's GUS (Proposition 8).
    pub fn progress(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.relations.len());
        self.root.progress(&mut out);
        debug_assert_eq!(out.len(), self.relations.len());
        out
    }

    /// Drain the stream into one vector (testing / fallback convenience).
    pub fn collect_rows(mut self, hint: usize) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        loop {
            let chunk = self.next_chunk(hint)?;
            if chunk.is_empty() {
                return Ok(out);
            }
            out.extend(chunk);
        }
    }
}

/// Compile `plan` into a pull-based [`ChunkStream`]. The plan must not
/// contain an `Aggregate` node — the online driver aggregates incrementally
/// on top of the stream (pass the aggregate's *input* subtree).
pub fn open_stream(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> Result<ChunkStream> {
    plan.validate(catalog)?;
    let mut master = StdRng::seed_from_u64(opts.seed);
    let (root, schema, relations) = build(plan, catalog, &mut master)?;
    Ok(ChunkStream {
        schema,
        relations,
        root,
        rows_out: 0,
    })
}

/// One operator of the streaming pipeline.
#[derive(Debug)]
enum Node {
    /// Base-table scan: emits `(row values, lineage = [row id])`.
    Scan {
        table: Arc<Table>,
        next: u64,
        count: u64,
    },
    /// Tuple-level Bernoulli sampling with its own RNG stream.
    Bernoulli {
        p: f64,
        rng: StdRng,
        input: Box<Node>,
    },
    /// Block-level Bernoulli: the keep decisions are drawn at open (one coin
    /// per block), rows ride along with their block and have their lineage
    /// rewritten to the block id.
    System {
        keep: Vec<bool>,
        base: Arc<Table>,
        /// True when the input chain is a streaming scan prefix, so its
        /// consumed-row count is a base-table row-id prefix that converts to
        /// block coverage. False over a materialized sampler (WOR below
        /// SYSTEM), whose consumed count indexes *sample* rows — block
        /// coverage is then unknowable and reported as complete.
        row_prefix: bool,
        input: Box<Node>,
    },
    /// A blocking subtree (WOR / with-replacement sample), materialized at
    /// open and drained in chunks.
    Materialized { rows: Vec<Row>, next: usize },
    /// Relational selection.
    Filter { predicate: Expr, input: Box<Node> },
    /// Projection.
    Project { exprs: Vec<Expr>, input: Box<Node> },
    /// Streaming hash join: build side materialized, probe side streamed.
    HashJoin {
        probe: Box<Node>,
        build_rows: Vec<Row>,
        build_rels: usize,
        table: HashMap<Vec<Value>, Vec<usize>>,
        keys: EquiKeys,
        residual: Option<Expr>,
    },
    /// Nested-loop join (cross product / arbitrary θ): right side
    /// materialized, left side streamed.
    NestedLoop {
        left: Box<Node>,
        right_rows: Vec<Row>,
        build_rels: usize,
        residual: Option<Expr>,
    },
    /// Union of two independent samplings of one expression, deduplicated
    /// by lineage (Proposition 7): left drained first, then right.
    Dedup {
        first: Box<Node>,
        second: Box<Node>,
        on_second: bool,
        seen: HashSet<Vec<u64>>,
    },
}

/// Build the operator tree; returns `(node, schema, relations)`.
fn build(
    plan: &LogicalPlan,
    catalog: &Catalog,
    master: &mut StdRng,
) -> Result<(Node, SchemaRef, Vec<String>)> {
    match plan {
        LogicalPlan::Scan { table, alias } => {
            let (t, schema) = scan_schema(catalog, table, alias)?;
            let count = t.row_count();
            Ok((
                Node::Scan {
                    table: t,
                    next: 0,
                    count,
                },
                schema,
                vec![alias.clone()],
            ))
        }
        LogicalPlan::Sample { method, input } => {
            method.validate().map_err(ExecError::Sampling)?;
            match method {
                SamplingMethod::Bernoulli { p } => {
                    let rng = StdRng::seed_from_u64(master.random::<u64>());
                    let (node, schema, relations) = build(input, catalog, master)?;
                    Ok((
                        Node::Bernoulli {
                            p: *p,
                            rng,
                            input: Box::new(node),
                        },
                        schema,
                        relations,
                    ))
                }
                SamplingMethod::System { p } => {
                    let base = base_table(input, catalog)?;
                    let mut rng = StdRng::seed_from_u64(master.random::<u64>());
                    let keep: Vec<bool> = (0..base.block_count())
                        .map(|_| rng.random::<f64>() < *p)
                        .collect();
                    let (node, schema, relations) = build(input, catalog, master)?;
                    let row_prefix = node.is_scan_prefix();
                    Ok((
                        Node::System {
                            keep,
                            base,
                            row_prefix,
                            input: Box::new(node),
                        },
                        schema,
                        relations,
                    ))
                }
                SamplingMethod::Wor { .. } | SamplingMethod::WithReplacement { .. } => {
                    // Fixed-size samplers need their input's full cardinality
                    // up front; materialize the whole subtree via the batch
                    // executor with a derived RNG.
                    let mut rng = StdRng::seed_from_u64(master.random::<u64>());
                    let rs = exec_node(plan, catalog, &mut rng)?;
                    Ok((
                        Node::Materialized {
                            rows: rs.rows,
                            next: 0,
                        },
                        rs.schema,
                        rs.relations,
                    ))
                }
            }
        }
        LogicalPlan::Filter { predicate, input } => {
            let (node, schema, relations) = build(input, catalog, master)?;
            let bound = bind(predicate, &schema)?;
            Ok((
                Node::Filter {
                    predicate: bound,
                    input: Box::new(node),
                },
                schema,
                relations,
            ))
        }
        LogicalPlan::Project { exprs, input } => {
            let (node, in_schema, relations) = build(input, catalog, master)?;
            let mut bound = Vec::with_capacity(exprs.len());
            let mut fields = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                let be = bind(e, &in_schema)?;
                let dt =
                    sa_expr::data_type(&be, &in_schema)?.unwrap_or(sa_storage::DataType::Float);
                fields.push(sa_storage::Field::new(name, dt));
                bound.push(be);
            }
            let schema = Arc::new(Schema::new(fields).map_err(ExecError::Storage)?);
            Ok((
                Node::Project {
                    exprs: bound,
                    input: Box::new(node),
                },
                schema,
                relations,
            ))
        }
        LogicalPlan::Join {
            condition,
            left,
            right,
        } => {
            let (probe, l_schema, l_rels) = build(left, catalog, master)?;
            // Build side: materialized via the batch executor.
            let mut rng = StdRng::seed_from_u64(master.random::<u64>());
            let r = exec_node(right, catalog, &mut rng)?;
            let schema = Arc::new(l_schema.join(&r.schema)?);
            let mut relations = l_rels;
            relations.extend(r.relations.iter().cloned());
            let (keys, residual) = match condition {
                None => (vec![], None),
                Some(c) => split_join_condition(c, &l_schema, &r.schema)?,
            };
            let residual = residual.map(|e| bind(&e, &schema)).transpose()?;
            let build_rels = r.relations.len();
            let node = if keys.is_empty() {
                Node::NestedLoop {
                    left: Box::new(probe),
                    right_rows: r.rows,
                    build_rels,
                    residual,
                }
            } else {
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, rr) in r.rows.iter().enumerate() {
                    let key: Vec<Value> =
                        keys.iter().map(|(_, ri)| rr.values[*ri].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue; // NULL keys never match
                    }
                    table.entry(key).or_default().push(i);
                }
                Node::HashJoin {
                    probe: Box::new(probe),
                    build_rows: r.rows,
                    build_rels,
                    table,
                    keys,
                    residual,
                }
            };
            Ok((node, schema, relations))
        }
        LogicalPlan::UnionSamples { left, right } => {
            let (l, schema, relations) = build(left, catalog, master)?;
            let (r, _, _) = build(right, catalog, master)?;
            Ok((
                Node::Dedup {
                    first: Box::new(l),
                    second: Box::new(r),
                    on_second: false,
                    seen: HashSet::new(),
                },
                schema,
                relations,
            ))
        }
        LogicalPlan::Aggregate { .. } => Err(ExecError::Unsupported(
            "open_stream streams the aggregate's input; strip the Aggregate root and \
             accumulate incrementally (see sa-online)"
                .into(),
        )),
    }
}

impl Node {
    /// Pull roughly `hint` rows. Invariant: an empty return means this
    /// operator is exhausted — filtering operators keep pulling until they
    /// can emit at least one row or their input drains.
    fn next_chunk(&mut self, hint: usize) -> Result<Vec<Row>> {
        match self {
            Node::Scan { table, next, count } => {
                let end = (*next + hint as u64).min(*count);
                let mut rows = Vec::with_capacity((end - *next) as usize);
                for rid in *next..end {
                    rows.push(Row {
                        values: table.row(rid)?,
                        lineage: vec![rid],
                    });
                }
                *next = end;
                Ok(rows)
            }
            Node::Materialized { rows, next } => {
                let end = (*next + hint).min(rows.len());
                let chunk = rows[*next..end].to_vec();
                *next = end;
                Ok(chunk)
            }
            Node::Bernoulli { p, rng, input } => loop {
                let chunk = input.next_chunk(hint)?;
                if chunk.is_empty() {
                    return Ok(chunk);
                }
                let out: Vec<Row> = chunk
                    .into_iter()
                    .filter(|_| rng.random::<f64>() < *p)
                    .collect();
                if !out.is_empty() {
                    return Ok(out);
                }
            },
            Node::System {
                keep, base, input, ..
            } => loop {
                let chunk = input.next_chunk(hint)?;
                if chunk.is_empty() {
                    return Ok(chunk);
                }
                let out: Vec<Row> = chunk
                    .into_iter()
                    .filter_map(|mut row| {
                        let rid = *row.lineage.last().expect("scan lineage");
                        let block = base.block_of(rid);
                        if keep[block as usize] {
                            *row.lineage.last_mut().expect("scan lineage") = block;
                            Some(row)
                        } else {
                            None
                        }
                    })
                    .collect();
                if !out.is_empty() {
                    return Ok(out);
                }
            },
            Node::Filter { predicate, input } => loop {
                let chunk = input.next_chunk(hint)?;
                if chunk.is_empty() {
                    return Ok(chunk);
                }
                let mut out = Vec::with_capacity(chunk.len());
                for row in chunk {
                    if eval_predicate(predicate, &row.values)? {
                        out.push(row);
                    }
                }
                if !out.is_empty() {
                    return Ok(out);
                }
            },
            Node::Project { exprs, input } => {
                let chunk = input.next_chunk(hint)?;
                let mut out = Vec::with_capacity(chunk.len());
                for row in chunk {
                    let values: Result<Vec<Value>> = exprs
                        .iter()
                        .map(|e| eval(e, &row.values).map_err(ExecError::Expr))
                        .collect();
                    out.push(Row {
                        values: values?,
                        lineage: row.lineage,
                    });
                }
                Ok(out)
            }
            Node::HashJoin {
                probe,
                build_rows,
                table,
                keys,
                residual,
                ..
            } => loop {
                let chunk = probe.next_chunk(hint)?;
                if chunk.is_empty() {
                    return Ok(chunk);
                }
                let mut out = Vec::new();
                for lr in &chunk {
                    let key: Vec<Value> =
                        keys.iter().map(|(li, _)| lr.values[*li].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    let Some(matches) = table.get(&key) else {
                        continue;
                    };
                    for &i in matches {
                        join_emit(lr, &build_rows[i], residual.as_ref(), &mut out)?;
                    }
                }
                if !out.is_empty() {
                    return Ok(out);
                }
            },
            Node::NestedLoop {
                left,
                right_rows,
                residual,
                ..
            } => loop {
                let chunk = left.next_chunk(hint)?;
                if chunk.is_empty() {
                    return Ok(chunk);
                }
                let mut out = Vec::new();
                for lr in &chunk {
                    for rr in right_rows.iter() {
                        join_emit(lr, rr, residual.as_ref(), &mut out)?;
                    }
                }
                if !out.is_empty() {
                    return Ok(out);
                }
            },
            Node::Dedup {
                first,
                second,
                on_second,
                seen,
            } => loop {
                let active: &mut Node = if *on_second { second } else { first };
                let chunk = active.next_chunk(hint)?;
                if chunk.is_empty() {
                    if *on_second {
                        return Ok(chunk);
                    }
                    *on_second = true;
                    continue;
                }
                let out: Vec<Row> = chunk
                    .into_iter()
                    .filter(|row| seen.insert(row.lineage.clone()))
                    .collect();
                if !out.is_empty() {
                    return Ok(out);
                }
            },
        }
    }
}

impl Node {
    /// Append this subtree's per-relation `(consumed, available)` coverage
    /// to `out`, in scan order (see [`ChunkStream::progress`]).
    fn progress(&self, out: &mut Vec<(u64, u64)>) {
        match self {
            Node::Scan { next, count, .. } => out.push((*next, *count)),
            // A materialized blocking sampler: coverage over the *drawn
            // sample* — it stacks onto the plan's own WOR factor exactly
            // like a scan prefix stacks onto a Bernoulli.
            Node::Materialized { rows, next } => out.push((*next as u64, rows.len() as u64)),
            Node::Bernoulli { input, .. } | Node::Filter { input, .. } => input.progress(out),
            Node::Project { input, .. } => input.progress(out),
            Node::System {
                base,
                row_prefix,
                input,
                ..
            } => {
                if !*row_prefix {
                    // The input's consumed count is not a base-row prefix
                    // (a materialized sampler sits below): block coverage is
                    // unknowable, so report complete — conservative for
                    // scaling (no inflation; converges at exhaustion).
                    out.push((base.block_count(), base.block_count()));
                    return;
                }
                // Convert the row-level coverage of the underlying chain to
                // this relation's sampling unit: blocks. A partially scanned
                // block counts as covered (its tuples had their chance as a
                // group; the boundary error is at most one block).
                let mut inner = Vec::with_capacity(1);
                input.progress(&mut inner);
                let (rows_seen, _) = inner.pop().expect("sample chains are single-relation");
                let blocks_seen = if rows_seen == 0 {
                    0
                } else {
                    base.block_of(rows_seen - 1) + 1
                };
                out.push((blocks_seen, base.block_count()));
            }
            Node::HashJoin {
                probe, build_rels, ..
            } => {
                probe.progress(out);
                // Build side is fully materialized: complete coverage.
                out.extend(std::iter::repeat_n((1, 1), *build_rels));
            }
            Node::NestedLoop {
                left, build_rels, ..
            } => {
                left.progress(out);
                out.extend(std::iter::repeat_n((1, 1), *build_rels));
            }
            Node::Dedup { first, second, .. } => {
                // Both branches sample the same relations, but the union's
                // true coverage is NOT a simple function of the two scan
                // prefixes (while the second branch streams, tuples unique
                // to it are still arriving even though the first branch
                // covered every position). Report the *minimum* — coverage
                // is only complete once both branches drained — and leave
                // per-branch prefix composition to the online driver's
                // future union support (it refuses to scale union plans).
                let mut a = Vec::new();
                let mut b = Vec::new();
                first.progress(&mut a);
                second.progress(&mut b);
                for ((ca, na), (cb, _)) in a.into_iter().zip(b) {
                    out.push((ca.min(cb), na));
                }
            }
        }
    }

    /// True when this chain's consumed-row count is a prefix of base-table
    /// row ids (a scan, possibly through streaming per-row samplers) —
    /// false as soon as a materialized sampler or a block-unit rewrite sits
    /// below, because their counts index different units.
    fn is_scan_prefix(&self) -> bool {
        match self {
            Node::Scan { .. } => true,
            Node::Bernoulli { input, .. } => input.is_scan_prefix(),
            _ => false,
        }
    }
}

/// Concatenate a probe row with a build row (values and lineage), apply the
/// residual predicate, and push the combined row if it passes.
fn join_emit(lr: &Row, rr: &Row, residual: Option<&Expr>, out: &mut Vec<Row>) -> Result<()> {
    let mut values = lr.values.clone();
    values.extend(rr.values.iter().cloned());
    if let Some(pred) = residual {
        if !eval_predicate(pred, &values)? {
            return Ok(());
        }
    }
    let mut lineage = lr.lineage.clone();
    lineage.extend(rr.lineage.iter().copied());
    out.push(Row { values, lineage });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use sa_expr::{col, lit};
    use sa_storage::{DataType, Field, TableBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema).with_block_rows(16);
        for i in 0..200 {
            b.push_row(&[Value::Int(i % 10), Value::Float(i as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        let schema2 = Schema::new(vec![
            Field::new("dk", DataType::Int),
            Field::new("w", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("d", schema2);
        for i in 0..10 {
            b.push_row(&[Value::Int(i), Value::Float(10.0 * i as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    /// The streamed rows of an unsampled plan must equal the batch
    /// executor's, in order, for any chunk hint.
    fn assert_stream_matches_batch(plan: &LogicalPlan, hint: usize) {
        let c = catalog();
        let batch = execute(plan, &c, &ExecOptions::default()).unwrap();
        let stream = open_stream(plan, &c, &ExecOptions::default()).unwrap();
        assert_eq!(stream.schema().as_ref(), batch.schema.as_ref());
        assert_eq!(stream.relations(), &batch.relations[..]);
        let rows = stream.collect_rows(hint).unwrap();
        assert_eq!(rows, batch.rows, "hint={hint}");
    }

    #[test]
    fn scan_filter_project_match_batch_for_many_hints() {
        let plan = LogicalPlan::scan("t")
            .filter(col("v").gt_eq(lit(25.0)))
            .project(vec![(col("v").mul(lit(2.0)), "vv".into())]);
        for hint in [1, 3, 64, 1000] {
            assert_stream_matches_batch(&plan, hint);
        }
    }

    #[test]
    fn hash_join_matches_batch() {
        let plan = LogicalPlan::scan("t").join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
        for hint in [1, 7, 512] {
            assert_stream_matches_batch(&plan, hint);
        }
    }

    #[test]
    fn theta_and_cross_joins_match_batch() {
        // v > w is not an equi-condition → nested loop with residual.
        let theta = LogicalPlan::scan("t").join_on(LogicalPlan::scan("d"), col("v").gt(col("w")));
        let cross = LogicalPlan::scan("t").cross(LogicalPlan::scan("d"));
        for hint in [1, 4, 300] {
            assert_stream_matches_batch(&theta, hint);
            assert_stream_matches_batch(&cross, hint);
        }
    }

    #[test]
    fn chunk_sizes_do_not_change_the_sample() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.3 });
        let c = catalog();
        let collect = |hint: usize| {
            open_stream(&plan, &c, &ExecOptions { seed: 11 })
                .unwrap()
                .collect_rows(hint)
                .unwrap()
        };
        let small = collect(2);
        let big = collect(500);
        assert_eq!(small, big, "sample realization must be chunk-independent");
        assert!(!small.is_empty() && small.len() < 200);
    }

    #[test]
    fn different_seeds_stream_different_samples() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 });
        let c = catalog();
        let sizes: HashSet<usize> = (0..20)
            .map(|s| {
                open_stream(&plan, &c, &ExecOptions { seed: s })
                    .unwrap()
                    .collect_rows(64)
                    .unwrap()
                    .len()
            })
            .collect();
        assert!(sizes.len() > 1, "seed ignored");
    }

    #[test]
    fn system_sampling_rewrites_lineage_to_blocks() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::System { p: 1.0 });
        let c = catalog();
        let rows = open_stream(&plan, &c, &ExecOptions::default())
            .unwrap()
            .collect_rows(13)
            .unwrap();
        assert_eq!(rows.len(), 200);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.lineage, vec![(i as u64) / 16]);
        }
    }

    #[test]
    fn wor_sample_streams_exact_count() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Wor { size: 40 });
        let c = catalog();
        let rows = open_stream(&plan, &c, &ExecOptions { seed: 5 })
            .unwrap()
            .collect_rows(7)
            .unwrap();
        assert_eq!(rows.len(), 40);
        let distinct: HashSet<u64> = rows.iter().map(|r| r.lineage[0]).collect();
        assert_eq!(distinct.len(), 40);
    }

    #[test]
    fn union_samples_dedups_by_lineage() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.4 }));
        let c = catalog();
        let rows = open_stream(&plan, &c, &ExecOptions { seed: 3 })
            .unwrap()
            .collect_rows(16)
            .unwrap();
        let distinct: HashSet<&Vec<u64>> = rows.iter().map(|r| &r.lineage).collect();
        assert_eq!(distinct.len(), rows.len(), "duplicate lineage survived");
    }

    #[test]
    fn progress_tracks_scan_coverage() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")));
        let c = catalog();
        let mut s = open_stream(&plan, &c, &ExecOptions { seed: 1 }).unwrap();
        // Probe side untouched, build side already complete.
        assert_eq!(s.progress(), vec![(0, 200), (1, 1)]);
        let mut last = 0;
        while !s.next_chunk(32).unwrap().is_empty() {
            let p = s.progress();
            assert!(p[0].0 > last && p[0].0 <= 200, "monotone scan coverage");
            last = p[0].0;
            assert_eq!(p[0].1, 200);
            assert_eq!(p[1], (1, 1));
        }
        assert_eq!(s.progress()[0], (200, 200), "drained scan is complete");
    }

    #[test]
    fn progress_counts_blocks_for_system_sampling() {
        // t has block_rows = 16 → 13 blocks (200 rows).
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::System { p: 1.0 });
        let c = catalog();
        let mut s = open_stream(&plan, &c, &ExecOptions::default()).unwrap();
        assert_eq!(s.progress(), vec![(0, 13)]);
        s.next_chunk(20).unwrap(); // 20 rows scanned → 2 blocks covered
        assert_eq!(s.progress(), vec![(2, 13)]);
        while !s.next_chunk(64).unwrap().is_empty() {}
        assert_eq!(s.progress(), vec![(13, 13)]);
    }

    #[test]
    fn progress_over_materialized_wor_counts_sample_rows() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Wor { size: 40 });
        let c = catalog();
        let mut s = open_stream(&plan, &c, &ExecOptions { seed: 5 }).unwrap();
        assert_eq!(s.progress(), vec![(0, 40)]);
        s.next_chunk(15).unwrap();
        assert_eq!(s.progress(), vec![(15, 40)]);
        while !s.next_chunk(64).unwrap().is_empty() {}
        assert_eq!(s.progress(), vec![(40, 40)]);
    }

    #[test]
    fn union_progress_is_not_complete_until_both_branches_drain() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.4 }));
        let c = catalog();
        let mut s = open_stream(&plan, &c, &ExecOptions { seed: 3 }).unwrap();
        let mut complete_since = None;
        let mut chunks = 0;
        loop {
            let chunk = s.next_chunk(16).unwrap();
            let (consumed, total) = s.progress()[0];
            if chunk.is_empty() {
                assert_eq!((consumed, total), (200, 200));
                break;
            }
            chunks += 1;
            // Once coverage claims completion, no further rows may arrive —
            // the old max-of-branches report declared completion when the
            // first branch drained, while tuples unique to the second were
            // still streaming in.
            assert!(
                complete_since.is_none(),
                "rows arrived after completion was claimed at chunk {complete_since:?}"
            );
            if consumed >= total {
                complete_since = Some(chunks);
            }
        }
    }

    #[test]
    fn system_over_wor_progress_reports_complete_not_inflated() {
        // The WOR sample's consumed count indexes *sample* rows, not base
        // row ids; block coverage is unknowable, so it must be reported
        // complete rather than converted (which would claim ~1 of 13 blocks
        // and inflate scaled estimates ~13x).
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Wor { size: 40 })
            .sample(SamplingMethod::System { p: 1.0 });
        let c = catalog();
        let mut s = open_stream(&plan, &c, &ExecOptions { seed: 5 }).unwrap();
        s.next_chunk(15).unwrap();
        assert_eq!(s.progress(), vec![(13, 13)]);
    }

    #[test]
    fn aggregate_root_rejected() {
        let plan = LogicalPlan::scan("t").aggregate(vec![sa_plan::AggSpec::count_star("c")]);
        assert!(open_stream(&plan, &catalog(), &ExecOptions::default()).is_err());
    }

    #[test]
    fn exhausted_stream_keeps_returning_empty() {
        let plan = LogicalPlan::scan("d");
        let mut s = open_stream(&plan, &catalog(), &ExecOptions::default()).unwrap();
        let mut total = 0;
        loop {
            let chunk = s.next_chunk(4).unwrap();
            if chunk.is_empty() {
                break;
            }
            total += chunk.len();
        }
        assert_eq!(total, 10);
        assert_eq!(s.rows_yielded(), 10);
        assert!(s.next_chunk(4).unwrap().is_empty());
    }
}
