//! Shared circular scan cursors — N concurrent queries, ~1 table scan.
//!
//! A [`SharedTableScan`] is a *scan hub* for one base table: it gathers the
//! table's rows into columnar chunks **once**, in a circular order, and any
//! number of [`SharedScanCursor`]s ride the same chunk bus. A cursor that
//! attaches while the scan is at physical position `o` simply sees the rows
//! in the rotated order `o, o+1, …, N−1, 0, …, o−1` and detaches after one
//! full revolution — so late-arriving queries never restart the scan, and
//! `k` concurrent queries cost roughly one scan instead of `k`.
//!
//! ## Why the estimates stay correct (mid-scan attach = origin shift)
//!
//! Online aggregation scales a mid-stream readout by treating the consumed
//! scan prefix as a WOR(`consumed`, `N`) sample of the relation
//! (Proposition 8 of the paper — see `ChunkStream::progress`). That factor
//! depends only on *how many* of the `N` rows have had the chance to reach
//! the output, never on *which* physical positions they occupy: a
//! WOR(`k`, `N`) design is invariant under any fixed permutation of the
//! relation, and a circular shift is one. So a cursor that attaches
//! mid-scan at origin `o` reports the same `(consumed, N)` coverage shape
//! as a fresh scan, the compaction applies unchanged, and at exhaustion
//! (`consumed == N`) the factor degenerates to identity — the readout *is*
//! the batch estimate over the full sample.
//!
//! ## Mechanics
//!
//! The hub keeps a monotone **virtual head** (total rows produced since the
//! hub was created; `head mod N` is the physical scan position) and a small
//! window of produced chunks. A cursor whose position is behind the head
//! serves itself from the window; a cursor *at* the head produces the next
//! chunk (bounded by `bus_rows`, never wrapping past the table end inside
//! one chunk) and publishes it. Chunks wholly behind the slowest attached
//! cursor are evicted; a producer pauses (condvar) when the window would
//! exceed `max_lag_rows`, so one slow consumer bounds memory, not
//! correctness. Cursors detach on exhaustion and on drop — a cancelled
//! query can never wedge the hub.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use sa_obs::{Counter, EventKind, Registry};
use sa_storage::Table;

use crate::columnar::ColumnarChunk;
use crate::error::ExecError;
use crate::Result;

/// Default rows per produced bus chunk.
pub const DEFAULT_BUS_ROWS: usize = 4096;

/// Default window bound, in rows, between the head and the slowest cursor.
pub const DEFAULT_MAX_LAG_ROWS: u64 = 1 << 17;

/// A circular scan hub over one table; see the module docs. Cheap to share
/// (`Arc`), safe to attach from any thread.
#[derive(Debug)]
pub struct SharedTableScan {
    table: Arc<Table>,
    /// Columns the hub gathers into its bus chunks, as ascending table-
    /// schema indices; `None` gathers every column. A cursor can select any
    /// subset of the hub's set ([`SharedTableScan::attach_columns`]), so an
    /// engine keys hub reuse by column-set coverage.
    cols: Option<Vec<usize>>,
    bus_rows: usize,
    max_lag_rows: u64,
    /// Locked with explicit poison recovery everywhere: a reader thread
    /// that panics mid-query (always contained upstream) must not wedge
    /// every other query sharing the hub. Every mutation of `HubState`
    /// under the lock is a complete, consistent update, so the recovered
    /// view is always usable.
    state: Mutex<HubState>,
    turned: Condvar,
    obs: HubObs,
}

/// The hub's observability handles. Counter names are engine-global (same
/// name → same cell across hubs), so totals aggregate naturally; the
/// default (disabled) handles make every update a single untaken branch.
#[derive(Debug, Default)]
struct HubObs {
    registry: Registry,
    rows_gathered: Counter,
    rows_served: Counter,
    attaches: Counter,
    detaches: Counter,
    lag_stalls: Counter,
}

#[derive(Debug)]
struct HubState {
    /// Virtual scan position: total rows produced since hub creation.
    /// `head % row_count` is the physical position the scan is at.
    head: u64,
    /// Produced chunks covering the contiguous virtual range
    /// `[window start, head)`; front chunks are evicted once every attached
    /// cursor has passed them.
    window: VecDeque<BusChunk>,
    /// Virtual consumed-up-to position of each attached cursor (`None` =
    /// free slot).
    readers: Vec<Option<u64>>,
    /// Total rows gathered from storage — the "N queries ≈ 1 scan" counter.
    rows_gathered: u64,
    /// Total rows served to cursors (every cursor's consumption summed).
    /// `rows_served / rows_gathered` is the sharing amplification ratio.
    rows_served: u64,
}

#[derive(Debug)]
struct BusChunk {
    /// Virtual position of the chunk's first row.
    start: u64,
    chunk: ColumnarChunk,
}

/// A point-in-time snapshot of a hub's counters (for tests, benches and the
/// server's observability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedScanStats {
    /// Total rows gathered from storage since the hub was created.
    pub rows_gathered: u64,
    /// Total rows served to cursors; `rows_served / rows_gathered` is the
    /// hub's sharing amplification (≈ concurrent cursors per scan).
    pub rows_served: u64,
    /// Rows in the underlying table.
    pub table_rows: u64,
    /// Currently attached cursors.
    pub attached: usize,
    /// Virtual head position (`rows_gathered` twin; kept separate so a
    /// future partial-chunk producer can diverge them).
    pub head: u64,
}

impl SharedTableScan {
    /// A hub over `table` producing chunks of `bus_rows` rows (clamped to at
    /// least 1), with the default lag window.
    pub fn new(table: Arc<Table>, bus_rows: usize) -> SharedTableScan {
        SharedTableScan {
            table,
            cols: None,
            bus_rows: bus_rows.max(1),
            max_lag_rows: DEFAULT_MAX_LAG_ROWS,
            state: Mutex::new(HubState {
                head: 0,
                window: VecDeque::new(),
                readers: Vec::new(),
                rows_gathered: 0,
                rows_served: 0,
            }),
            turned: Condvar::new(),
            obs: HubObs::default(),
        }
    }

    /// Override the window bound between the head and the slowest cursor
    /// (clamped to at least one bus chunk).
    pub fn with_max_lag_rows(mut self, rows: u64) -> SharedTableScan {
        self.max_lag_rows = rows.max(self.bus_rows as u64);
        self
    }

    /// Restrict the hub to gathering `cols` (table-schema indices; sorted
    /// and deduplicated here). A full set collapses back to "all columns".
    /// Only cursors whose needs are a subset of the hub's set can attach
    /// ([`SharedTableScan::attach_columns`]).
    pub fn with_columns(mut self, mut cols: Vec<usize>) -> SharedTableScan {
        cols.sort_unstable();
        cols.dedup();
        self.cols = if cols.len() == self.table.column_count() {
            None
        } else {
            Some(cols)
        };
        self
    }

    /// The hub's gathered column set (`None` = every column).
    pub fn columns(&self) -> Option<&[usize]> {
        self.cols.as_deref()
    }

    /// Does this hub gather every column in `needed` (`None` = all)?
    pub fn covers(&self, needed: Option<&[usize]>) -> bool {
        match (&self.cols, needed) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(have), Some(need)) => need.iter().all(|c| have.contains(c)),
        }
    }

    /// Report this hub's activity to `registry`: engine-global
    /// `sa_shared_scan_*` counters (shared across hubs by name) plus
    /// `CursorAttached` journal events. A disabled registry leaves the hub
    /// uninstrumented (the default).
    pub fn with_observer(mut self, registry: &Registry) -> SharedTableScan {
        self.obs = HubObs {
            registry: registry.clone(),
            rows_gathered: registry.counter("sa_shared_scan_rows_gathered_total"),
            rows_served: registry.counter("sa_shared_scan_rows_served_total"),
            attaches: registry.counter("sa_shared_scan_attach_total"),
            detaches: registry.counter("sa_shared_scan_detach_total"),
            lag_stalls: registry.counter("sa_shared_scan_lag_stalls_total"),
        };
        self
    }

    /// The scanned table.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// Current counters.
    pub fn stats(&self) -> SharedScanStats {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        SharedScanStats {
            rows_gathered: st.rows_gathered,
            rows_served: st.rows_served,
            table_rows: self.table.row_count(),
            attached: st.readers.iter().flatten().count(),
            head: st.head,
        }
    }

    /// Total rows gathered from storage since the hub was created.
    pub fn rows_gathered(&self) -> u64 {
        self.stats().rows_gathered
    }

    /// Attach a cursor at the current head: it will see every table row
    /// exactly once, starting from the scan's current physical position.
    /// The cursor carries the hub's full column set; use
    /// [`SharedTableScan::attach_columns`] for a pruned view.
    ///
    /// An attached cursor holds a window slot: pull it to exhaustion or drop
    /// it, or it backpressures the other cursors once they run
    /// `max_lag_rows` ahead.
    pub fn attach(self: &Arc<Self>) -> SharedScanCursor {
        self.attach_select(None, self.cols.clone())
    }

    /// Attach a cursor that sees only `needed` columns (ascending table-
    /// schema indices; `None` = every table column). Fails when the hub
    /// does not gather all of them — the hub's bus chunks are shared state
    /// one query cannot widen.
    pub fn attach_columns(self: &Arc<Self>, needed: Option<&[usize]>) -> Result<SharedScanCursor> {
        if !self.covers(needed) {
            return Err(ExecError::Unsupported(format!(
                "shared scan hub over '{}' gathers columns {:?} but the query needs {:?} — \
                 open a wider hub or a private stream",
                self.table.name(),
                self.cols,
                needed
            )));
        }
        let (sel, out_cols) = match (needed, &self.cols) {
            // Everything the hub carries (which is everything, per covers).
            (None, _) => (None, self.cols.clone()),
            (Some(need), None) => {
                // The hub gathers every column, so bus positions ARE table
                // indices; a full `need` collapses to the identity view.
                if need.len() == self.table.column_count() {
                    (None, None)
                } else {
                    (Some(need.to_vec()), Some(need.to_vec()))
                }
            }
            (Some(need), Some(have)) => {
                let sel: Vec<usize> = need
                    .iter()
                    .map(|c| {
                        have.iter()
                            .position(|h| h == c)
                            .expect("covers() admitted every needed column")
                    })
                    .collect();
                if sel.len() == have.len() && sel.iter().enumerate().all(|(i, &p)| i == p) {
                    (None, Some(need.to_vec()))
                } else {
                    (Some(sel), Some(need.to_vec()))
                }
            }
        };
        Ok(self.attach_select(sel, out_cols))
    }

    fn attach_select(
        self: &Arc<Self>,
        sel: Option<Vec<usize>>,
        out_cols: Option<Vec<usize>>,
    ) -> SharedScanCursor {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let slot = match st.readers.iter().position(Option::is_none) {
            Some(free) => free,
            None => {
                st.readers.push(None);
                st.readers.len() - 1
            }
        };
        st.readers[slot] = Some(st.head);
        self.obs.attaches.inc();
        self.obs.registry.record(EventKind::CursorAttached {
            head: st.head,
            attached: st.readers.iter().flatten().count() as u64,
        });
        SharedScanCursor {
            origin: st.head,
            consumed: 0,
            total: self.table.row_count(),
            slot,
            detached: false,
            sel,
            out_cols,
            hub: self.clone(),
        }
    }

    /// Drop window chunks every attached cursor has passed.
    fn evict(&self, st: &mut HubState) {
        let Some(min) = st.readers.iter().flatten().copied().min() else {
            st.window.clear();
            return;
        };
        while let Some(front) = st.window.front() {
            if front.start + front.chunk.rows() as u64 <= min {
                st.window.pop_front();
            } else {
                break;
            }
        }
    }

    /// Release a cursor's slot (idempotent via the cursor's flag).
    fn detach(&self, slot: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.readers[slot] = None;
        self.obs.detaches.inc();
        self.evict(&mut st);
        self.turned.notify_all();
    }
}

/// One query's view of a [`SharedTableScan`]: a stream of the table's rows
/// in circular order from the cursor's attach origin, exhausted after one
/// full revolution. Chunks carry **physical** row-id lineage, exactly like
/// a private scan, so everything downstream (samplers, the SBox, Prop-8
/// scaling) is origin-oblivious.
#[derive(Debug)]
pub struct SharedScanCursor {
    /// Virtual head position at attach; `origin % total` is the physical
    /// first row this cursor sees.
    origin: u64,
    /// Rows consumed so far (0..=total).
    consumed: u64,
    total: u64,
    slot: usize,
    detached: bool,
    /// Positions within the hub's bus-chunk columns this cursor emits
    /// (`None` = every hub column, the common case).
    sel: Option<Vec<usize>>,
    /// The cursor's output columns as table-schema indices (`None` = all);
    /// used to shape the zero-row exhaustion chunk.
    out_cols: Option<Vec<usize>>,
    hub: Arc<SharedTableScan>,
}

impl SharedScanCursor {
    /// `(consumed, available)` row coverage — the Prop-8 scaling input.
    pub fn progress(&self) -> (u64, u64) {
        (self.consumed, self.total)
    }

    /// Physical row id of the first row this cursor sees.
    pub fn physical_origin(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.origin % self.total
        }
    }

    /// The hub this cursor rides.
    pub fn hub(&self) -> &Arc<SharedTableScan> {
        &self.hub
    }

    /// Pull up to `hint` rows (never more than one bus chunk). An empty
    /// chunk means the revolution is complete; the cursor has then released
    /// its hub slot.
    pub fn next_batch(&mut self, hint: usize) -> Result<ColumnarChunk> {
        if self.consumed >= self.total {
            self.release();
            return self.empty_chunk();
        }
        let hub = self.hub.clone();
        let mut st = hub.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut stall_counted = false;
        loop {
            let pos = self.origin + self.consumed;
            if pos < st.head {
                // Behind the head: serve a slice of the published window.
                let bus = st
                    .window
                    .iter()
                    .find(|c| pos < c.start + c.chunk.rows() as u64)
                    .expect("window covers every attached cursor's position");
                debug_assert!(pos >= bus.start, "cursor fell out of the window");
                let offset = (pos - bus.start) as usize;
                let take = (bus.chunk.rows() - offset)
                    .min(hint.max(1))
                    .min((self.total - self.consumed) as usize);
                let mut out = bus.chunk.slice(offset, take);
                if let Some(sel) = &self.sel {
                    out.batch = out.batch.select_columns(sel);
                }
                self.consumed += take as u64;
                st.rows_served += take as u64;
                hub.obs.rows_served.add(take as u64);
                if self.consumed >= self.total {
                    // Exhausted: release the slot NOW so this cursor can
                    // never become the laggard that stalls the hub while
                    // the owning query finishes up.
                    st.readers[self.slot] = None;
                    self.detached = true;
                    hub.obs.detaches.inc();
                } else {
                    st.readers[self.slot] = Some(pos + take as u64);
                }
                hub.evict(&mut st);
                hub.turned.notify_all();
                return Ok(out);
            }
            // At the head: produce the next chunk — unless the window would
            // outrun the slowest cursor, in which case wait for it to
            // consume (or detach).
            let min = st.readers.iter().flatten().copied().min().unwrap_or(pos);
            if st.head.saturating_sub(min) >= hub.max_lag_rows {
                if !stall_counted {
                    // One stall event per episode, not per spurious wake.
                    hub.obs.lag_stalls.inc();
                    stall_counted = true;
                }
                st = hub.turned.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            let phys = st.head % self.total;
            let upto = (phys + hub.bus_rows as u64).min(self.total);
            let batch = match &hub.cols {
                None => hub.table.batch_range(phys, upto),
                Some(cols) => hub.table.batch_range_cols(phys, upto, cols),
            }
            .map_err(ExecError::Storage)?;
            let produced = upto - phys;
            let start = st.head;
            st.window.push_back(BusChunk {
                start,
                chunk: ColumnarChunk {
                    batch,
                    lineage: vec![(phys..upto).collect()],
                },
            });
            st.head += produced;
            st.rows_gathered += produced;
            hub.obs.rows_gathered.add(produced);
            hub.turned.notify_all();
            // Loop: pos is now behind the head and gets served above.
        }
    }

    /// A zero-row chunk with this cursor's column layout (the exhaustion
    /// signal expected by the streaming operators above).
    fn empty_chunk(&self) -> Result<ColumnarChunk> {
        let batch = match &self.out_cols {
            None => self.hub.table.batch_range(0, 0),
            Some(cols) => self.hub.table.batch_range_cols(0, 0, cols),
        }
        .map_err(ExecError::Storage)?;
        Ok(ColumnarChunk {
            batch,
            lineage: vec![Vec::new()],
        })
    }

    fn release(&mut self) {
        if !self.detached {
            self.detached = true;
            self.hub.detach(self.slot);
        }
    }
}

impl Drop for SharedScanCursor {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn table(rows: i64) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema).with_block_rows(64);
        for i in 0..rows {
            b.push_row(&[Value::Int(i), Value::Float(i as f64)])
                .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn drain_ids(cursor: &mut SharedScanCursor, hint: usize) -> Vec<u64> {
        let mut ids = Vec::new();
        loop {
            let chunk = cursor.next_batch(hint).unwrap();
            if chunk.is_empty() {
                return ids;
            }
            ids.extend(chunk.lineage[0].iter().copied());
        }
    }

    #[test]
    fn single_cursor_sees_every_row_in_order() {
        let hub = Arc::new(SharedTableScan::new(table(500), 128));
        let mut c = hub.attach();
        assert_eq!(c.progress(), (0, 500));
        let ids = drain_ids(&mut c, 97);
        assert_eq!(ids, (0..500).collect::<Vec<u64>>());
        assert_eq!(c.progress(), (500, 500));
        assert_eq!(hub.rows_gathered(), 500);
    }

    #[test]
    fn mid_attach_cursor_sees_rotated_order_exactly_once() {
        let hub = Arc::new(SharedTableScan::new(table(300), 50));
        let mut warm = hub.attach();
        let mut seen = 0u64;
        while seen < 110 {
            let chunk = warm.next_batch(40).unwrap();
            seen += chunk.rows() as u64;
        }
        drop(warm);
        let mut late = hub.attach();
        // The cursor attaches at the hub's head, which has advanced at
        // least as far as the warm cursor consumed (production is
        // bus-chunk granular, so it may sit a little ahead).
        let o = late.physical_origin();
        assert!(o >= seen && o < 300, "origin {o}, warm consumed {seen}");
        let ids = drain_ids(&mut late, 64);
        let expected: Vec<u64> = (o..300).chain(0..o).collect();
        assert_eq!(ids, expected, "rotated order, each row exactly once");
    }

    #[test]
    fn concurrent_cursors_share_one_scan() {
        let n = 20_000u64;
        let hub = Arc::new(SharedTableScan::new(table(n as i64), 256));
        // Attach all four BEFORE any pulls: the scan cost must be exactly
        // one revolution.
        let mut cursors: Vec<SharedScanCursor> = (0..4).map(|_| hub.attach()).collect();
        std::thread::scope(|s| {
            for c in cursors.iter_mut() {
                s.spawn(move || {
                    let ids = drain_ids(c, 100);
                    assert_eq!(ids.len(), n as usize);
                });
            }
        });
        assert_eq!(hub.rows_gathered(), n, "4 cursors, exactly 1 scan");
        assert_eq!(hub.stats().attached, 0, "exhausted cursors detach");
    }

    #[test]
    fn gated_concurrent_cursors_cost_about_one_scan() {
        // A "gate" cursor that never consumes holds the head within
        // max_lag_rows of the origin, so however the threads are scheduled,
        // every cursor attaches near row 0; once the gate drops, the hub
        // performs one revolution plus at most the lag window.
        let n = 20_000u64;
        let lag = 512u64;
        let hub = Arc::new(SharedTableScan::new(table(n as i64), 128).with_max_lag_rows(lag));
        let gate = hub.attach();
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let hub = hub.clone();
                    s.spawn(move || {
                        let mut c = hub.attach();
                        drain_ids(&mut c, 64).len()
                    })
                })
                .collect();
            while hub.stats().attached < 5 {
                std::thread::yield_now();
            }
            drop(gate);
            for w in workers {
                assert_eq!(w.join().unwrap(), n as usize);
            }
        });
        let gathered = hub.rows_gathered();
        assert!(
            gathered <= n + lag,
            "expected ~1 shared scan, gathered {gathered} of {n} rows"
        );
    }

    #[test]
    fn slow_cursor_bounds_the_window_not_correctness() {
        let n = 4_000u64;
        let hub = Arc::new(SharedTableScan::new(table(n as i64), 64).with_max_lag_rows(256));
        let mut slow = hub.attach();
        let mut fast = hub.attach();
        let (fast_ids, slow_ids) = std::thread::scope(|s| {
            let fast = s.spawn(move || drain_ids(&mut fast, 64));
            // The slow cursor trickles; the fast one must wait at the lag
            // bound rather than outrun it.
            let mut ids = Vec::new();
            loop {
                let chunk = slow.next_batch(16).unwrap();
                if chunk.is_empty() {
                    break;
                }
                ids.extend(chunk.lineage[0].iter().copied());
                std::thread::yield_now();
            }
            (fast.join().unwrap(), ids)
        });
        assert_eq!(fast_ids, (0..n).collect::<Vec<u64>>());
        assert_eq!(slow_ids, fast_ids);
        assert_eq!(hub.rows_gathered(), n);
    }

    #[test]
    fn dropped_cursor_releases_the_hub() {
        let n = 2_000u64;
        let hub = Arc::new(SharedTableScan::new(table(n as i64), 32).with_max_lag_rows(64));
        let stalled = hub.attach(); // never pulled
        let mut active = hub.attach();
        let mut got = 0u64;
        // The active cursor can advance up to the lag bound...
        for _ in 0..2 {
            got += active.next_batch(32).unwrap().rows() as u64;
        }
        assert!(got > 0);
        drop(stalled); // ...and dropping the stalled cursor unblocks the rest.
        let rest = drain_ids(&mut active, 128);
        assert_eq!(got + rest.len() as u64, n);
        assert_eq!(hub.stats().attached, 0);
    }

    #[test]
    fn empty_table_cursor_is_immediately_exhausted() {
        let hub = Arc::new(SharedTableScan::new(table(0), 16));
        let mut c = hub.attach();
        assert_eq!(c.progress(), (0, 0));
        let chunk = c.next_batch(8).unwrap();
        assert!(chunk.is_empty());
        assert_eq!(
            chunk.batch.columns().len(),
            2,
            "empty chunk keeps the layout"
        );
        assert_eq!(hub.rows_gathered(), 0);
    }

    #[test]
    fn observed_hub_reports_amplification_and_attach_lifecycle() {
        let reg = Registry::new();
        let hub = Arc::new(SharedTableScan::new(table(1000), 128).with_observer(&reg));
        let mut a = hub.attach();
        let mut b = hub.attach();
        assert_eq!(drain_ids(&mut a, 256).len(), 1000);
        assert_eq!(drain_ids(&mut b, 256).len(), 1000);
        let stats = hub.stats();
        assert_eq!(stats.rows_gathered, 1000, "two cursors, one scan");
        assert_eq!(stats.rows_served, 2000, "amplification = 2x");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("sa_shared_scan_rows_gathered_total"),
            Some(1000)
        );
        assert_eq!(snap.counter("sa_shared_scan_rows_served_total"), Some(2000));
        assert_eq!(snap.counter("sa_shared_scan_attach_total"), Some(2));
        assert_eq!(snap.counter("sa_shared_scan_detach_total"), Some(2));
        let (events, _) = reg.events();
        let attaches = events
            .iter()
            .filter(|e| matches!(e.kind, sa_obs::EventKind::CursorAttached { .. }))
            .count();
        assert_eq!(attaches, 2);
    }

    #[test]
    fn uninstrumented_hub_still_tracks_rows_served() {
        let hub = Arc::new(SharedTableScan::new(table(100), 32));
        let mut c = hub.attach();
        drain_ids(&mut c, 50);
        assert_eq!(hub.stats().rows_served, 100);
    }

    #[test]
    fn replay_after_full_revolutions_restores_the_origin() {
        // After k full revolutions the head returns to the same physical
        // position — a replay cursor sees the identical row order, which is
        // what lets tests reproduce a mid-attach realization.
        let hub = Arc::new(SharedTableScan::new(table(100), 16));
        let mut warm = hub.attach();
        let mut seen = 0;
        while seen < 37 {
            seen += warm.next_batch(10).unwrap().rows();
        }
        drop(warm);
        let mut a = hub.attach();
        let ids_a = drain_ids(&mut a, 9);
        let mut b = hub.attach();
        let ids_b = drain_ids(&mut b, 23);
        assert_eq!(a.physical_origin(), b.physical_origin());
        assert_eq!(ids_a, ids_b);
    }
}
