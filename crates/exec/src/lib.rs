//! # sa-exec — execution with lineage, and the approximate-query driver
//!
//! Two layers:
//!
//! * [`execute`] runs a [`sa_plan::LogicalPlan`] exactly as written —
//!   sampling operators included — carrying per-base-relation lineage
//!   through scans, samples, filters, joins and projections (Section 6.2 of
//!   the paper: the SBox needs only lineage ids and aggregate values).
//! * [`approx_query`] is the paper's full pipeline: SOA-rewrite the plan to
//!   obtain the single top GUS, execute the sampled plan, feed the SBox, and
//!   report unbiased estimates with normal/Chebyshev confidence intervals
//!   (optionally estimating variance from a Section 7 lineage-hash
//!   sub-sample). [`exact_query`] runs the sampling-free plan for ground
//!   truth.
//! * [`open_stream`] is the chunked, pull-based alternative to [`execute`]:
//!   the same rows, a chunk at a time, for online aggregation (`sa-online`
//!   drives it).

#![warn(missing_docs)]

pub mod approx;
pub mod error;
pub mod exec;
pub mod grouped;
pub mod stream;

pub use approx::{
    agg_results_from_report, approx_query, exact_query, f_vector, layout_dims, AggResult,
    ApproxOptions, ApproxResult, DimLayout,
};
pub use error::ExecError;
pub use exec::{execute, ExecOptions, ResultSet, Row};
pub use grouped::{approx_group_query, exact_group_query, GroupEstimate, GroupedApproxResult};
pub use stream::{open_stream, ChunkStream};

/// Crate-wide result alias.
pub type Result<T, E = ExecError> = std::result::Result<T, E>;
