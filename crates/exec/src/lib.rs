//! # sa-exec — execution with lineage, and the approximate-query driver
//!
//! Two layers:
//!
//! * [`execute`] runs a [`sa_plan::LogicalPlan`] exactly as written —
//!   sampling operators included — carrying per-base-relation lineage
//!   through scans, samples, filters, joins and projections (Section 6.2 of
//!   the paper: the SBox needs only lineage ids and aggregate values).
//! * [`approx_query`] is the paper's full pipeline: SOA-rewrite the plan to
//!   obtain the single top GUS, execute the sampled plan, feed the SBox, and
//!   report unbiased estimates with normal/Chebyshev confidence intervals
//!   (optionally estimating variance from a Section 7 lineage-hash
//!   sub-sample). [`exact_query`] runs the sampling-free plan for ground
//!   truth.
//! * [`open_stream`] is the chunked, pull-based alternative to [`execute`]:
//!   the same rows, a chunk at a time, for online aggregation (`sa-online`
//!   drives it). [`open_stream_partitioned`] splits the same stream into N
//!   disjoint, deterministic worker slices for shard-parallel drivers.
//!
//! # Examples
//!
//! Estimate a sampled SUM with a confidence interval (the paper's full
//! pipeline), then stream the same sampled scan chunk by chunk:
//!
//! ```
//! # #![allow(deprecated)] // approx_query: kept as the low-level batch entry
//! use sa_exec::{approx_query, open_stream, ApproxOptions, ExecOptions};
//! use sa_plan::{AggSpec, LogicalPlan};
//! use sa_sampling::SamplingMethod;
//! use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
//!
//! let mut catalog = Catalog::new();
//! let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
//! let mut b = TableBuilder::new("t", schema);
//! for _ in 0..1000 { b.push_row(&[Value::Float(2.0)]).unwrap(); }
//! catalog.register(b.finish().unwrap()).unwrap();
//!
//! // Batch: SUM(v) over a 50% Bernoulli sample, scaled up with a CI.
//! let plan = LogicalPlan::scan("t")
//!     .sample(SamplingMethod::Bernoulli { p: 0.5 })
//!     .aggregate(vec![AggSpec::sum(sa_expr::col("v"), "s")]);
//! let result = approx_query(&plan, &catalog, &ApproxOptions::default()).unwrap();
//! assert!((result.aggs[0].estimate - 2000.0).abs() < 400.0);
//!
//! // Streaming: the aggregate's *input*, pulled in chunks with lineage.
//! let sampled = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 });
//! let mut stream = open_stream(&sampled, &catalog, &ExecOptions { seed: 7, ..Default::default() }).unwrap();
//! let chunk = stream.next_chunk(64).unwrap();
//! assert!(!chunk.is_empty() && chunk[0].lineage.len() == 1);
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod columnar;
pub mod error;
pub mod exec;
pub mod grouped;
pub mod shared;
pub mod stream;

#[allow(deprecated)]
pub use approx::approx_query;
pub use approx::{
    agg_results_from_report, exact_query, f_vector, layout_dims, AggResult, ApproxOptions,
    ApproxResult, BatchDimEval, DimLayout,
};
pub use columnar::ColumnarChunk;
pub use error::ExecError;
pub use exec::{execute, ExecOptions, ResultSet, Row, ScanObs};
#[allow(deprecated)]
pub use grouped::approx_group_query;
pub use grouped::{exact_group_query, GroupEstimate, GroupedApproxResult};
pub use shared::{SharedScanCursor, SharedScanStats, SharedTableScan};
pub use stream::{
    open_shared_stream, open_stream, open_stream_partitioned, shared_scan_ids, shared_scan_needs,
    shared_scan_table, ChunkStream, ProgressTree,
};

/// Crate-wide result alias.
pub type Result<T, E = ExecError> = std::result::Result<T, E>;
