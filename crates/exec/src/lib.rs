//! # sa-exec — execution with lineage, and the approximate-query driver
//!
//! Two layers:
//!
//! * [`execute`] runs a [`sa_plan::LogicalPlan`] exactly as written —
//!   sampling operators included — carrying per-base-relation lineage
//!   through scans, samples, filters, joins and projections (Section 6.2 of
//!   the paper: the SBox needs only lineage ids and aggregate values).
//! * [`approx_query`] is the paper's full pipeline: SOA-rewrite the plan to
//!   obtain the single top GUS, execute the sampled plan, feed the SBox, and
//!   report unbiased estimates with normal/Chebyshev confidence intervals
//!   (optionally estimating variance from a Section 7 lineage-hash
//!   sub-sample). [`exact_query`] runs the sampling-free plan for ground
//!   truth.

#![warn(missing_docs)]

pub mod approx;
pub mod error;
pub mod exec;
pub mod grouped;

pub use approx::{approx_query, exact_query, AggResult, ApproxOptions, ApproxResult};
pub use error::ExecError;
pub use exec::{execute, ExecOptions, ResultSet, Row};
pub use grouped::{approx_group_query, exact_group_query, GroupEstimate, GroupedApproxResult};

/// Crate-wide result alias.
pub type Result<T, E = ExecError> = std::result::Result<T, E>;
