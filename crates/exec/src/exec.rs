//! The physical executor: runs a [`LogicalPlan`] as written (sampling
//! included) while carrying **lineage** — one id per base relation — through
//! every operator.
//!
//! Lineage is the paper's Section 6.2 requirement: "all there is needed is
//! to carry IDs of tuples through the query plan and make them available,
//! together with the aggregate, to the SBox". A scan emits its row id (or
//! block id when the relation is `SYSTEM`-sampled), selection leaves lineage
//! untouched, and a join concatenates the lineage of the matching tuples.
//!
//! The executor is deliberately simple — materialized row vectors between
//! operators, hash join for equi-conditions, nested loops otherwise — since
//! estimation quality, not raw throughput, is what this system demonstrates.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sa_expr::{bind, eval, eval_predicate, BinOp, Expr};
use sa_plan::{AggFunc, AggSpec, LogicalPlan};
use sa_sampling::SamplingMethod;
use sa_storage::{Catalog, Schema, SchemaRef, Table, Value};

use crate::error::ExecError;
use crate::Result;

/// One materialized result row: its column values and its lineage (one id
/// per base relation of the subtree that produced it, in scan order).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Column values, aligned with the producing node's schema.
    pub values: Vec<Value>,
    /// Lineage ids, aligned with the subtree's base relations.
    pub lineage: Vec<u64>,
}

/// A materialized result: schema, rows, and the base-relation aliases whose
/// ids appear in each row's lineage (in order).
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Output schema.
    pub schema: SchemaRef,
    /// Materialized rows.
    pub rows: Vec<Row>,
    /// Base-relation aliases, aligned with `Row::lineage`.
    pub relations: Vec<String>,
}

/// Execution options.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Seed for all sampling operators in the plan (drawn in traversal
    /// order, so a given `(plan, seed)` pair is reproducible).
    pub seed: u64,
    /// Visit each streaming scan's blocks in a seeded random order instead
    /// of physical order (see [`crate::open_stream`]). This makes the
    /// online driver's random-scan-order assumption true by construction
    /// on sorted or clustered data. Off by default; the batch executor
    /// ignores it (materialized results are order-insensitive). Turning it
    /// on changes which realization a `(plan, seed)` pair produces, but the
    /// shuffled realization is itself byte-reproducible per seed.
    pub shuffle_scan: bool,
    /// Disable projection/predicate pushdown into the streaming scans:
    /// every scan gathers every column and `Filter`s stay separate
    /// operators. The realized sample, lineage and estimates are identical
    /// either way (pruning only drops columns nothing downstream reads, and
    /// a predicate is only fused when no sampler sits between it and the
    /// scan) — this switch exists for benchmark baselines and for the
    /// differential tests that pin that equivalence.
    pub disable_pushdown: bool,
    /// Observability handles for the streaming scans (disabled no-ops by
    /// default; see [`ScanObs::new`]).
    pub scan_obs: ScanObs,
    /// Needed-column analysis override for projection pushdown. `None`
    /// (the default) analyzes the streamed plan itself, with its root
    /// output fully observed. A caller that streams a *sub*-plan and reads
    /// only part of its output — the online driver streams the aggregate's
    /// input but evaluates just the aggregate arguments and GROUP BY keys —
    /// passes the analysis of the full consuming plan here instead.
    pub scan_cols: Option<sa_plan::ScanColumnMap>,
}

/// Observability handles for the streaming scans. The default (disabled)
/// handles make every update a single untaken branch; [`ScanObs::new`]
/// wires the `sa_scan_*` counters into a live [`sa_obs::Registry`].
#[derive(Debug, Clone, Default)]
pub struct ScanObs {
    /// Column segments gathered, counted once per logical scan per stream
    /// open (a 2-column query over a 16-column table adds 2).
    pub cols_gathered: sa_obs::Counter,
    /// Blocks (pages) of a scan range whose rows were all dropped by a
    /// scan-level predicate — their non-predicate columns were never
    /// materialized into a batch.
    pub pages_skipped: sa_obs::Counter,
    /// Rows the streaming scans consumed (every row that had its chance to
    /// reach the output, before any scan-level predicate).
    pub rows_scanned: sa_obs::Counter,
    /// Rows the streaming scans materialized into batches (after the
    /// scan-level predicate; equals `rows_scanned` when nothing is pushed).
    pub rows_gathered: sa_obs::Counter,
}

impl ScanObs {
    /// Handles recording into `registry` under the `sa_scan_*` names.
    pub fn new(registry: &sa_obs::Registry) -> ScanObs {
        ScanObs {
            cols_gathered: registry.counter("sa_scan_cols_gathered_total"),
            pages_skipped: registry.counter("sa_scan_pages_skipped_total"),
            rows_scanned: registry.counter("sa_scan_rows_scanned_total"),
            rows_gathered: registry.counter("sa_scan_rows_gathered_total"),
        }
    }
}

/// Execute a plan. The root may be an [`LogicalPlan::Aggregate`], in which
/// case the result is a single row of exact aggregate values computed over
/// whatever the (possibly sampled) input produced — i.e. the *unscaled*
/// sampled aggregate. Use [`crate::approx`] for estimates with confidence
/// intervals.
pub fn execute(plan: &LogicalPlan, catalog: &Catalog, opts: &ExecOptions) -> Result<ResultSet> {
    plan.validate(catalog)?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    exec_node(plan, catalog, &mut rng)
}

pub(crate) fn exec_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    rng: &mut StdRng,
) -> Result<ResultSet> {
    match plan {
        LogicalPlan::Scan { table, alias } => scan(catalog, table, alias),
        LogicalPlan::Sample { method, input } => {
            let inner = exec_node(input, catalog, rng)?;
            apply_sample(method, inner, base_table(input, catalog)?, rng)
        }
        LogicalPlan::Filter { predicate, input } => {
            let inner = exec_node(input, catalog, rng)?;
            let bound = bind(predicate, &inner.schema)?;
            let mut rows = Vec::with_capacity(inner.rows.len());
            for row in inner.rows {
                if eval_predicate(&bound, &row.values)? {
                    rows.push(row);
                }
            }
            Ok(ResultSet {
                schema: inner.schema,
                rows,
                relations: inner.relations,
            })
        }
        LogicalPlan::Join {
            condition,
            left,
            right,
        } => {
            let l = exec_node(left, catalog, rng)?;
            let r = exec_node(right, catalog, rng)?;
            join(l, r, condition.as_ref())
        }
        LogicalPlan::Project { exprs, input } => {
            let inner = exec_node(input, catalog, rng)?;
            let mut bound = Vec::with_capacity(exprs.len());
            let mut fields = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                let be = bind(e, &inner.schema)?;
                let dt =
                    sa_expr::data_type(&be, &inner.schema)?.unwrap_or(sa_storage::DataType::Float);
                fields.push(sa_storage::Field::new(name, dt));
                bound.push(be);
            }
            let schema = Arc::new(Schema::new(fields).map_err(ExecError::Storage)?);
            let mut rows = Vec::with_capacity(inner.rows.len());
            for row in inner.rows {
                let values: Result<Vec<Value>> = bound
                    .iter()
                    .map(|e| eval(e, &row.values).map_err(ExecError::Expr))
                    .collect();
                rows.push(Row {
                    values: values?,
                    lineage: row.lineage,
                });
            }
            Ok(ResultSet {
                schema,
                rows,
                relations: inner.relations,
            })
        }
        LogicalPlan::Aggregate { aggs, input } => {
            let inner = exec_node(input, catalog, rng)?;
            aggregate_exact(aggs, inner)
        }
        LogicalPlan::UnionSamples { left, right } => {
            // Two independent samplings of the same expression (the RNG
            // advances between the branches, so their coins are
            // independent); duplicates removed by lineage — the GUS filter
            // semantics Proposition 7 requires.
            let l = exec_node(left, catalog, rng)?;
            let r = exec_node(right, catalog, rng)?;
            let mut seen: HashMap<Vec<u64>, ()> = HashMap::with_capacity(l.rows.len());
            let mut rows = Vec::with_capacity(l.rows.len() + r.rows.len() / 2);
            for row in l.rows.into_iter().chain(r.rows) {
                if seen.insert(row.lineage.clone(), ()).is_none() {
                    rows.push(row);
                }
            }
            Ok(ResultSet {
                schema: l.schema,
                rows,
                relations: l.relations,
            })
        }
    }
}

pub(crate) fn scan_schema(
    catalog: &Catalog,
    table: &str,
    alias: &str,
) -> Result<(Arc<Table>, SchemaRef)> {
    let t = catalog.get(table)?;
    let schema = if alias == table {
        t.schema().clone()
    } else {
        Arc::new(t.schema().qualify_all(alias))
    };
    Ok((t, schema))
}

fn scan(catalog: &Catalog, table: &str, alias: &str) -> Result<ResultSet> {
    let (t, schema) = scan_schema(catalog, table, alias)?;
    let n = t.row_count();
    let mut rows = Vec::with_capacity(n as usize);
    for rid in 0..n {
        rows.push(Row {
            values: t.row(rid)?,
            lineage: vec![rid],
        });
    }
    Ok(ResultSet {
        schema,
        rows,
        relations: vec![alias.to_string()],
    })
}

/// The base table under a Sample*/Scan chain (needed for block structure and
/// WOR population checks).
pub(crate) fn base_table(mut node: &LogicalPlan, catalog: &Catalog) -> Result<Arc<Table>> {
    loop {
        match node {
            LogicalPlan::Scan { table, .. } => return Ok(catalog.get(table)?),
            LogicalPlan::Sample { input, .. } => node = input,
            other => {
                return Err(ExecError::Unsupported(format!(
                    "sample over non-base relation {}",
                    other.node_label()
                )))
            }
        }
    }
}

fn apply_sample(
    method: &SamplingMethod,
    input: ResultSet,
    base: Arc<Table>,
    rng: &mut StdRng,
) -> Result<ResultSet> {
    use rand::RngExt;
    method.validate()?;
    let rows = match method {
        SamplingMethod::Bernoulli { p } => input
            .rows
            .into_iter()
            .filter(|_| rng.random::<f64>() < *p)
            .collect(),
        SamplingMethod::Wor { size } => {
            let n = input.rows.len() as u64;
            if *size > n {
                return Err(ExecError::Sampling(
                    sa_sampling::SamplingError::InvalidSpec(format!(
                        "WOR size {size} exceeds input cardinality {n}"
                    )),
                ));
            }
            // Floyd over input positions.
            let mut chosen = std::collections::HashSet::with_capacity(*size as usize);
            for j in n - size..n {
                let t = rng.random_range(0..=j);
                if !chosen.insert(t) {
                    chosen.insert(j);
                }
            }
            input
                .rows
                .into_iter()
                .enumerate()
                .filter(|(i, _)| chosen.contains(&(*i as u64)))
                .map(|(_, r)| r)
                .collect()
        }
        SamplingMethod::System { p } => {
            // Keep whole blocks; replace this relation's lineage with the
            // block id (the sampling — and hence lineage — unit).
            let mut keep = vec![false; base.block_count() as usize];
            for k in keep.iter_mut() {
                *k = rng.random::<f64>() < *p;
            }
            input
                .rows
                .into_iter()
                .filter_map(|mut row| {
                    let rid = *row.lineage.last().expect("scan lineage");
                    let block = base.block_of(rid);
                    if keep[block as usize] {
                        *row.lineage.last_mut().expect("scan lineage") = block;
                        Some(row)
                    } else {
                        None
                    }
                })
                .collect()
        }
        SamplingMethod::WithReplacement { size } => {
            if input.rows.is_empty() {
                return Err(ExecError::Sampling(
                    sa_sampling::SamplingError::InvalidSpec(
                        "cannot draw with replacement from an empty input".into(),
                    ),
                ));
            }
            (0..*size)
                .map(|_| input.rows[rng.random_range(0..input.rows.len())].clone())
                .collect()
        }
    };
    Ok(ResultSet {
        schema: input.schema,
        rows,
        relations: input.relations,
    })
}

fn join(l: ResultSet, r: ResultSet, condition: Option<&Expr>) -> Result<ResultSet> {
    let schema = Arc::new(l.schema.join(&r.schema)?);
    let mut relations = l.relations.clone();
    relations.extend(r.relations.iter().cloned());

    // Split the condition into hashable equi-pairs and a residual predicate.
    let (keys, residual) = match condition {
        None => (vec![], None),
        Some(c) => split_join_condition(c, &l.schema, &r.schema)?,
    };
    let residual_bound = residual.map(|e| bind(&e, &schema)).transpose()?;

    let mut out_rows = Vec::new();
    if keys.is_empty() {
        // Nested loop (cross product or arbitrary θ).
        for lr in &l.rows {
            for rr in &r.rows {
                let mut values = lr.values.clone();
                values.extend(rr.values.iter().cloned());
                if let Some(pred) = &residual_bound {
                    if !eval_predicate(pred, &values)? {
                        continue;
                    }
                }
                let mut lineage = lr.lineage.clone();
                lineage.extend(rr.lineage.iter().copied());
                out_rows.push(Row { values, lineage });
            }
        }
    } else {
        // Hash join: build on the right, probe from the left.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, rr) in r.rows.iter().enumerate() {
            let key: Vec<Value> = keys.iter().map(|(_, ri)| rr.values[*ri].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never match
            }
            table.entry(key).or_default().push(i);
        }
        for lr in &l.rows {
            let key: Vec<Value> = keys.iter().map(|(li, _)| lr.values[*li].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            let Some(matches) = table.get(&key) else {
                continue;
            };
            for &i in matches {
                let rr = &r.rows[i];
                let mut values = lr.values.clone();
                values.extend(rr.values.iter().cloned());
                if let Some(pred) = &residual_bound {
                    if !eval_predicate(pred, &values)? {
                        continue;
                    }
                }
                let mut lineage = lr.lineage.clone();
                lineage.extend(rr.lineage.iter().copied());
                out_rows.push(Row { values, lineage });
            }
        }
    }
    Ok(ResultSet {
        schema,
        rows: out_rows,
        relations,
    })
}

/// Equi-key column index pairs of a hash join: `(left index, right index)`.
pub(crate) type EquiKeys = Vec<(usize, usize)>;

/// Extract `(left index, right index)` equi-key pairs from a conjunctive
/// join condition; everything else becomes the residual predicate.
pub(crate) fn split_join_condition(
    condition: &Expr,
    left: &Schema,
    right: &Schema,
) -> Result<(EquiKeys, Option<Expr>)> {
    let mut keys = Vec::new();
    let mut residual = Vec::new();
    for conjunct in condition.split_conjuncts() {
        if let Expr::Binary {
            op: BinOp::Eq,
            left: a,
            right: b,
        } = conjunct
        {
            if let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) {
                match (left.index_of(ca), right.index_of(cb)) {
                    (Ok(li), Ok(ri)) => {
                        keys.push((li, ri));
                        continue;
                    }
                    _ => {
                        if let (Ok(li), Ok(ri)) = (left.index_of(cb), right.index_of(ca)) {
                            keys.push((li, ri));
                            continue;
                        }
                    }
                }
            }
        }
        residual.push(conjunct.clone());
    }
    // Literal TRUE residuals are dropped.
    let residual: Vec<Expr> = residual
        .into_iter()
        .filter(|e| *e != sa_expr::lit(true))
        .collect();
    let residual = if residual.is_empty() {
        None
    } else {
        Some(Expr::conjoin(residual))
    };
    Ok((keys, residual))
}

/// Exact aggregation of a materialized input (no scaling — used both for
/// exact answers over unsampled plans and for "what the raw sampled query
/// returns" demonstrations).
fn aggregate_exact(aggs: &[AggSpec], input: ResultSet) -> Result<ResultSet> {
    let mut fields = Vec::with_capacity(aggs.len());
    let mut values = Vec::with_capacity(aggs.len());
    for a in aggs {
        fields.push(sa_storage::Field::new(
            &a.alias,
            sa_storage::DataType::Float,
        ));
        let bound = a
            .expr
            .as_ref()
            .map(|e| bind(e, &input.schema))
            .transpose()?;
        let mut sum = 0.0;
        let mut count = 0u64;
        for row in &input.rows {
            match &bound {
                None => count += 1, // COUNT(*)
                Some(e) => {
                    if let Some(v) = sa_expr::eval_f64(e, &row.values)? {
                        sum += v;
                        count += 1;
                    }
                }
            }
        }
        let v = match a.func {
            AggFunc::Sum => sum,
            AggFunc::Count => count as f64,
            AggFunc::Avg => {
                if count == 0 {
                    f64::NAN
                } else {
                    sum / count as f64
                }
            }
        };
        values.push(Value::Float(v));
    }
    Ok(ResultSet {
        schema: Arc::new(Schema::new(fields).map_err(ExecError::Storage)?),
        rows: vec![Row {
            values,
            lineage: vec![],
        }],
        relations: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_expr::{col, lit};
    use sa_plan::AggSpec;
    use sa_storage::{DataType, Field, TableBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema.clone()).with_block_rows(2);
        for i in 0..6 {
            b.push_row(&[Value::Int(i % 3), Value::Float(i as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        let schema2 = Schema::new(vec![
            Field::new("k2", DataType::Int),
            Field::new("w", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("u", schema2);
        for i in 0..3 {
            b.push_row(&[Value::Int(i), Value::Float(10.0 * i as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    #[test]
    fn scan_carries_row_id_lineage() {
        let rs = execute(&LogicalPlan::scan("t"), &catalog(), &ExecOptions::default()).unwrap();
        assert_eq!(rs.rows.len(), 6);
        assert_eq!(rs.rows[4].lineage, vec![4]);
        assert_eq!(rs.relations, vec!["t"]);
    }

    #[test]
    fn filter_keeps_lineage() {
        let plan = LogicalPlan::scan("t").filter(col("v").gt_eq(lit(4.0)));
        let rs = execute(&plan, &catalog(), &ExecOptions::default()).unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0].lineage, vec![4]);
        assert_eq!(rs.rows[1].lineage, vec![5]);
    }

    #[test]
    fn hash_join_concatenates_lineage() {
        let plan = LogicalPlan::scan("t").join_on(LogicalPlan::scan("u"), col("k").eq(col("k2")));
        let rs = execute(&plan, &catalog(), &ExecOptions::default()).unwrap();
        // Each t row matches exactly one u row (k in 0..3).
        assert_eq!(rs.rows.len(), 6);
        for row in &rs.rows {
            assert_eq!(row.lineage.len(), 2);
            // t.k == u.k2
            assert_eq!(row.values[0], row.values[2]);
            // u lineage = k2 value (u row ids coincide with k2 here).
            assert_eq!(row.lineage[1], row.values[2].as_i64().unwrap() as u64);
        }
        assert_eq!(rs.relations, vec!["t", "u"]);
    }

    #[test]
    fn cross_product_counts() {
        let plan = LogicalPlan::scan("t").cross(LogicalPlan::scan("u"));
        let rs = execute(&plan, &catalog(), &ExecOptions::default()).unwrap();
        assert_eq!(rs.rows.len(), 18);
    }

    #[test]
    fn theta_join_residual_predicate() {
        // join on k = k2 AND v > w
        let plan = LogicalPlan::scan("t").join_on(
            LogicalPlan::scan("u"),
            col("k").eq(col("k2")).and(col("v").gt(col("w"))),
        );
        let rs = execute(&plan, &catalog(), &ExecOptions::default()).unwrap();
        for row in &rs.rows {
            let v = row.values[1].as_f64().unwrap();
            let w = row.values[3].as_f64().unwrap();
            assert!(v > w);
        }
        // rows: t(k,v): (0,0)(1,1)(2,2)(0,3)(1,4)(2,5); u(k2,w): (0,0)(1,10)(2,20)
        // matches with v>w: (0,3) only... and (0,0) fails 0>0.
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut c = catalog();
        let schema = Schema::new(vec![Field::new("k3", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("n", schema);
        b.push_row(&[Value::Null]).unwrap();
        b.push_row(&[Value::Int(1)]).unwrap();
        c.register(b.finish().unwrap()).unwrap();
        let plan = LogicalPlan::scan("n").join_on(LogicalPlan::scan("u"), col("k3").eq(col("k2")));
        let rs = execute(&plan, &c, &ExecOptions::default()).unwrap();
        assert_eq!(rs.rows.len(), 1); // only k3=1 matches
    }

    #[test]
    fn bernoulli_sample_filters_rows() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 });
        let rs = execute(
            &plan,
            &catalog(),
            &ExecOptions {
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rs.rows.len() <= 6);
        // Reproducible.
        let rs2 = execute(
            &plan,
            &catalog(),
            &ExecOptions {
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rs.rows.len(), rs2.rows.len());
    }

    #[test]
    fn wor_sample_exact_count_distinct_lineage() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Wor { size: 4 });
        let rs = execute(
            &plan,
            &catalog(),
            &ExecOptions {
                seed: 9,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 4);
        let mut ids: Vec<u64> = rs.rows.iter().map(|r| r.lineage[0]).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "WOR must be distinct");
    }

    #[test]
    fn system_sample_rewrites_lineage_to_blocks() {
        // t has block_rows=2 → blocks {0,1,2}.
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::System { p: 1.0 });
        let rs = execute(&plan, &catalog(), &ExecOptions::default()).unwrap();
        assert_eq!(rs.rows.len(), 6);
        for (i, row) in rs.rows.iter().enumerate() {
            assert_eq!(row.lineage, vec![(i as u64) / 2]);
        }
    }

    #[test]
    fn with_replacement_can_duplicate() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::WithReplacement { size: 50 });
        let rs = execute(
            &plan,
            &catalog(),
            &ExecOptions {
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 50);
    }

    #[test]
    fn exact_aggregates() {
        let plan = LogicalPlan::scan("t").aggregate(vec![
            AggSpec::sum(col("v"), "s"),
            AggSpec::count_star("c"),
            AggSpec::avg(col("v"), "a"),
        ]);
        let rs = execute(&plan, &catalog(), &ExecOptions::default()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0].values[0], Value::Float(15.0));
        assert_eq!(rs.rows[0].values[1], Value::Float(6.0));
        assert_eq!(rs.rows[0].values[2], Value::Float(2.5));
    }

    #[test]
    fn project_evaluates_expressions() {
        let plan = LogicalPlan::scan("t").project(vec![(col("v").mul(lit(2.0)), "vv".into())]);
        let rs = execute(&plan, &catalog(), &ExecOptions::default()).unwrap();
        assert_eq!(rs.rows[3].values, vec![Value::Float(6.0)]);
        assert_eq!(rs.rows[3].lineage, vec![3]); // lineage survives projection
        assert!(rs.schema.index_of("vv").is_ok());
    }

    #[test]
    fn different_seeds_differ() {
        let plan = LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.5 });
        let sizes: std::collections::HashSet<usize> = (0..20)
            .map(|s| {
                execute(
                    &plan,
                    &catalog(),
                    &ExecOptions {
                        seed: s,
                        ..Default::default()
                    },
                )
                .unwrap()
                .rows
                .len()
            })
            .collect();
        assert!(sizes.len() > 1, "sampling ignored the seed");
    }
}
