//! The columnar chunk: a batch of result tuples plus per-relation lineage.
//!
//! [`ColumnarChunk`] is what the streaming executor's operators exchange: a
//! [`ColumnarBatch`] of typed column vectors (see [`sa_storage::chunk`])
//! paired with one lineage column (`Vec<u64>`) per base relation of the
//! producing subtree. Operators filter/gather whole chunks; per-row
//! [`Row`]s are materialized only at the row-level API boundary
//! ([`ColumnarChunk::to_rows`], which backs [`crate::ChunkStream::next_chunk`]).

use sa_storage::{ColumnVec, ColumnarBatch, DataType, Schema, Value};

use crate::exec::Row;

/// A chunk of streamed result tuples in columnar form: the value batch and
/// one lineage id column per base relation (in scan order).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarChunk {
    /// Column values, aligned with the producing node's schema.
    pub batch: ColumnarBatch,
    /// Lineage id columns, one per base relation, each of `rows()` length.
    pub lineage: Vec<Vec<u64>>,
}

impl ColumnarChunk {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.batch.rows()
    }

    /// True when the chunk carries no rows (the stream-exhausted signal).
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Keep the rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> ColumnarChunk {
        ColumnarChunk {
            batch: self.batch.filter(mask),
            lineage: self
                .lineage
                .iter()
                .map(|l| {
                    l.iter()
                        .zip(mask)
                        .filter(|(_, &m)| m)
                        .map(|(&x, _)| x)
                        .collect()
                })
                .collect(),
        }
    }

    /// Gather rows by index (repetition allowed).
    pub fn take(&self, indices: &[u32]) -> ColumnarChunk {
        ColumnarChunk {
            batch: self.batch.take(indices),
            lineage: self
                .lineage
                .iter()
                .map(|l| indices.iter().map(|&i| l[i as usize]).collect())
                .collect(),
        }
    }

    /// The contiguous sub-chunk `[start, start + len)`.
    pub fn slice(&self, start: usize, len: usize) -> ColumnarChunk {
        ColumnarChunk {
            batch: self.batch.slice(start, len),
            lineage: self
                .lineage
                .iter()
                .map(|l| l[start..start + len].to_vec())
                .collect(),
        }
    }

    /// Materialize the row-level view (the [`crate::ChunkStream::next_chunk`]
    /// adapter).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.rows())
            .map(|i| Row {
                values: self.batch.row_values(i),
                lineage: self.lineage.iter().map(|l| l[i]).collect(),
            })
            .collect()
    }

    /// Convert materialized rows (a blocking sampler's drained subtree, a
    /// join build side) into one columnar chunk. Column types come from
    /// `schema`, except where the materialized values disagree with it (a
    /// `NULL`-typed projection can produce, e.g., booleans under a `Float`
    /// field — the row executor tolerates that, so this bridge must too);
    /// such columns take the type of their first non-null value.
    pub fn from_rows(schema: &Schema, n_rels: usize, rows: &[Row]) -> ColumnarChunk {
        let columns = (0..schema.fields().len())
            .map(|c| {
                let declared = schema.field(c).data_type;
                let compatible = rows.iter().all(|r| match (&r.values[c], declared) {
                    (Value::Null, _) => true,
                    (Value::Int(_), DataType::Int | DataType::Float) => true,
                    (v, dt) => v.data_type() == Some(dt),
                });
                let dtype = if compatible {
                    declared
                } else {
                    rows.iter()
                        .find_map(|r| r.values[c].data_type())
                        .unwrap_or(declared)
                };
                ColumnVec::from_values(dtype, rows.iter().map(move |r| r.values[c].clone()))
            })
            .collect();
        let lineage = (0..n_rels)
            .map(|rel| rows.iter().map(|r| r.lineage[rel]).collect())
            .collect();
        ColumnarChunk {
            batch: ColumnarBatch::new(columns, rows.len()),
            lineage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_storage::Field;

    fn chunk() -> ColumnarChunk {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..5)
            .map(|i| Row {
                values: vec![Value::Int(i), Value::Float(i as f64 * 0.5)],
                lineage: vec![i as u64, 100 + i as u64],
            })
            .collect();
        ColumnarChunk::from_rows(&schema, 2, &rows)
    }

    #[test]
    fn row_round_trip() {
        let c = chunk();
        let rows = c.to_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[3].values, vec![Value::Int(3), Value::Float(1.5)]);
        assert_eq!(rows[3].lineage, vec![3, 103]);
        let again = ColumnarChunk::from_rows(
            &Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Float),
            ])
            .unwrap(),
            2,
            &rows,
        );
        assert_eq!(again, c);
    }

    #[test]
    fn filter_take_slice_carry_lineage() {
        let c = chunk();
        let f = c.filter(&[true, false, false, true, true]);
        assert_eq!(f.rows(), 3);
        assert_eq!(f.lineage[0], vec![0, 3, 4]);
        assert_eq!(f.lineage[1], vec![100, 103, 104]);
        let t = c.take(&[4, 0]);
        assert_eq!(t.lineage[0], vec![4, 0]);
        let s = c.slice(1, 2);
        assert_eq!(s.lineage[0], vec![1, 2]);
        assert_eq!(s.to_rows()[0].values[0], Value::Int(1));
    }

    #[test]
    fn from_rows_tolerates_schema_value_mismatch() {
        // A NULL-typed projection defaults to a Float field but can produce
        // booleans at runtime; the bridge must not panic.
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]).unwrap();
        let rows = vec![
            Row {
                values: vec![Value::Bool(false)],
                lineage: vec![0],
            },
            Row {
                values: vec![Value::Null],
                lineage: vec![1],
            },
        ];
        let c = ColumnarChunk::from_rows(&schema, 1, &rows);
        assert_eq!(c.to_rows()[0].values[0], Value::Bool(false));
        assert!(c.to_rows()[1].values[0].is_null());
    }
}
