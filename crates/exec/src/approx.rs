//! The approximate-query driver: rewriter → executor → SBox.
//!
//! [`approx_query`] is the end-to-end entry point the paper's Section 6
//! describes: run the user's sampled plan *as written*, funnel the result
//! tuples' lineage and aggregate values into the SBox, and report unbiased
//! estimates with confidence intervals for every aggregate in the `SELECT`
//! list (including `QUANTILE(…)` views and delta-method `AVG`).
//!
//! Options cover the paper's Section 7 optimization — estimate the `Ŷ_S`
//! variance terms from a deterministic lineage-hash sub-sample of ~10k
//! result tuples while the point estimate still uses every tuple — and
//! [`exact_query`] runs the sampling-free plan for ground truth comparisons.

use sa_core::{
    covariance_from_y, estimate_from_sample_moments, ratio, unbiased_y_hats, ConfidenceInterval,
    EstimateReport, GroupedMoments, GusParams, LineageBernoulli,
};
use sa_expr::{bind, eval_f64, Expr};
use sa_plan::{rewrite, AggFunc, AggSpec, LogicalPlan, SoaAnalysis};
use sa_storage::Catalog;

use crate::error::ExecError;
use crate::exec::{execute, ExecOptions, ResultSet};
use crate::Result;

/// Options for [`approx_query`].
#[derive(Debug, Clone)]
pub struct ApproxOptions {
    /// Seed for the plan's sampling operators.
    pub seed: u64,
    /// Confidence level for the reported intervals (e.g. 0.95).
    pub confidence: f64,
    /// When set, estimate the `Ŷ_S` terms from a lineage-hash sub-sample of
    /// roughly this many result tuples (Section 7). The point estimate still
    /// uses the full result.
    pub subsample_target: Option<u64>,
}

impl Default for ApproxOptions {
    fn default() -> Self {
        ApproxOptions {
            seed: 0,
            confidence: 0.95,
            subsample_target: None,
        }
    }
}

/// The report for one aggregate in the `SELECT` list.
#[derive(Debug, Clone)]
pub struct AggResult {
    /// Output name.
    pub name: String,
    /// The aggregate function.
    pub func: AggFunc,
    /// Unbiased point estimate (for `QUANTILE` specs this is still the point
    /// estimate; the bound is in [`AggResult::quantile_bound`]).
    pub estimate: f64,
    /// Estimated variance, when estimable.
    pub variance: Option<f64>,
    /// Normal confidence interval at the requested level.
    pub ci_normal: Option<ConfidenceInterval>,
    /// Chebyshev confidence interval at the requested level.
    pub ci_chebyshev: Option<ConfidenceInterval>,
    /// The requested `QUANTILE(agg, q)` bound, if the spec asked for one.
    pub quantile_bound: Option<f64>,
}

/// The full approximate-query answer.
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// One entry per aggregate in the `SELECT` list, in order.
    pub aggs: Vec<AggResult>,
    /// Number of result tuples the sampled plan produced.
    pub result_rows: u64,
    /// Number of tuples used for variance estimation (differs from
    /// `result_rows` under Section 7 sub-sampling).
    pub variance_rows: u64,
    /// The SOA analysis (top GUS, lineage schema, rewrite trace).
    pub analysis: SoaAnalysis,
    /// The underlying multi-dimensional estimate report (exposed for
    /// variance prediction and delta-method post-processing).
    pub report: EstimateReport,
}

/// Layout of aggregate specs onto SBox dimensions (shared by the scalar,
/// grouped and online drivers).
#[derive(Debug)]
pub struct DimLayout {
    /// For each agg: (dimension of the numerator, optional denominator dim).
    per_agg: Vec<(usize, Option<usize>)>,
    /// Bound argument expression per dimension (`None` = constant 1).
    dim_exprs: Vec<Option<Expr>>,
    /// For COUNT(expr) dims: count non-null rather than sum.
    dim_is_count: Vec<bool>,
}

impl DimLayout {
    /// Number of SBox dimensions.
    pub fn dims(&self) -> usize {
        self.dim_exprs.len()
    }

    /// Per-aggregate (numerator dim, optional denominator dim).
    pub fn per_agg(&self) -> &[(usize, Option<usize>)] {
        &self.per_agg
    }
}

/// Map aggregate specs onto SBox dimensions, binding their argument
/// expressions against the sampled result's `schema`. `AVG` takes two
/// dimensions (numerator and denominator of the delta-method ratio).
pub fn layout_dims(aggs: &[AggSpec], schema: &sa_storage::Schema) -> Result<DimLayout> {
    let mut per_agg = Vec::with_capacity(aggs.len());
    let mut dim_exprs = Vec::new();
    let mut dim_is_count = Vec::new();
    for a in aggs {
        match a.func {
            AggFunc::Sum => {
                let e = a.expr.as_ref().ok_or_else(|| {
                    ExecError::Unsupported("SUM requires an argument expression".into())
                })?;
                dim_exprs.push(Some(bind(e, schema)?));
                dim_is_count.push(false);
                per_agg.push((dim_exprs.len() - 1, None));
            }
            AggFunc::Count => {
                dim_exprs.push(a.expr.as_ref().map(|e| bind(e, schema)).transpose()?);
                dim_is_count.push(true);
                per_agg.push((dim_exprs.len() - 1, None));
            }
            AggFunc::Avg => {
                let e = a.expr.as_ref().ok_or_else(|| {
                    ExecError::Unsupported("AVG requires an argument expression".into())
                })?;
                dim_exprs.push(Some(bind(e, schema)?));
                dim_is_count.push(false);
                let num = dim_exprs.len() - 1;
                dim_exprs.push(None);
                dim_is_count.push(true);
                per_agg.push((num, Some(dim_exprs.len() - 1)));
            }
        }
    }
    Ok(DimLayout {
        per_agg,
        dim_exprs,
        dim_is_count,
    })
}

/// The per-row aggregate vector `f(t)` of a result row under `layout` —
/// what gets pushed (with the row's lineage) into a moment accumulator.
pub fn f_vector(layout: &DimLayout, row: &crate::exec::Row) -> Result<Vec<f64>> {
    let mut f = Vec::with_capacity(layout.dim_exprs.len());
    for (e, is_count) in layout.dim_exprs.iter().zip(&layout.dim_is_count) {
        let v = match e {
            None => 1.0, // COUNT(*) / AVG denominator
            Some(e) => {
                let val = eval_f64(e, &row.values)?;
                if *is_count {
                    if val.is_some() {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    val.unwrap_or(0.0) // SUM skips NULLs
                }
            }
        };
        f.push(v);
    }
    Ok(f)
}

/// Compiled batch evaluator of a [`DimLayout`]: computes every SBox
/// dimension's `f` column for a whole [`sa_storage::ColumnarBatch`] at once
/// (type-resolved once, no per-row expression dispatch). The online drivers
/// use this with [`crate::ChunkStream::next_batch`] +
/// `MomentAccumulator::push_batch`.
#[derive(Debug)]
pub struct BatchDimEval {
    kernels: Vec<Option<sa_expr::CompiledExpr>>,
    is_count: Vec<bool>,
}

impl DimLayout {
    /// Compile this layout's dimension expressions for batch evaluation
    /// against `schema` (the stream's output schema — the same one the
    /// layout was bound against).
    pub fn compile_batch(&self, schema: &sa_storage::Schema) -> Result<BatchDimEval> {
        let kernels = self
            .dim_exprs
            .iter()
            .map(|e| {
                e.as_ref()
                    .map(|e| sa_expr::compile(e, schema))
                    .transpose()
                    .map_err(ExecError::Expr)
            })
            .collect::<Result<_>>()?;
        Ok(BatchDimEval {
            kernels,
            is_count: self.dim_is_count.clone(),
        })
    }
}

impl BatchDimEval {
    /// Number of SBox dimensions.
    pub fn dims(&self) -> usize {
        self.kernels.len()
    }

    /// The per-dimension `f` columns of a batch (`dims × rows`), with the
    /// exact [`f_vector`] semantics: `COUNT(*)`/AVG-denominator dims are 1,
    /// `COUNT(expr)` dims are the non-null indicator, SUM dims treat NULL
    /// as 0.
    pub fn eval(&self, batch: &sa_storage::ColumnarBatch) -> Result<Vec<Vec<f64>>> {
        let rows = batch.rows();
        let mut out = Vec::with_capacity(self.kernels.len());
        for (k, is_count) in self.kernels.iter().zip(&self.is_count) {
            let col = match k {
                None => vec![1.0; rows], // COUNT(*) / AVG denominator
                Some(k) => {
                    let (mut vals, validity) = k.eval_f64(batch).map_err(ExecError::Expr)?;
                    if *is_count {
                        match validity {
                            None => vals.iter_mut().for_each(|v| *v = 1.0),
                            Some(validity) => {
                                for (v, ok) in vals.iter_mut().zip(validity) {
                                    *v = if ok { 1.0 } else { 0.0 };
                                }
                            }
                        }
                    } else if let Some(validity) = validity {
                        for (v, ok) in vals.iter_mut().zip(validity) {
                            if !ok {
                                *v = 0.0; // SUM skips NULLs
                            }
                        }
                    }
                    vals
                }
            };
            out.push(col);
        }
        Ok(out)
    }
}

/// Run a sampled aggregate plan and produce estimates with confidence
/// intervals. The plan root must be an [`LogicalPlan::Aggregate`].
#[deprecated(
    since = "0.1.0",
    note = "use `sa_online::Engine::new(catalog).session().query_plan(&plan).batch()`"
)]
pub fn approx_query(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &ApproxOptions,
) -> Result<ApproxResult> {
    let analysis = rewrite(plan, catalog)?;
    let LogicalPlan::Aggregate { aggs, input } = plan else {
        return Err(ExecError::Unsupported(
            "approx_query requires an aggregate at the plan root".into(),
        ));
    };

    // Execute the sampled relational part exactly as written.
    let rs = execute(
        input,
        catalog,
        &ExecOptions {
            seed: opts.seed,
            ..Default::default()
        },
    )?;
    let layout = layout_dims(aggs, &rs.schema)?;
    let dims = layout.dim_exprs.len();
    let n = analysis.schema.n();
    let m = rs.rows.len() as u64;

    // Section 7 sub-sampling: choose per-relation keep probabilities so the
    // expected surviving tuple count is near the target, then compact the
    // plan GUS with the sub-sampler's multi-dimensional Bernoulli.
    let sub = match opts.subsample_target {
        Some(target) if m > target && n > 0 => {
            let keep = (target as f64 / m as f64).powf(1.0 / n as f64);
            Some(LineageBernoulli::uniform(
                analysis.schema.clone(),
                keep,
                opts.seed ^ 0x5u64.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )?)
        }
        _ => None,
    };

    let report = match &sub {
        None => {
            let mut acc = GroupedMoments::new(n, dims);
            for row in &rs.rows {
                acc.push(&row.lineage, &f_vector(&layout, row)?)?;
            }
            estimate_from_sample_moments(&analysis.gus, &acc.finish())?
        }
        Some(filter) => subsampled_report(&analysis.gus, filter, &rs, &layout, dims, n)?,
    };

    let variance_rows = report.m;
    let aggs_out = agg_results_from_report(aggs, &layout, &report, opts.confidence);
    Ok(ApproxResult {
        aggs: aggs_out,
        result_rows: m,
        variance_rows,
        analysis,
        report,
    })
}

/// Section 7: point estimate from the full result under the plan GUS;
/// `Ŷ_S`/covariance from the lineage-hash sub-sample under the compacted
/// GUS (Figure 5's pipeline).
fn subsampled_report(
    gus: &GusParams,
    filter: &LineageBernoulli,
    rs: &ResultSet,
    layout: &DimLayout,
    dims: usize,
    n: usize,
) -> Result<EstimateReport> {
    let compacted = gus.compact(&filter.gus())?;
    let mut totals = vec![0.0; dims];
    let mut acc = GroupedMoments::new(n, dims);
    for row in &rs.rows {
        let f = f_vector(layout, row)?;
        for (t, v) in totals.iter_mut().zip(&f) {
            *t += v;
        }
        if filter.keeps(&row.lineage) {
            acc.push(&row.lineage, &f)?;
        }
    }
    let sub_moments = acc.finish();
    let estimate: Vec<f64> = totals.iter().map(|t| t / gus.a()).collect();
    let (covariance, y_hat) = match unbiased_y_hats(&compacted, &sub_moments) {
        Ok(yh) => {
            let cov = covariance_from_y(gus, &yh, dims);
            (Some(cov), Some(yh))
        }
        Err(_) => (None, None),
    };
    Ok(EstimateReport::from_parts(
        gus.clone(),
        estimate,
        covariance,
        y_hat,
        dims,
        sub_moments.count,
    ))
}

/// Turn a (possibly mid-stream) [`EstimateReport`] into per-aggregate
/// results — point estimate, variance, both CI flavours and the `QUANTILE`
/// bound — resolving delta-method `AVG` ratios. Shared by the batch driver
/// and the online loop's progress snapshots.
pub fn agg_results_from_report(
    aggs: &[AggSpec],
    layout: &DimLayout,
    report: &EstimateReport,
    confidence: f64,
) -> Vec<AggResult> {
    aggs.iter()
        .zip(&layout.per_agg)
        .map(|(spec, (num, den))| {
            let (estimate, variance) = match den {
                None => (report.estimate[*num], report.variance(*num).ok()),
                Some(den) => match ratio(report, *num, *den) {
                    Ok(d) => (d.value, Some(d.variance)),
                    Err(_) => (f64::NAN, None),
                },
            };
            let ci_normal = variance.and_then(|v| sa_core::normal_ci(estimate, v, confidence).ok());
            let ci_chebyshev =
                variance.and_then(|v| sa_core::chebyshev_ci(estimate, v, confidence).ok());
            let quantile_bound = spec
                .quantile
                .and_then(|q| variance.and_then(|v| sa_core::quantile_bound(estimate, v, q).ok()));
            AggResult {
                name: spec.alias.clone(),
                func: spec.func,
                estimate,
                variance,
                ci_normal,
                ci_chebyshev,
                quantile_bound,
            }
        })
        .collect()
}

/// Run the sampling-free version of `plan` (samples stripped) for ground
/// truth. Returns the exact aggregate values, in `SELECT`-list order.
pub fn exact_query(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<f64>> {
    let analysis = rewrite(plan, catalog)?;
    let rs = execute(&analysis.core, catalog, &ExecOptions::default())?;
    let row = rs
        .rows
        .first()
        .ok_or_else(|| ExecError::Unsupported("exact plan produced no aggregate row".into()))?;
    Ok(row
        .values
        .iter()
        .map(|v| v.as_f64().unwrap_or(f64::NAN))
        .collect())
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use sa_expr::col;
    use sa_sampling::SamplingMethod;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    /// Catalog: one table `t` with 2000 rows of v = 1.0, and a dimension
    /// table `d` with 10 rows.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..2000 {
            b.push_row(&[Value::Int(i % 10), Value::Float(1.0)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        let schema = Schema::new(vec![
            Field::new("dk", DataType::Int),
            Field::new("w", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("d", schema);
        for i in 0..10 {
            b.push_row(&[Value::Int(i), Value::Float(2.0)]).unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn sum_plan(p: f64) -> LogicalPlan {
        LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p })
            .aggregate(vec![AggSpec::sum(col("v"), "s")])
    }

    #[test]
    fn single_table_estimate_near_truth() {
        let r = approx_query(&sum_plan(0.5), &catalog(), &ApproxOptions::default()).unwrap();
        let a = &r.aggs[0];
        // Truth is 2000; B(0.5) estimate has σ = √((1−p)/p·Σf²) = √2000 ≈ 45.
        assert!(
            (a.estimate - 2000.0).abs() < 250.0,
            "estimate {}",
            a.estimate
        );
        let ci = a.ci_normal.unwrap();
        assert!(ci.width() > 0.0);
        assert!(a.ci_chebyshev.unwrap().width() > ci.width());
    }

    #[test]
    fn exact_query_strips_samples() {
        let exact = exact_query(&sum_plan(0.1), &catalog()).unwrap();
        assert_eq!(exact, vec![2000.0]);
    }

    #[test]
    fn count_and_avg() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .aggregate(vec![AggSpec::count_star("c"), AggSpec::avg(col("v"), "a")]);
        let r = approx_query(
            &plan,
            &catalog(),
            &ApproxOptions {
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((r.aggs[0].estimate - 2000.0).abs() < 250.0);
        // AVG of a constant column is exactly 1 with ~zero variance.
        assert!((r.aggs[1].estimate - 1.0).abs() < 1e-9);
        assert!(r.aggs[1].variance.unwrap() < 1e-9);
    }

    #[test]
    fn quantile_view_bounds() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .aggregate(vec![
                AggSpec::sum(col("v"), "lo").with_quantile(0.05),
                AggSpec::sum(col("v"), "hi").with_quantile(0.95),
            ]);
        let r = approx_query(&plan, &catalog(), &ApproxOptions::default()).unwrap();
        let lo = r.aggs[0].quantile_bound.unwrap();
        let hi = r.aggs[1].quantile_bound.unwrap();
        assert!(lo < r.aggs[0].estimate && r.aggs[1].estimate < hi);
    }

    #[test]
    fn join_query_estimates() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")))
            .aggregate(vec![AggSpec::sum(col("w"), "s")]);
        let r = approx_query(&plan, &catalog(), &ApproxOptions::default()).unwrap();
        // Truth: every t row joins one d row, Σw = 2000·2 = 4000.
        assert!((r.aggs[0].estimate - 4000.0).abs() < 600.0);
        assert_eq!(r.analysis.schema.n(), 2);
        assert!(r.aggs[0].variance.unwrap() > 0.0);
    }

    #[test]
    fn subsampled_variance_close_to_full() {
        let plan = sum_plan(0.8);
        let full = approx_query(&plan, &catalog(), &ApproxOptions::default()).unwrap();
        let sub = approx_query(
            &plan,
            &catalog(),
            &ApproxOptions {
                subsample_target: Some(300),
                ..Default::default()
            },
        )
        .unwrap();
        // Same point estimate (it uses the full result in both cases)…
        assert!((full.aggs[0].estimate - sub.aggs[0].estimate).abs() < 1e-9);
        // …and far fewer rows for variance estimation.
        assert!(sub.variance_rows < full.variance_rows / 2);
        // Variance agrees within a factor of 3 (it is an estimate of the
        // same quantity from ~300 tuples).
        let vf = full.aggs[0].variance.unwrap();
        let vs = sub.aggs[0].variance.unwrap();
        assert!(vs > vf / 3.0 && vs < vf * 3.0, "vf={vf}, vs={vs}");
    }

    #[test]
    fn non_aggregate_root_rejected() {
        let plan = LogicalPlan::scan("t");
        assert!(approx_query(&plan, &catalog(), &ApproxOptions::default()).is_err());
    }

    #[test]
    fn unsampled_plan_yields_exact_with_zero_variance() {
        let plan = LogicalPlan::scan("t").aggregate(vec![AggSpec::sum(col("v"), "s")]);
        let r = approx_query(&plan, &catalog(), &ApproxOptions::default()).unwrap();
        assert_eq!(r.aggs[0].estimate, 2000.0);
        assert!(r.aggs[0].variance.unwrap().abs() < 1e-6);
    }
}
