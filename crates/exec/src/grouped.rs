//! GROUP BY estimation: per-group aggregates with per-group confidence
//! intervals.
//!
//! The paper analyzes single SUM-like aggregates, but its machinery extends
//! to `GROUP BY` verbatim: for each group `g`, the group's SUM is the
//! SUM-like aggregate of `f_g(t) = f(t)·1{key(t)=g}`, so the *same* top
//! GUS quasi-operator (the grouping predicate is just another selection,
//! Proposition 5) analyzes every group. One pass over the sampled result
//! partitions tuples by key and runs an independent SBox per group.
//!
//! The classical caveat applies and is surfaced honestly: groups with **no
//! sampled tuple are absent from the output** (their estimate would be 0
//! with an honest but useless interval) — standard behaviour for
//! sampling-based group-by estimation.

use std::collections::BTreeMap;

use sa_core::hash::FpMap;
use sa_core::{estimate_from_sample_moments, GroupedMoments};
use sa_expr::{bind, eval, Expr};
use sa_plan::{rewrite, LogicalPlan, SoaAnalysis};
use sa_storage::{Catalog, Value};

use crate::approx::{agg_results_from_report, AggResult, ApproxOptions};
use crate::error::ExecError;
use crate::exec::{execute, ExecOptions};
use crate::Result;

/// Estimates for one observed group.
#[derive(Debug, Clone)]
pub struct GroupEstimate {
    /// The group key values, in `group_by` order.
    pub key: Vec<Value>,
    /// One result per aggregate in the `SELECT` list.
    pub aggs: Vec<AggResult>,
    /// Number of sampled result tuples in this group.
    pub sample_rows: u64,
}

/// The result of a grouped approximate query.
#[derive(Debug, Clone)]
pub struct GroupedApproxResult {
    /// Renderings of the group-by expressions.
    pub group_exprs: Vec<String>,
    /// One entry per group observed in the sample, ordered by key.
    pub groups: Vec<GroupEstimate>,
    /// The SOA analysis shared by every group.
    pub analysis: SoaAnalysis,
    /// Total sampled result tuples.
    pub result_rows: u64,
}

/// Approximate `SELECT group_by…, aggs… FROM … GROUP BY group_by…`.
///
/// `plan` is an ordinary aggregate plan (as for
/// [`crate::approx::approx_query`]); `group_by` are expressions over the
/// aggregate input's schema.
#[deprecated(
    since = "0.1.0",
    note = "use `sa_online::Engine::new(catalog).session().query_plan(&plan).group_by(...).batch()`"
)]
pub fn approx_group_query(
    plan: &LogicalPlan,
    group_by: &[Expr],
    catalog: &Catalog,
    opts: &ApproxOptions,
) -> Result<GroupedApproxResult> {
    if group_by.is_empty() {
        return Err(ExecError::Unsupported(
            "approx_group_query requires at least one GROUP BY expression; use approx_query \
             for scalar aggregates"
                .into(),
        ));
    }
    let analysis = rewrite(plan, catalog)?;
    let LogicalPlan::Aggregate { aggs, input } = plan else {
        return Err(ExecError::Unsupported(
            "approx_group_query requires an aggregate at the plan root".into(),
        ));
    };
    let rs = execute(
        input,
        catalog,
        &ExecOptions {
            seed: opts.seed,
            ..Default::default()
        },
    )?;
    let bound_keys: Vec<Expr> = group_by
        .iter()
        .map(|e| bind(e, &rs.schema))
        .collect::<std::result::Result<_, _>>()?;

    // Reuse the scalar driver's dimension layout by binding agg expressions
    // here (duplicated deliberately — the layouts are tiny).
    let layout = crate::approx::layout_dims(aggs, &rs.schema)?;
    let dims = layout.dims();
    let n = analysis.schema.n();

    // Partition rows by group key, fingerprint-hashed (keys are sorted
    // once at readout, not compared on every row).
    let mut partitions: FpMap<Vec<Value>, (GroupedMoments, u64)> = FpMap::new();
    for row in &rs.rows {
        let key: Vec<Value> = bound_keys
            .iter()
            .map(|e| eval(e, &row.values).map_err(ExecError::Expr))
            .collect::<Result<_>>()?;
        let f = crate::approx::f_vector(&layout, row)?;
        let (acc, count) = partitions.get_or_insert_with(key, || (GroupedMoments::new(n, dims), 0));
        acc.push(&row.lineage, &f)?;
        *count += 1;
    }

    let partitions = partitions.into_sorted();
    let mut groups = Vec::with_capacity(partitions.len());
    for (key, (acc, sample_rows)) in partitions {
        let report = estimate_from_sample_moments(&analysis.gus, &acc.finish())?;
        let aggs_out = agg_results_from_report(aggs, &layout, &report, opts.confidence);
        groups.push(GroupEstimate {
            key,
            aggs: aggs_out,
            sample_rows,
        });
    }
    Ok(GroupedApproxResult {
        group_exprs: group_by.iter().map(|e| e.to_string()).collect(),
        groups,
        analysis,
        result_rows: rs.rows.len() as u64,
    })
}

/// Ground truth per group: execute the sampling-free plan and compute exact
/// per-group aggregates (first-aggregate values keyed by group).
pub fn exact_group_query(
    plan: &LogicalPlan,
    group_by: &[Expr],
    catalog: &Catalog,
) -> Result<BTreeMap<Vec<Value>, Vec<f64>>> {
    let analysis = rewrite(plan, catalog)?;
    let LogicalPlan::Aggregate { aggs, input } = &analysis.core else {
        return Err(ExecError::Unsupported("aggregate plan required".into()));
    };
    let rs = execute(input, catalog, &ExecOptions::default())?;
    let bound_keys: Vec<Expr> = group_by
        .iter()
        .map(|e| bind(e, &rs.schema))
        .collect::<std::result::Result<_, _>>()?;
    let layout = crate::approx::layout_dims(aggs, &rs.schema)?;
    let mut sums: FpMap<Vec<Value>, Vec<f64>> = FpMap::new();
    for row in &rs.rows {
        let key: Vec<Value> = bound_keys
            .iter()
            .map(|e| eval(e, &row.values).map_err(ExecError::Expr))
            .collect::<Result<_>>()?;
        let f = crate::approx::f_vector(&layout, row)?;
        let entry = sums.get_or_insert_with(key, || vec![0.0; layout.dims()]);
        for (s, v) in entry.iter_mut().zip(&f) {
            *s += v;
        }
    }
    // Collapse dimensions to per-agg values (ratio for AVG).
    let mut out = BTreeMap::new();
    for (key, dims_sum) in sums.into_sorted() {
        let vals: Vec<f64> = layout
            .per_agg()
            .iter()
            .map(|(num, den)| match den {
                None => dims_sum[*num],
                Some(den) => dims_sum[*num] / dims_sum[*den],
            })
            .collect();
        out.insert(key, vals);
    }
    Ok(out)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use sa_expr::col;
    use sa_plan::AggSpec;
    use sa_sampling::SamplingMethod;
    use sa_storage::{DataType, Field, Schema, TableBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        // Three groups with known totals: A: 1000×1.0, B: 500×2.0, C: 100×5.0.
        for _ in 0..1000 {
            b.push_row(&[Value::str("A"), Value::Float(1.0)]).unwrap();
        }
        for _ in 0..500 {
            b.push_row(&[Value::str("B"), Value::Float(2.0)]).unwrap();
        }
        for _ in 0..100 {
            b.push_row(&[Value::str("C"), Value::Float(5.0)]).unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn plan() -> LogicalPlan {
        LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .aggregate(vec![AggSpec::sum(col("v"), "s"), AggSpec::count_star("n")])
    }

    #[test]
    fn per_group_estimates_near_truth() {
        let cat = catalog();
        let r = approx_group_query(
            &plan(),
            &[col("g")],
            &cat,
            &ApproxOptions {
                seed: 3,
                confidence: 0.95,
                subsample_target: None,
            },
        )
        .unwrap();
        assert_eq!(r.groups.len(), 3);
        let truth = [
            ("A", 1000.0, 1000.0),
            ("B", 1000.0, 500.0),
            ("C", 500.0, 100.0),
        ];
        for (g, (name, sum, count)) in r.groups.iter().zip(&truth) {
            assert_eq!(g.key, vec![Value::str(*name)]);
            let ci = g.aggs[0].ci_chebyshev.as_ref().unwrap();
            assert!(ci.contains(*sum), "{name}: {ci} misses {sum}");
            let ci = g.aggs[1].ci_chebyshev.as_ref().unwrap();
            assert!(ci.contains(*count), "{name}: {ci} misses {count}");
        }
    }

    #[test]
    fn per_group_unbiased_across_trials() {
        let cat = catalog();
        let p = plan();
        let trials = 150u64;
        let mut sum_a = 0.0;
        for seed in 0..trials {
            let r = approx_group_query(
                &p,
                &[col("g")],
                &cat,
                &ApproxOptions {
                    seed,
                    confidence: 0.95,
                    subsample_target: None,
                },
            )
            .unwrap();
            let a = r
                .groups
                .iter()
                .find(|g| g.key == vec![Value::str("A")])
                .unwrap();
            sum_a += a.aggs[0].estimate;
        }
        let mean = sum_a / trials as f64;
        assert!((mean - 1000.0).abs() < 25.0, "mean {mean}");
    }

    #[test]
    fn exact_group_query_truth() {
        let cat = catalog();
        let exact = exact_group_query(&plan(), &[col("g")], &cat).unwrap();
        assert_eq!(exact[&vec![Value::str("A")]], vec![1000.0, 1000.0]);
        assert_eq!(exact[&vec![Value::str("B")]], vec![1000.0, 500.0]);
        assert_eq!(exact[&vec![Value::str("C")]], vec![500.0, 100.0]);
    }

    #[test]
    fn unseen_groups_are_absent() {
        // At a very low rate the rare group C (100 rows) can vanish.
        let cat = catalog();
        let sparse = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.005 })
            .aggregate(vec![AggSpec::count_star("n")]);
        let mut saw_missing = false;
        for seed in 0..30 {
            let r = approx_group_query(
                &sparse,
                &[col("g")],
                &cat,
                &ApproxOptions {
                    seed,
                    confidence: 0.95,
                    subsample_target: None,
                },
            )
            .unwrap();
            if r.groups.len() < 3 {
                saw_missing = true;
                break;
            }
        }
        assert!(saw_missing, "expected some run to miss the rare group");
    }

    #[test]
    fn group_by_requires_keys_and_aggregate_root() {
        let cat = catalog();
        assert!(approx_group_query(&plan(), &[], &cat, &ApproxOptions::default()).is_err());
        let no_agg = LogicalPlan::scan("t");
        assert!(approx_group_query(&no_agg, &[col("g")], &cat, &ApproxOptions::default()).is_err());
    }

    #[test]
    fn avg_per_group() {
        let cat = catalog();
        let p = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .aggregate(vec![AggSpec::avg(col("v"), "a")]);
        let r = approx_group_query(
            &p,
            &[col("g")],
            &cat,
            &ApproxOptions {
                seed: 1,
                confidence: 0.95,
                subsample_target: None,
            },
        )
        .unwrap();
        // AVG within each constant-valued group is exact.
        for (g, expect) in r.groups.iter().zip([1.0, 2.0, 5.0]) {
            assert!((g.aggs[0].estimate - expect).abs() < 1e-9);
        }
    }
}
