//! Dynamically typed scalar values.
//!
//! [`Value`] is the unit of data exchanged between the storage, expression and
//! execution layers. Floats are wrapped in a total order (NaN sorts last,
//! `-0.0 == 0.0`) so values can be used as hash-join and group-by keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::schema::DataType;

/// A dynamically typed scalar.
///
/// `Null` compares equal to itself and less than every other value, which is
/// sufficient for the engine's needs (SQL three-valued logic is handled in the
/// expression layer, where comparisons with `Null` evaluate to `Null`).
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Immutable shared string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`DataType`] of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: integers widen to `f64`; everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (no float truncation — floats return `None`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total-order comparison used for sorting and join keys.
    ///
    /// Cross-type numeric comparisons (`Int` vs `Float`) compare numerically;
    /// otherwise values order by type tag first (`Null < Bool < Int/Float <
    /// Str`). NaN sorts after every other float and equals itself.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Int(_), Str(_)) | (Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) | (Str(_), Float(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        // Collapse -0.0/+0.0 so Eq agrees with Hash.
        (false, false) => {
            if a == b {
                Ordering::Equal
            } else {
                a.partial_cmp(&b).expect("non-NaN floats compare")
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and floats that are numerically equal must hash equally
            // because they compare equal in `total_cmp`. Hash every numeric as
            // the bit pattern of its f64 value (with -0.0 normalized), except
            // integers too large for exact f64 representation, which can only
            // equal themselves.
            Value::Int(i) => {
                let f = *i as f64;
                if f as i64 == *i {
                    state.write_u8(2);
                    state.write_u64(norm_f64_bits(f));
                } else {
                    state.write_u8(3);
                    state.write_i64(*i);
                }
            }
            Value::Float(f) => {
                if f.is_nan() {
                    state.write_u8(4);
                } else {
                    state.write_u8(2);
                    state.write_u64(norm_f64_bits(*f));
                }
            }
            Value::Str(s) => {
                state.write_u8(5);
                s.hash(state);
            }
        }
    }
}

pub(crate) fn norm_f64_bits(f: f64) -> u64 {
    // Normalize -0.0 to +0.0 so equal values hash equally.
    if f == 0.0 {
        0f64.to_bits()
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn negative_zero_equals_zero_and_hashes_equal() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn nan_is_self_equal_and_sorts_last() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert!(Value::Float(1e308) < nan);
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn null_sorts_first_and_equals_itself() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn type_tag_ordering() {
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Int(5) < Value::str("5"));
        assert!(Value::Float(1.0) < Value::str(""));
    }

    #[test]
    fn large_int_precision_not_lost_in_ordering() {
        // 2^53 + 1 is not representable in f64.
        let big = (1i64 << 53) + 1;
        assert_ne!(Value::Int(big), Value::Int(big - 1));
        assert!(Value::Int(big - 1) < Value::Int(big));
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Float(7.0).as_i64(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
    }
}
