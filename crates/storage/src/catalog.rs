//! A name → table catalog shared across the engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::StorageError;
use crate::table::Table;
use crate::Result;

/// A collection of named tables.
///
/// Tables are shared via `Arc` so executors, samplers and estimators can hold
/// references without copying data. Names are case-sensitive.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under its own name. Fails on duplicates.
    pub fn register(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StorageError::DuplicateName { name });
        }
        self.tables.insert(name, Arc::new(table));
        Ok(())
    }

    /// Register an already-shared table handle under `name`.
    pub fn register_arc(&mut self, name: impl Into<String>, table: Arc<Table>) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StorageError::DuplicateName { name });
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable { name: name.into() })
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterate over (name, table) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Table>)> {
        self.tables.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn table(name: &str) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new(name, schema);
        b.push_row(&[Value::Int(1)]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        c.register(table("a")).unwrap();
        assert!(c.contains("a"));
        assert_eq!(c.get("a").unwrap().row_count(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut c = Catalog::new();
        c.register(table("a")).unwrap();
        assert!(matches!(
            c.register(table("a")),
            Err(StorageError::DuplicateName { .. })
        ));
    }

    #[test]
    fn unknown_table() {
        let c = Catalog::new();
        assert!(matches!(
            c.get("zzz"),
            Err(StorageError::UnknownTable { .. })
        ));
        assert!(c.is_empty());
    }

    #[test]
    fn iteration_in_name_order() {
        let mut c = Catalog::new();
        c.register(table("b")).unwrap();
        c.register(table("a")).unwrap();
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn register_arc_shares() {
        let mut c = Catalog::new();
        let t = Arc::new(table("a"));
        c.register_arc("alias", t.clone()).unwrap();
        assert!(Arc::ptr_eq(&c.get("alias").unwrap(), &t));
    }
}
