//! Schemas: ordered, named, typed columns with optional table qualifiers.

use std::fmt;
use std::sync::Arc;

use crate::error::StorageError;
use crate::Result;

/// The scalar types the engine understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// True if arithmetic is defined on this type.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "Bool",
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Str => "Str",
        };
        f.write_str(s)
    }
}

/// One column of a schema: a name, an optional table qualifier and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Table qualifier (e.g. `lineitem`), if any.
    pub qualifier: Option<Arc<str>>,
    /// Column name (e.g. `l_tax`).
    pub name: Arc<str>,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// An unqualified field.
    pub fn new(name: impl AsRef<str>, data_type: DataType) -> Self {
        Field {
            qualifier: None,
            name: Arc::from(name.as_ref()),
            data_type,
        }
    }

    /// A field qualified by its table name.
    pub fn qualified(table: impl AsRef<str>, name: impl AsRef<str>, data_type: DataType) -> Self {
        Field {
            qualifier: Some(Arc::from(table.as_ref())),
            name: Arc::from(name.as_ref()),
            data_type,
        }
    }

    /// Re-qualify this field with a new table or alias name.
    pub fn with_qualifier(&self, table: impl AsRef<str>) -> Self {
        Field {
            qualifier: Some(Arc::from(table.as_ref())),
            name: self.name.clone(),
            data_type: self.data_type,
        }
    }

    /// `qualifier.name` or bare `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.to_string(),
        }
    }

    /// Whether `name` refers to this field. Accepts `col`, or `tbl.col` when
    /// the qualifier matches.
    pub fn matches(&self, name: &str) -> bool {
        match name.split_once('.') {
            Some((q, n)) => self.qualifier.as_deref() == Some(q) && &*self.name == n,
            None => &*self.name == name,
        }
    }
}

/// An ordered list of [`Field`]s. Cheap to clone via [`SchemaRef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields. Duplicate *qualified* names are rejected;
    /// duplicate bare names under different qualifiers are allowed (as after
    /// a join).
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[..i] {
                if f.name == g.name && f.qualifier == g.qualifier {
                    return Err(StorageError::DuplicateName {
                        name: f.qualified_name(),
                    });
                }
            }
        }
        Ok(Schema { fields })
    }

    /// An empty schema.
    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Resolve a (possibly qualified) column name to an index.
    ///
    /// Returns an error when the name is unknown **or ambiguous** (a bare name
    /// matching several qualified fields).
    pub fn index_of(&self, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(name) {
                if found.is_some() {
                    return Err(StorageError::UnknownColumn {
                        name: format!("{name} (ambiguous)"),
                    });
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| StorageError::UnknownColumn { name: name.into() })
    }

    /// Concatenate two schemas (as a join does).
    pub fn join(&self, other: &Schema) -> Result<Schema> {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// A copy of this schema with every field re-qualified to `table`.
    pub fn qualify_all(&self, table: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| f.with_qualifier(table))
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.qualified_name(), field.data_type)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> Schema {
        Schema::new(vec![
            Field::qualified("l", "orderkey", DataType::Int),
            Field::qualified("o", "orderkey", DataType::Int),
            Field::qualified("l", "tax", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn qualified_lookup() {
        let s = schema2();
        assert_eq!(s.index_of("l.orderkey").unwrap(), 0);
        assert_eq!(s.index_of("o.orderkey").unwrap(), 1);
        assert_eq!(s.index_of("tax").unwrap(), 2);
    }

    #[test]
    fn ambiguous_bare_name_rejected() {
        let s = schema2();
        let err = s.index_of("orderkey").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_column_rejected() {
        let s = schema2();
        assert!(matches!(
            s.index_of("nope"),
            Err(StorageError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn duplicate_qualified_name_rejected() {
        let r = Schema::new(vec![
            Field::qualified("l", "x", DataType::Int),
            Field::qualified("l", "x", DataType::Int),
        ]);
        assert!(matches!(r, Err(StorageError::DuplicateName { .. })));
    }

    #[test]
    fn same_bare_name_different_qualifier_allowed() {
        assert!(Schema::new(vec![
            Field::qualified("a", "k", DataType::Int),
            Field::qualified("b", "k", DataType::Int),
        ])
        .is_ok());
    }

    #[test]
    fn join_concatenates() {
        let a = Schema::new(vec![Field::qualified("a", "x", DataType::Int)]).unwrap();
        let b = Schema::new(vec![Field::qualified("b", "y", DataType::Float)]).unwrap();
        let j = a.join(&b).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.index_of("b.y").unwrap(), 1);
    }

    #[test]
    fn qualify_all_requalifies() {
        let a = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let q = a.qualify_all("t");
        assert_eq!(q.index_of("t.x").unwrap(), 0);
    }

    #[test]
    fn display_roundtrip_contains_names() {
        let s = schema2().to_string();
        assert!(s.contains("l.orderkey: Int"));
        assert!(s.contains("l.tax: Float"));
    }
}
