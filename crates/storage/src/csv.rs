//! CSV import/export for tables.
//!
//! A small, dependency-free reader/writer so real datasets can be loaded
//! into the engine: RFC-4180-style quoting (`"` with `""` escapes), optional
//! header row, typed parsing against a declared [`Schema`], empty fields as
//! `NULL`.

use std::io::{BufRead, Write};

use crate::error::StorageError;
use crate::schema::{DataType, Schema};
use crate::table::{Table, TableBuilder};
use crate::value::Value;
use crate::Result;

/// Options for [`read_csv`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: u8,
    /// Skip the first row as a header (default true).
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: b',',
            has_header: true,
        }
    }
}

/// Read a CSV stream into a [`Table`] named `name` with the given schema.
///
/// Each record must have exactly one field per schema column. Empty fields
/// parse as `NULL`; numeric and boolean fields are parsed by type; parse
/// failures surface as [`StorageError::TypeMismatch`] with row/column
/// context.
pub fn read_csv<R: BufRead>(
    reader: R,
    name: &str,
    schema: Schema,
    options: &CsvOptions,
) -> Result<Table> {
    let mut builder = TableBuilder::new(name, schema.clone());
    let mut records = CsvRecords::new(reader, options.delimiter);
    let mut row_no = 0usize;
    if options.has_header {
        let _ = records.next_record()?; // discard
    }
    while let Some(fields) = records.next_record()? {
        row_no += 1;
        // Tolerate a trailing blank record (e.g. file ends with \n\n).
        if fields.len() == 1 && fields[0].is_empty() {
            continue;
        }
        if fields.len() != schema.len() {
            return Err(StorageError::RaggedColumns {
                table: format!("{name} (csv record {row_no})"),
                lengths: vec![fields.len(), schema.len()],
            });
        }
        let mut values = Vec::with_capacity(fields.len());
        for (field, col) in fields.iter().zip(schema.fields()) {
            values.push(parse_field(field, col.data_type).map_err(|_| {
                StorageError::TypeMismatch {
                    column: format!("{} (csv record {row_no})", col.qualified_name()),
                    expected: col.data_type,
                    got: format!("{field:?}"),
                }
            })?);
        }
        builder.push_row(&values)?;
    }
    builder.finish()
}

fn parse_field(field: &str, dt: DataType) -> std::result::Result<Value, ()> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match dt {
        DataType::Int => Value::Int(field.trim().parse().map_err(|_| ())?),
        DataType::Float => Value::Float(field.trim().parse().map_err(|_| ())?),
        DataType::Bool => match field.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => return Err(()),
        },
        DataType::Str => Value::str(field),
    })
}

/// Write a table as CSV (header row of bare column names, RFC-4180 quoting,
/// `NULL` as an empty field).
pub fn write_csv<W: Write>(table: &Table, writer: &mut W) -> std::io::Result<()> {
    let schema = table.schema();
    for (i, f) in schema.fields().iter().enumerate() {
        if i > 0 {
            writer.write_all(b",")?;
        }
        write_field(writer, &f.name)?;
    }
    writer.write_all(b"\n")?;
    let columns = table
        .columns()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    for rid in 0..table.row_count() {
        for (i, col) in columns.iter().enumerate() {
            if i > 0 {
                writer.write_all(b",")?;
            }
            match col.value(rid as usize) {
                Value::Null => {}
                Value::Str(s) => write_field(writer, &s)?,
                other => write!(writer, "{other}")?,
            }
        }
        writer.write_all(b"\n")?;
    }
    Ok(())
}

fn write_field<W: Write>(writer: &mut W, s: &str) -> std::io::Result<()> {
    if s.contains([',', '"', '\n', '\r']) {
        writer.write_all(b"\"")?;
        writer.write_all(s.replace('"', "\"\"").as_bytes())?;
        writer.write_all(b"\"")
    } else {
        writer.write_all(s.as_bytes())
    }
}

/// Incremental CSV record reader with quote handling.
struct CsvRecords<R> {
    reader: R,
    delimiter: u8,
    buf: Vec<u8>,
    done: bool,
}

impl<R: BufRead> CsvRecords<R> {
    fn new(reader: R, delimiter: u8) -> Self {
        CsvRecords {
            reader,
            delimiter,
            buf: Vec::new(),
            done: false,
        }
    }

    /// Next record, or `None` at end of input. A record may span multiple
    /// physical lines when a quoted field contains newlines.
    fn next_record(&mut self) -> Result<Option<Vec<String>>> {
        if self.done {
            return Ok(None);
        }
        self.buf.clear();
        // Read physical lines until quotes are balanced.
        loop {
            let n = self.reader.read_until(b'\n', &mut self.buf).map_err(|e| {
                StorageError::TypeMismatch {
                    column: "<csv io>".into(),
                    expected: DataType::Str,
                    got: e.to_string(),
                }
            })?;
            if n == 0 {
                self.done = true;
                if self.buf.is_empty() {
                    return Ok(None);
                }
                break;
            }
            // Strip trailing newline / CRLF of this physical line.
            while matches!(self.buf.last(), Some(b'\n') | Some(b'\r')) {
                self.buf.pop();
            }
            let total_quotes = self.buf.iter().filter(|&&b| b == b'"').count();
            if total_quotes.is_multiple_of(2) {
                break;
            }
            // Unbalanced: the newline was inside a quoted field; restore it.
            self.buf.push(b'\n');
        }
        Ok(Some(split_record(&self.buf, self.delimiter)))
    }
}

fn split_record(line: &[u8], delimiter: u8) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut i = 0;
    while i < line.len() {
        let b = line[i];
        if in_quotes {
            if b == b'"' {
                if i + 1 < line.len() && line[i + 1] == b'"' {
                    field.push('"');
                    i += 2;
                    continue;
                }
                in_quotes = false;
            } else {
                field.push(b as char);
            }
        } else if b == b'"' {
            in_quotes = true;
        } else if b == delimiter {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(b as char);
        }
        i += 1;
    }
    fields.push(field);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use std::io::Cursor;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("price", DataType::Float),
            Field::new("active", DataType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_basic() {
        let input = "id,name,price,active\n1,widget,2.5,true\n2,gadget,0.75,false\n";
        let t = read_csv(Cursor::new(input), "t", schema(), &CsvOptions::default()).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, 1).unwrap(), Value::str("widget"));
        assert_eq!(t.value(1, 2).unwrap(), Value::Float(0.75));
        assert_eq!(t.value(1, 3).unwrap(), Value::Bool(false));

        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let t2 = read_csv(Cursor::new(&out), "t", schema(), &CsvOptions::default()).unwrap();
        assert_eq!(t2.row_count(), 2);
        for r in 0..2 {
            assert_eq!(t.row(r).unwrap(), t2.row(r).unwrap());
        }
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let input = "id,name,price,active\n1,\"a, \"\"quoted\"\" name\",1.0,t\n";
        let t = read_csv(Cursor::new(input), "t", schema(), &CsvOptions::default()).unwrap();
        assert_eq!(t.value(0, 1).unwrap(), Value::str("a, \"quoted\" name"));
    }

    #[test]
    fn quoted_field_spanning_lines() {
        let input = "id,name,price,active\n1,\"two\nlines\",1.0,1\n";
        let t = read_csv(Cursor::new(input), "t", schema(), &CsvOptions::default()).unwrap();
        assert_eq!(t.value(0, 1).unwrap(), Value::str("two\nlines"));
        // And the writer quotes it back correctly.
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let t2 = read_csv(Cursor::new(&out), "t", schema(), &CsvOptions::default()).unwrap();
        assert_eq!(t2.value(0, 1).unwrap(), Value::str("two\nlines"));
    }

    #[test]
    fn empty_fields_are_null() {
        let input = "id,name,price,active\n1,,,\n";
        let t = read_csv(Cursor::new(input), "t", schema(), &CsvOptions::default()).unwrap();
        assert!(t.value(0, 1).unwrap().is_null());
        assert!(t.value(0, 2).unwrap().is_null());
        assert!(t.value(0, 3).unwrap().is_null());
    }

    #[test]
    fn no_header_and_custom_delimiter() {
        let input = "1|x|2.0|true\n2|y|3.0|false\n";
        let opts = CsvOptions {
            delimiter: b'|',
            has_header: false,
        };
        let t = read_csv(Cursor::new(input), "t", schema(), &opts).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(1, 1).unwrap(), Value::str("y"));
    }

    #[test]
    fn crlf_line_endings() {
        let input = "id,name,price,active\r\n1,a,1.0,true\r\n";
        let t = read_csv(Cursor::new(input), "t", schema(), &CsvOptions::default()).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.value(0, 1).unwrap(), Value::str("a"));
    }

    #[test]
    fn type_errors_carry_position() {
        let input = "id,name,price,active\nnot_an_int,a,1.0,true\n";
        let err = read_csv(Cursor::new(input), "t", schema(), &CsvOptions::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("record 1"), "{msg}");
        assert!(msg.contains("id"), "{msg}");
    }

    #[test]
    fn wrong_arity_rejected() {
        let input = "id,name,price,active\n1,a,1.0\n";
        assert!(matches!(
            read_csv(Cursor::new(input), "t", schema(), &CsvOptions::default()),
            Err(StorageError::RaggedColumns { .. })
        ));
    }

    #[test]
    fn empty_input_yields_empty_table() {
        let t = read_csv(Cursor::new(""), "t", schema(), &CsvOptions::default()).unwrap();
        assert_eq!(t.row_count(), 0);
        let opts = CsvOptions {
            has_header: false,
            ..Default::default()
        };
        let t = read_csv(Cursor::new(""), "t", schema(), &opts).unwrap();
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn bool_spellings() {
        let input = "id,name,price,active\n1,a,1.0,T\n2,b,1.0,0\n";
        let t = read_csv(Cursor::new(input), "t", schema(), &CsvOptions::default()).unwrap();
        assert_eq!(t.value(0, 3).unwrap(), Value::Bool(true));
        assert_eq!(t.value(1, 3).unwrap(), Value::Bool(false));
    }

    #[test]
    fn loaded_table_joins_with_engine() {
        // The loaded table is a first-class citizen: register and query it.
        let input = "id,name,price,active\n1,a,10.0,true\n2,b,20.0,true\n3,c,30.0,false\n";
        let t = read_csv(
            Cursor::new(input),
            "items",
            schema(),
            &CsvOptions::default(),
        )
        .unwrap();
        let mut catalog = crate::Catalog::new();
        catalog.register(t).unwrap();
        assert_eq!(catalog.get("items").unwrap().row_count(), 3);
    }
}
