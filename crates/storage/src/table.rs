//! Immutable columnar tables with stable row identifiers and block structure.
//!
//! Row identity matters here more than in an ordinary engine: the GUS theory
//! performs all second-moment accounting on *lineage*, and the lineage of a
//! base-table tuple is its [`RowId`]. Block structure exists so block-level
//! (`SYSTEM`) sampling can use the block id as the lineage unit instead.

use std::sync::Arc;

use crate::column::{Column, ColumnBuilder};
use crate::error::StorageError;
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;
use crate::Result;

/// Stable identifier of a row within one table (its lineage id).
pub type RowId = u64;

/// Identifier of a block (page) of rows within one table.
pub type BlockId = u64;

/// Default number of rows per block, mirroring a small disk page.
pub const DEFAULT_BLOCK_ROWS: usize = 256;

/// An immutable, named, columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    name: Arc<str>,
    schema: SchemaRef,
    columns: Vec<Column>,
    row_count: u64,
    block_rows: usize,
}

impl Table {
    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema (fields qualified by the table name).
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by (possibly qualified) name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// The value at (`row`, `col`).
    pub fn value(&self, row: RowId, col: usize) -> Result<Value> {
        if row >= self.row_count {
            return Err(StorageError::RowOutOfBounds {
                row,
                len: self.row_count,
            });
        }
        Ok(self.columns[col].value(row as usize))
    }

    /// Materialize an entire row.
    pub fn row(&self, row: RowId) -> Result<Vec<Value>> {
        if row >= self.row_count {
            return Err(StorageError::RowOutOfBounds {
                row,
                len: self.row_count,
            });
        }
        Ok(self.columns.iter().map(|c| c.value(row as usize)).collect())
    }

    /// Rows per block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of blocks (ceil of rows / block size); 0 for an empty table.
    pub fn block_count(&self) -> u64 {
        if self.row_count == 0 {
            0
        } else {
            self.row_count.div_ceil(self.block_rows as u64)
        }
    }

    /// The block containing `row`.
    pub fn block_of(&self, row: RowId) -> BlockId {
        row / self.block_rows as u64
    }

    /// Gather the half-open row range `[start, end)` as a columnar batch —
    /// a typed memcpy per column, no per-row [`Value`] materialization
    /// (string columns share their dictionary with the batch).
    pub fn batch_range(&self, start: RowId, end: RowId) -> Result<crate::chunk::ColumnarBatch> {
        if end > self.row_count || start > end {
            return Err(StorageError::RowOutOfBounds {
                row: end,
                len: self.row_count,
            });
        }
        let (s, e) = (start as usize, end as usize);
        let columns = self
            .columns
            .iter()
            .map(|c| crate::chunk::ColumnVec::from_column_range(c, s, e))
            .collect();
        Ok(crate::chunk::ColumnarBatch::new(columns, e - s))
    }

    /// The half-open row range `[start, end)` of block `block`.
    pub fn block_range(&self, block: BlockId) -> (RowId, RowId) {
        let start = block * self.block_rows as u64;
        let end = (start + self.block_rows as u64).min(self.row_count);
        (start, end)
    }
}

/// Builder for a [`Table`]: declare the schema, then push rows.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    builders: Vec<ColumnBuilder>,
    schema: Schema,
    block_rows: usize,
}

impl TableBuilder {
    /// Start a table named `name` with the given schema. Fields are
    /// re-qualified by the table name so joins produce unambiguous schemas.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        let schema = schema.qualify_all(&name);
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.qualified_name(), f.data_type))
            .collect();
        TableBuilder {
            name,
            builders,
            schema,
            block_rows: DEFAULT_BLOCK_ROWS,
        }
    }

    /// Override the block (page) size in rows. Must be nonzero.
    pub fn with_block_rows(mut self, block_rows: usize) -> Self {
        assert!(block_rows > 0, "block size must be positive");
        self.block_rows = block_rows;
        self
    }

    /// Reserve capacity for `n` more rows in every column.
    pub fn reserve(&mut self, n: usize) {
        for b in &mut self.builders {
            b.reserve(n);
        }
    }

    /// Append one row; the slice length must equal the schema arity.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        assert_eq!(
            row.len(),
            self.builders.len(),
            "row arity {} != schema arity {}",
            row.len(),
            self.builders.len()
        );
        for (b, v) in self.builders.iter_mut().zip(row.iter()) {
            b.push(v.clone())?;
        }
        Ok(())
    }

    /// Finish building. Verifies all columns have equal length.
    pub fn finish(self) -> Result<Table> {
        let lengths: Vec<usize> = self.builders.iter().map(|b| b.len()).collect();
        if lengths.windows(2).any(|w| w[0] != w[1]) {
            return Err(StorageError::RaggedColumns {
                table: self.name,
                lengths,
            });
        }
        let row_count = lengths.first().copied().unwrap_or(0) as u64;
        Ok(Table {
            name: Arc::from(self.name.as_str()),
            schema: Arc::new(self.schema),
            columns: self.builders.into_iter().map(|b| b.finish()).collect(),
            row_count,
            block_rows: self.block_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema).with_block_rows(2);
        for i in 0..5 {
            b.push_row(&[Value::Int(i), Value::Float(i as f64 * 0.5)])
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn build_and_read() {
        let t = small_table();
        assert_eq!(t.name(), "t");
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.value(3, 0).unwrap(), Value::Int(3));
        assert_eq!(t.row(4).unwrap(), vec![Value::Int(4), Value::Float(2.0)]);
    }

    #[test]
    fn schema_is_qualified_by_table_name() {
        let t = small_table();
        assert_eq!(t.schema().index_of("t.k").unwrap(), 0);
        assert_eq!(t.column_by_name("t.v").unwrap().len(), 5);
    }

    #[test]
    fn row_out_of_bounds() {
        let t = small_table();
        assert!(matches!(
            t.value(5, 0),
            Err(StorageError::RowOutOfBounds { .. })
        ));
        assert!(t.row(99).is_err());
    }

    #[test]
    fn blocks() {
        let t = small_table(); // 5 rows, 2 per block -> 3 blocks
        assert_eq!(t.block_count(), 3);
        assert_eq!(t.block_of(0), 0);
        assert_eq!(t.block_of(4), 2);
        assert_eq!(t.block_range(0), (0, 2));
        assert_eq!(t.block_range(2), (4, 5)); // last block is short
    }

    #[test]
    fn empty_table() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).unwrap();
        let t = TableBuilder::new("e", schema).finish().unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.block_count(), 0);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        let _ = b.push_row(&[Value::Int(1), Value::Int(2)]);
    }
}
