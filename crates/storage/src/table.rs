//! Immutable columnar tables with stable row identifiers and block structure.
//!
//! Row identity matters here more than in an ordinary engine: the GUS theory
//! performs all second-moment accounting on *lineage*, and the lineage of a
//! base-table tuple is its [`RowId`]. Block structure exists so block-level
//! (`SYSTEM`) sampling can use the block id as the lineage unit instead.

use std::sync::Arc;

use crate::column::{Column, ColumnBuilder};
use crate::error::StorageError;
use crate::format::MappedTable;
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;
use crate::Result;

/// Stable identifier of a row within one table (its lineage id).
pub type RowId = u64;

/// Identifier of a block (page) of rows within one table.
pub type BlockId = u64;

/// Default number of rows per block, mirroring a small disk page.
pub const DEFAULT_BLOCK_ROWS: usize = 256;

/// Where a table's column data lives.
///
/// Both backends expose the same gather surface through [`Table`] and emit
/// bit-identical [`crate::chunk::ColumnVec`]s, so everything above
/// `batch_range` — samplers, estimators, lineage — is backend-agnostic
/// (enforced by `tests/storage_equivalence.rs`).
#[derive(Debug, Clone)]
pub enum TableStore {
    /// Columns resident in RAM (built via [`TableBuilder`]).
    InRam(Vec<Column>),
    /// Columns in a memory-mapped `.sac` file (see [`crate::format`]).
    Mapped(MappedTable),
}

/// An immutable, named, columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    name: Arc<str>,
    schema: SchemaRef,
    store: TableStore,
    row_count: u64,
    block_rows: usize,
}

impl Table {
    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema (fields qualified by the table name).
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// True when the table is backed by a memory-mapped file.
    pub fn is_mapped(&self) -> bool {
        matches!(self.store, TableStore::Mapped(_))
    }

    pub(crate) fn from_mapped(
        name: String,
        schema: Schema,
        block_rows: usize,
        row_count: u64,
        mapped: MappedTable,
    ) -> Table {
        Table {
            name: Arc::from(name.as_str()),
            schema: Arc::new(schema),
            store: TableStore::Mapped(mapped),
            row_count,
            block_rows,
        }
    }

    /// The columns, in schema order. For a mapped table this decodes every
    /// column into RAM once (verifying page checksums, and caching the
    /// result) — it exists for API parity and row-at-a-time callers; the
    /// scan path never uses it. Errs with
    /// [`StorageError::CorruptPage`] when a mapped page fails its checksum.
    pub fn columns(&self) -> Result<&[Column]> {
        match &self.store {
            TableStore::InRam(cols) => Ok(cols),
            TableStore::Mapped(m) => m.decoded_columns(),
        }
    }

    /// Column by index (see [`Table::columns`] for the mapped-table cost).
    pub fn column(&self, idx: usize) -> Result<&Column> {
        Ok(&self.columns()?[idx])
    }

    /// Column by (possibly qualified) name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns()?[idx])
    }

    /// Evaluate the storage fault-injection sites for one gather, with
    /// bounded retry + backoff for transient (injected) I/O faults. Real
    /// mapped reads cannot fail transiently — the OS either delivers the
    /// page or kills the process — so this is one untaken branch unless a
    /// `--fault` spec armed the registry. Backend-blind on purpose: both
    /// stores surface the same typed errors through the same gather
    /// surface.
    fn fault_guard(&self) -> Result<()> {
        if !sa_fault::armed() {
            return Ok(());
        }
        use sa_fault::sites;
        if sa_fault::hit(sites::STORAGE_PAGE_LATENCY) {
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        if sa_fault::hit(sites::STORAGE_PAGE_TORN) {
            crate::format::note_corrupt_page();
            return Err(StorageError::CorruptPage {
                path: self.name.to_string(),
                page: 0,
                message: "injected torn page".into(),
            });
        }
        let mut attempt = 0u32;
        while sa_fault::hit(sites::STORAGE_PAGE_IO) {
            attempt += 1;
            if attempt >= 3 {
                return Err(StorageError::Io {
                    path: self.name.to_string(),
                    message: format!("injected i/o fault persisted across {attempt} attempts"),
                });
            }
            crate::format::note_retry();
            std::thread::sleep(std::time::Duration::from_micros(100 << attempt));
        }
        Ok(())
    }

    /// Number of columns (no decode on either backend).
    pub fn column_count(&self) -> usize {
        match &self.store {
            TableStore::InRam(cols) => cols.len(),
            TableStore::Mapped(m) => m.column_count(),
        }
    }

    /// The value at (`row`, `col`).
    pub fn value(&self, row: RowId, col: usize) -> Result<Value> {
        if row >= self.row_count {
            return Err(StorageError::RowOutOfBounds {
                row,
                len: self.row_count,
            });
        }
        match &self.store {
            TableStore::InRam(cols) => Ok(cols[col].value(row as usize)),
            TableStore::Mapped(m) => m.value(row as usize, col),
        }
    }

    /// Materialize an entire row.
    pub fn row(&self, row: RowId) -> Result<Vec<Value>> {
        if row >= self.row_count {
            return Err(StorageError::RowOutOfBounds {
                row,
                len: self.row_count,
            });
        }
        (0..self.column_count())
            .map(|c| match &self.store {
                TableStore::InRam(cols) => Ok(cols[c].value(row as usize)),
                TableStore::Mapped(m) => m.value(row as usize, c),
            })
            .collect()
    }

    /// Rows per block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of blocks (ceil of rows / block size); 0 for an empty table.
    pub fn block_count(&self) -> u64 {
        if self.row_count == 0 {
            0
        } else {
            self.row_count.div_ceil(self.block_rows as u64)
        }
    }

    /// The block containing `row`.
    pub fn block_of(&self, row: RowId) -> BlockId {
        row / self.block_rows as u64
    }

    /// Gather the half-open row range `[start, end)` as a columnar batch —
    /// a typed memcpy per column (in-RAM) or a decode out of the map, no
    /// per-row [`Value`] materialization (string columns share their
    /// dictionary with the batch).
    ///
    /// Empty and reversed ranges (`start >= end`) are a defined no-op: the
    /// result is an empty batch with the full column shapes, never an error.
    /// Only `start < end` ranges are bounds-checked against the row count.
    pub fn batch_range(&self, start: RowId, end: RowId) -> Result<crate::chunk::ColumnarBatch> {
        let all: Vec<usize> = (0..self.column_count()).collect();
        self.batch_range_cols(start, end, &all)
    }

    /// [`Table::batch_range`] restricted to the columns in `cols` (indices
    /// into the table schema; the batch holds them in `cols` order). This is
    /// the projection-pushdown entry point: unlisted columns are never
    /// touched, which on the mapped backend means their pages are never
    /// faulted in.
    pub fn batch_range_cols(
        &self,
        start: RowId,
        end: RowId,
        cols: &[usize],
    ) -> Result<crate::chunk::ColumnarBatch> {
        if start >= end {
            // Defined empty/reversed-range contract: an empty batch with the
            // requested column shapes (no pages touched, no faults).
            let columns = cols
                .iter()
                .map(|&c| self.gather_cell_range(c, 0, 0))
                .collect::<Result<_>>()?;
            return Ok(crate::chunk::ColumnarBatch::new(columns, 0));
        }
        if end > self.row_count {
            return Err(StorageError::RowOutOfBounds {
                row: end,
                len: self.row_count,
            });
        }
        self.fault_guard()?;
        let (s, e) = (start as usize, end as usize);
        let columns = cols
            .iter()
            .map(|&c| self.gather_cell_range(c, s, e))
            .collect::<Result<_>>()?;
        Ok(crate::chunk::ColumnarBatch::new(columns, e - s))
    }

    fn gather_cell_range(
        &self,
        col: usize,
        start: usize,
        end: usize,
    ) -> Result<crate::chunk::ColumnVec> {
        match &self.store {
            TableStore::InRam(columns) => Ok(crate::chunk::ColumnVec::from_column_range(
                &columns[col],
                start,
                end,
            )),
            TableStore::Mapped(m) => m.gather_range(col, start, end),
        }
    }

    /// Gather selected `rows` (ascending, in bounds) of the columns in
    /// `cols`. This is the predicate-pushdown gather: rows dropped by a
    /// scan-level predicate are simply absent from `rows`, so they are never
    /// materialized into a batch.
    pub fn gather_rows_cols(
        &self,
        rows: &[RowId],
        cols: &[usize],
    ) -> Result<crate::chunk::ColumnarBatch> {
        if let Some(&last) = rows.last() {
            if last >= self.row_count {
                return Err(StorageError::RowOutOfBounds {
                    row: last,
                    len: self.row_count,
                });
            }
        }
        if !rows.is_empty() {
            self.fault_guard()?;
        }
        let idx: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
        let columns = cols
            .iter()
            .map(|&c| match &self.store {
                TableStore::InRam(columns) => {
                    Ok(crate::chunk::ColumnVec::from_column_rows(&columns[c], &idx))
                }
                TableStore::Mapped(m) => m.gather_rows(c, &idx),
            })
            .collect::<Result<_>>()?;
        Ok(crate::chunk::ColumnarBatch::new(columns, idx.len()))
    }

    /// Persist this table to `path` in the `.sac` format (see
    /// [`crate::format`]). Returns the file length in bytes.
    pub fn persist(&self, path: &std::path::Path) -> Result<u64> {
        crate::format::write_table_file(self, path)
    }

    /// Open a `.sac` file as a memory-mapped table.
    pub fn open_mapped(path: &std::path::Path) -> Result<Table> {
        crate::format::open_table_file(path)
    }

    /// The half-open row range `[start, end)` of block `block`.
    pub fn block_range(&self, block: BlockId) -> (RowId, RowId) {
        let start = block * self.block_rows as u64;
        let end = (start + self.block_rows as u64).min(self.row_count);
        (start, end)
    }
}

/// Builder for a [`Table`]: declare the schema, then push rows.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    builders: Vec<ColumnBuilder>,
    schema: Schema,
    block_rows: usize,
}

impl TableBuilder {
    /// Start a table named `name` with the given schema. Fields are
    /// re-qualified by the table name so joins produce unambiguous schemas.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        let schema = schema.qualify_all(&name);
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.qualified_name(), f.data_type))
            .collect();
        TableBuilder {
            name,
            builders,
            schema,
            block_rows: DEFAULT_BLOCK_ROWS,
        }
    }

    /// Override the block (page) size in rows. Must be nonzero.
    pub fn with_block_rows(mut self, block_rows: usize) -> Self {
        assert!(block_rows > 0, "block size must be positive");
        self.block_rows = block_rows;
        self
    }

    /// Reserve capacity for `n` more rows in every column.
    pub fn reserve(&mut self, n: usize) {
        for b in &mut self.builders {
            b.reserve(n);
        }
    }

    /// Append one row; the slice length must equal the schema arity.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        assert_eq!(
            row.len(),
            self.builders.len(),
            "row arity {} != schema arity {}",
            row.len(),
            self.builders.len()
        );
        for (b, v) in self.builders.iter_mut().zip(row.iter()) {
            b.push(v.clone())?;
        }
        Ok(())
    }

    /// Finish building. Verifies all columns have equal length.
    pub fn finish(self) -> Result<Table> {
        let lengths: Vec<usize> = self.builders.iter().map(|b| b.len()).collect();
        if lengths.windows(2).any(|w| w[0] != w[1]) {
            return Err(StorageError::RaggedColumns {
                table: self.name,
                lengths,
            });
        }
        let row_count = lengths.first().copied().unwrap_or(0) as u64;
        Ok(Table {
            name: Arc::from(self.name.as_str()),
            schema: Arc::new(self.schema),
            store: TableStore::InRam(self.builders.into_iter().map(|b| b.finish()).collect()),
            row_count,
            block_rows: self.block_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema).with_block_rows(2);
        for i in 0..5 {
            b.push_row(&[Value::Int(i), Value::Float(i as f64 * 0.5)])
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn build_and_read() {
        let t = small_table();
        assert_eq!(t.name(), "t");
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.value(3, 0).unwrap(), Value::Int(3));
        assert_eq!(t.row(4).unwrap(), vec![Value::Int(4), Value::Float(2.0)]);
    }

    #[test]
    fn schema_is_qualified_by_table_name() {
        let t = small_table();
        assert_eq!(t.schema().index_of("t.k").unwrap(), 0);
        assert_eq!(t.column_by_name("t.v").unwrap().len(), 5);
    }

    #[test]
    fn row_out_of_bounds() {
        let t = small_table();
        assert!(matches!(
            t.value(5, 0),
            Err(StorageError::RowOutOfBounds { .. })
        ));
        assert!(t.row(99).is_err());
    }

    #[test]
    fn blocks() {
        let t = small_table(); // 5 rows, 2 per block -> 3 blocks
        assert_eq!(t.block_count(), 3);
        assert_eq!(t.block_of(0), 0);
        assert_eq!(t.block_of(4), 2);
        assert_eq!(t.block_range(0), (0, 2));
        assert_eq!(t.block_range(2), (4, 5)); // last block is short
    }

    #[test]
    fn empty_table() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).unwrap();
        let t = TableBuilder::new("e", schema).finish().unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.block_count(), 0);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        let _ = b.push_row(&[Value::Int(1), Value::Int(2)]);
    }

    fn nullable_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("b", DataType::Bool),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema).with_block_rows(3);
        for i in 0..10i64 {
            let s: Value = if i % 4 == 3 {
                Value::Null
            } else {
                Value::str(format!("s{}", i % 3))
            };
            let v = if i % 5 == 4 {
                Value::Null
            } else {
                Value::Float(i as f64 * 0.25)
            };
            b.push_row(&[Value::Int(i), v, s, Value::Bool(i % 2 == 0)])
                .unwrap();
        }
        b.finish().unwrap()
    }

    fn mapped_copy(t: &Table, tag: &str) -> Table {
        let path = std::env::temp_dir().join(format!(
            "sa-table-{}-{}-{tag}.sac",
            std::process::id(),
            t.name()
        ));
        t.persist(&path).unwrap();
        let m = Table::open_mapped(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        m
    }

    #[test]
    fn mapped_round_trip_is_bit_identical() {
        let t = nullable_table();
        let m = mapped_copy(&t, "rt");
        assert!(m.is_mapped() && !t.is_mapped());
        assert_eq!(m.name(), t.name());
        assert_eq!(m.schema(), t.schema());
        assert_eq!(m.row_count(), t.row_count());
        assert_eq!(m.block_rows(), t.block_rows());
        // Whole-table and sub-range gathers are equal batch-for-batch.
        assert_eq!(m.batch_range(0, 10).unwrap(), t.batch_range(0, 10).unwrap());
        assert_eq!(m.batch_range(3, 8).unwrap(), t.batch_range(3, 8).unwrap());
        // Selected-column and selected-row gathers too.
        assert_eq!(
            m.batch_range_cols(2, 9, &[0, 2]).unwrap(),
            t.batch_range_cols(2, 9, &[0, 2]).unwrap()
        );
        assert_eq!(
            m.gather_rows_cols(&[0, 4, 7, 9], &[1, 3]).unwrap(),
            t.gather_rows_cols(&[0, 4, 7, 9], &[1, 3]).unwrap()
        );
        // Row-level access agrees (including nulls).
        for r in 0..10 {
            assert_eq!(m.row(r).unwrap(), t.row(r).unwrap());
        }
        // The &Column accessor surface decodes to the same values.
        for c in 0..t.column_count() {
            for r in 0..10usize {
                assert_eq!(m.column(c).unwrap().value(r), t.column(c).unwrap().value(r));
            }
        }
    }

    #[test]
    fn batch_range_empty_and_reversed_are_defined() {
        let t = nullable_table();
        let m = mapped_copy(&t, "empty");
        for tab in [&t, &m] {
            // Empty range: defined empty batch with full column shapes.
            let b = tab.batch_range(4, 4).unwrap();
            assert_eq!(b.rows(), 0);
            assert_eq!(b.columns().len(), 4);
            // Reversed range: same contract, even past the end of the table.
            let b = tab.batch_range(7, 2).unwrap();
            assert_eq!(b.rows(), 0);
            let b = tab.batch_range(99, 98).unwrap();
            assert_eq!(b.rows(), 0);
            assert_eq!(b.column(2).data_type(), DataType::Str);
            // Non-empty out-of-bounds ranges still error.
            assert!(matches!(
                tab.batch_range(5, 11),
                Err(StorageError::RowOutOfBounds { .. })
            ));
        }
    }

    #[test]
    fn persisted_file_is_page_aligned() {
        let t = nullable_table();
        let path = std::env::temp_dir().join(format!("sa-table-align-{}.sac", std::process::id()));
        let len = t.persist(&path).unwrap();
        assert_eq!(len, std::fs::metadata(&path).unwrap().len());
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[0..8], crate::format::MAGIC);
        // Header page + at least one aligned segment page.
        assert!(len > crate::format::PAGE_SIZE as u64);
        std::fs::remove_file(&path).unwrap();
    }
}
