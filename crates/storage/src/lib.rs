//! # sa-storage — relational storage substrate
//!
//! A small, dependency-free, in-memory columnar storage layer used by the
//! sampling-algebra engine. It provides exactly what the paper's estimation
//! pipeline needs from a host database:
//!
//! * typed [`Value`]s and [`Schema`]s with qualified column names,
//! * columnar [`Table`]s with **stable row identifiers** ([`RowId`]) — row
//!   identity is the *lineage* unit of the GUS theory (Section 4.2 of the
//!   paper: "the lineage of each tuple in a base table is an ID"),
//! * a **block** (page) structure so block-level `SYSTEM` sampling can be
//!   expressed (block id = lineage unit at block granularity),
//! * a [`Catalog`] mapping table names to shared table handles.
//!
//! Everything is deliberately simple: tables are immutable once built (via
//! [`TableBuilder`]) or persisted (one page-aligned `.sac` file per table,
//! see [`mod@format`]), reads are by column, and there is no buffer manager —
//! the mapped backend leans on the OS page cache instead. Both backends sit
//! behind [`TableStore`] and gather bit-identical batches, so which one a
//! table uses never changes the realized sample upstream. The estimation
//! theory only requires that result tuples carry base-relation lineage and
//! an aggregate value; this layer supplies the former.

#![warn(missing_docs)]

pub mod catalog;
pub mod chunk;
pub mod column;
pub mod csv;
pub mod error;
pub mod format;
pub mod mmap;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use chunk::{ColumnData, ColumnVec, ColumnarBatch, StrDict};
pub use column::{Column, ColumnBuilder};
pub use csv::{read_csv, write_csv, CsvOptions};
pub use error::StorageError;
pub use format::{
    corrupt_pages_total, open_catalog_dir, open_table_file, persist_catalog, retries_total,
    write_table_file, TABLE_EXT,
};
pub use schema::{DataType, Field, Schema, SchemaRef};
pub use table::{BlockId, RowId, Table, TableBuilder, TableStore, DEFAULT_BLOCK_ROWS};
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T, E = StorageError> = std::result::Result<T, E>;
