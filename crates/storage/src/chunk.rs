//! Columnar batches: the unit of vectorized execution.
//!
//! A [`ColumnarBatch`] is a horizontal slice of a result set stored as
//! typed column vectors — `i64`/`f64`/`bool` values and dictionary-coded
//! strings — with an optional validity (non-null) bitmap per column. The
//! streaming executor gathers batches straight from [`crate::Table`]
//! columns and every operator (sample, filter, project, join) transforms
//! whole batches, so no per-row `Vec<Value>` is ever allocated on the hot
//! path; [`crate::Value`]s are materialized only at row-level API
//! boundaries ([`ColumnarBatch::row_values`]).
//!
//! String columns stay dictionary-coded end to end: a batch shares its
//! source column's dictionary behind an `Arc` and carries only the `u32`
//! codes, so gathering, filtering and joining strings moves 4-byte codes,
//! not refcounted pointers.

use std::sync::Arc;

use crate::column::Column;
use crate::schema::DataType;
use crate::value::Value;

/// A shared string dictionary: code → interned string.
pub type StrDict = Arc<Vec<Arc<str>>>;

/// The typed values of one batch column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Booleans.
    Bool(Vec<bool>),
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dictionary-coded strings: `dict[codes[row]]`.
    Str {
        /// The shared dictionary (typically the source column's).
        dict: StrDict,
        /// Per-row dictionary codes.
        codes: Vec<u32>,
    },
}

/// One column of a [`ColumnarBatch`]: typed data plus an optional validity
/// vector (`None` = no nulls; `Some(v)` with `v[row] = true` = present).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVec {
    /// The typed values (arbitrary where invalid).
    pub data: ColumnData,
    /// Validity bitmap; `None` means every row is valid.
    pub validity: Option<Vec<bool>>,
}

impl ColumnVec {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's [`DataType`].
    pub fn data_type(&self) -> DataType {
        match &self.data {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str { .. } => DataType::Str,
        }
    }

    /// Is the value at `row` non-null?
    #[inline]
    pub fn is_valid(&self, row: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v[row])
    }

    /// Materialize the [`Value`] at `row`.
    pub fn value(&self, row: usize) -> Value {
        if !self.is_valid(row) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str { dict, codes } => Value::Str(dict[codes[row] as usize].clone()),
        }
    }

    /// An all-valid column built from a whole data vector.
    pub fn new(data: ColumnData) -> ColumnVec {
        ColumnVec {
            data,
            validity: None,
        }
    }

    /// Gather the half-open row range `[start, end)` of a storage column.
    /// Strings share the source dictionary; only codes are copied.
    pub fn from_column_range(col: &Column, start: usize, end: usize) -> ColumnVec {
        let validity = col.validity_range(start, end);
        let data = match col {
            Column::Bool { data, .. } => ColumnData::Bool(data[start..end].to_vec()),
            Column::Int { data, .. } => ColumnData::Int(data[start..end].to_vec()),
            Column::Float { data, .. } => ColumnData::Float(data[start..end].to_vec()),
            Column::Str { dict, codes, .. } => ColumnData::Str {
                dict: dict.clone(),
                codes: codes[start..end].to_vec(),
            },
        };
        ColumnVec { data, validity }
    }

    /// Gather selected `rows` (ascending, in bounds) of a storage column.
    /// Validity is `None` when every selected row is valid, matching
    /// [`ColumnVec::from_column_range`]'s all-valid normalization — the
    /// mapped backend's row gather mirrors this exactly.
    pub fn from_column_rows(col: &Column, rows: &[usize]) -> ColumnVec {
        let validity = col.validity_rows(rows);
        let data = match col {
            Column::Bool { data, .. } => ColumnData::Bool(rows.iter().map(|&i| data[i]).collect()),
            Column::Int { data, .. } => ColumnData::Int(rows.iter().map(|&i| data[i]).collect()),
            Column::Float { data, .. } => {
                ColumnData::Float(rows.iter().map(|&i| data[i]).collect())
            }
            Column::Str { dict, codes, .. } => ColumnData::Str {
                dict: dict.clone(),
                codes: rows.iter().map(|&i| codes[i]).collect(),
            },
        };
        ColumnVec { data, validity }
    }

    /// Build a column of `data_type` from row-major values (the bridge for
    /// materialized row vectors). `Null` is accepted for any type; `Int`
    /// widens into a `Float` column. Panics on other mismatches — callers
    /// hold schema-checked rows.
    pub fn from_values(data_type: DataType, values: impl Iterator<Item = Value>) -> ColumnVec {
        let (lo, _) = values.size_hint();
        let mut validity: Vec<bool> = Vec::with_capacity(lo);
        let mut any_null = false;
        let data = match data_type {
            DataType::Bool => {
                let mut out = Vec::with_capacity(lo);
                for v in values {
                    match v {
                        Value::Bool(b) => {
                            out.push(b);
                            validity.push(true);
                        }
                        Value::Null => {
                            out.push(false);
                            validity.push(false);
                            any_null = true;
                        }
                        other => panic!("Bool column got {other:?}"),
                    }
                }
                ColumnData::Bool(out)
            }
            DataType::Int => {
                let mut out = Vec::with_capacity(lo);
                for v in values {
                    match v {
                        Value::Int(i) => {
                            out.push(i);
                            validity.push(true);
                        }
                        Value::Null => {
                            out.push(0);
                            validity.push(false);
                            any_null = true;
                        }
                        other => panic!("Int column got {other:?}"),
                    }
                }
                ColumnData::Int(out)
            }
            DataType::Float => {
                let mut out = Vec::with_capacity(lo);
                for v in values {
                    match v {
                        Value::Float(f) => {
                            out.push(f);
                            validity.push(true);
                        }
                        Value::Int(i) => {
                            out.push(i as f64);
                            validity.push(true);
                        }
                        Value::Null => {
                            out.push(0.0);
                            validity.push(false);
                            any_null = true;
                        }
                        other => panic!("Float column got {other:?}"),
                    }
                }
                ColumnData::Float(out)
            }
            DataType::Str => {
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut index: std::collections::HashMap<Arc<str>, u32> = Default::default();
                let mut codes = Vec::with_capacity(lo);
                for v in values {
                    match v {
                        Value::Str(s) => {
                            let code = *index.entry(s.clone()).or_insert_with(|| {
                                dict.push(s.clone());
                                (dict.len() - 1) as u32
                            });
                            codes.push(code);
                            validity.push(true);
                        }
                        Value::Null => {
                            codes.push(0);
                            validity.push(false);
                            any_null = true;
                        }
                        other => panic!("Str column got {other:?}"),
                    }
                }
                if dict.is_empty() {
                    dict.push(Arc::from(""));
                }
                ColumnData::Str {
                    dict: Arc::new(dict),
                    codes,
                }
            }
        };
        ColumnVec {
            data,
            validity: if any_null { Some(validity) } else { None },
        }
    }

    /// Keep the rows where `mask` is true (`mask.len() == self.len()`).
    pub fn filter(&self, mask: &[bool]) -> ColumnVec {
        debug_assert_eq!(mask.len(), self.len());
        let keep = mask.iter().filter(|&&m| m).count();
        let validity = self.validity.as_ref().map(|v| {
            let mut out = Vec::with_capacity(keep);
            out.extend(v.iter().zip(mask).filter(|(_, &m)| m).map(|(&b, _)| b));
            out
        });
        let data = match &self.data {
            ColumnData::Bool(v) => ColumnData::Bool(filter_vec(v, mask, keep)),
            ColumnData::Int(v) => ColumnData::Int(filter_vec(v, mask, keep)),
            ColumnData::Float(v) => ColumnData::Float(filter_vec(v, mask, keep)),
            ColumnData::Str { dict, codes } => ColumnData::Str {
                dict: dict.clone(),
                codes: filter_vec(codes, mask, keep),
            },
        };
        ColumnVec { data, validity }
    }

    /// Gather rows by index, with repetition allowed (join output assembly).
    pub fn take(&self, indices: &[u32]) -> ColumnVec {
        let validity = self
            .validity
            .as_ref()
            .map(|v| indices.iter().map(|&i| v[i as usize]).collect());
        let data = match &self.data {
            ColumnData::Bool(v) => ColumnData::Bool(take_vec(v, indices)),
            ColumnData::Int(v) => ColumnData::Int(take_vec(v, indices)),
            ColumnData::Float(v) => ColumnData::Float(take_vec(v, indices)),
            ColumnData::Str { dict, codes } => ColumnData::Str {
                dict: dict.clone(),
                codes: take_vec(codes, indices),
            },
        };
        ColumnVec { data, validity }
    }

    /// The contiguous sub-column `[start, start + len)`.
    pub fn slice(&self, start: usize, len: usize) -> ColumnVec {
        let end = start + len;
        let validity = self.validity.as_ref().map(|v| v[start..end].to_vec());
        let data = match &self.data {
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
            ColumnData::Int(v) => ColumnData::Int(v[start..end].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..end].to_vec()),
            ColumnData::Str { dict, codes } => ColumnData::Str {
                dict: dict.clone(),
                codes: codes[start..end].to_vec(),
            },
        };
        ColumnVec { data, validity }
    }

    /// Value equality between a cell of this column and a cell of `other`,
    /// under the engine's [`Value::total_cmp`] semantics (numeric values
    /// compare across `Int`/`Float`; `NaN` equals itself, as in `Value`'s
    /// total order; `NULL` equals nothing, not even itself, matching SQL
    /// join-key behaviour).
    pub fn cell_eq(&self, row: usize, other: &ColumnVec, other_row: usize) -> bool {
        // Total-order float equality: NaN == NaN (IEEE `==` would break
        // agreement with Value::eq and with hash_cell, which hashes every
        // NaN identically).
        fn f64_eq(a: f64, b: f64) -> bool {
            a == b || (a.is_nan() && b.is_nan())
        }
        if !self.is_valid(row) || !other.is_valid(other_row) {
            return false;
        }
        match (&self.data, &other.data) {
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a[row] == b[other_row],
            (ColumnData::Int(a), ColumnData::Int(b)) => a[row] == b[other_row],
            (ColumnData::Float(a), ColumnData::Float(b)) => f64_eq(a[row], b[other_row]),
            (ColumnData::Int(a), ColumnData::Float(b)) => a[row] as f64 == b[other_row],
            (ColumnData::Float(a), ColumnData::Int(b)) => a[row] == b[other_row] as f64,
            (
                ColumnData::Str {
                    dict: da,
                    codes: ca,
                },
                ColumnData::Str {
                    dict: db,
                    codes: cb,
                },
            ) => {
                // Same dictionary: codes decide. Different dictionaries:
                // compare the interned strings.
                if Arc::ptr_eq(da, db) {
                    ca[row] == cb[other_row]
                } else {
                    da[ca[row] as usize] == db[cb[other_row] as usize]
                }
            }
            _ => false,
        }
    }

    /// Feed the cell at `row` into `hasher` exactly as [`Value`]'s `Hash`
    /// implementation would, without materializing the `Value` — numeric
    /// values that compare equal across `Int`/`Float` hash identically, so
    /// these hashes are safe as join/group fingerprints.
    pub fn hash_cell<H: std::hash::Hasher>(&self, row: usize, state: &mut H) {
        use std::hash::Hash;
        if !self.is_valid(row) {
            state.write_u8(0);
            return;
        }
        match &self.data {
            ColumnData::Bool(v) => {
                state.write_u8(1);
                v[row].hash(state);
            }
            ColumnData::Int(v) => {
                let i = v[row];
                let f = i as f64;
                if f as i64 == i {
                    state.write_u8(2);
                    state.write_u64(crate::value::norm_f64_bits(f));
                } else {
                    state.write_u8(3);
                    state.write_i64(i);
                }
            }
            ColumnData::Float(v) => {
                let f = v[row];
                if f.is_nan() {
                    state.write_u8(4);
                } else {
                    state.write_u8(2);
                    state.write_u64(crate::value::norm_f64_bits(f));
                }
            }
            ColumnData::Str { dict, codes } => {
                state.write_u8(5);
                dict[codes[row] as usize].hash(state);
            }
        }
    }
}

fn filter_vec<T: Copy>(v: &[T], mask: &[bool], keep: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(keep);
    out.extend(v.iter().zip(mask).filter(|(_, &m)| m).map(|(&x, _)| x));
    out
}

fn take_vec<T: Copy>(v: &[T], indices: &[u32]) -> Vec<T> {
    indices.iter().map(|&i| v[i as usize]).collect()
}

/// A batch of rows in columnar form: equal-length [`ColumnVec`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    columns: Vec<ColumnVec>,
    rows: usize,
}

impl ColumnarBatch {
    /// A batch from equal-length columns. `rows` disambiguates the zero-
    /// column case (an aggregate-only projection still has a row count).
    pub fn new(columns: Vec<ColumnVec>, rows: usize) -> ColumnarBatch {
        for c in &columns {
            assert_eq!(c.len(), rows, "ragged batch column");
            if let Some(v) = &c.validity {
                assert_eq!(v.len(), rows, "ragged validity");
            }
        }
        ColumnarBatch { columns, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The columns.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &ColumnVec {
        &self.columns[idx]
    }

    /// Materialize one row as values (the row-level API bridge).
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Keep the rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> ColumnarBatch {
        let rows = mask.iter().filter(|&&m| m).count();
        ColumnarBatch {
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
            rows,
        }
    }

    /// Gather rows by index (repetition allowed).
    pub fn take(&self, indices: &[u32]) -> ColumnarBatch {
        ColumnarBatch {
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// The contiguous sub-batch `[start, start + len)`.
    pub fn slice(&self, start: usize, len: usize) -> ColumnarBatch {
        ColumnarBatch {
            columns: self.columns.iter().map(|c| c.slice(start, len)).collect(),
            rows: len,
        }
    }

    /// The batch restricted to the columns at `positions`, in that order
    /// (row count unchanged; a shared-scan cursor uses this to carve its
    /// pruned column set out of a hub's wider bus chunks).
    pub fn select_columns(&self, positions: &[usize]) -> ColumnarBatch {
        ColumnarBatch {
            columns: positions.iter().map(|&p| self.columns[p].clone()).collect(),
            rows: self.rows,
        }
    }

    /// Horizontal concatenation (join output: probe columns ++ build
    /// columns). Both batches must have the same row count.
    pub fn concat_columns(mut self, right: ColumnarBatch) -> ColumnarBatch {
        assert_eq!(self.rows, right.rows, "horizontal concat of ragged batches");
        self.columns.extend(right.columns);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;

    fn str_column(vals: &[Option<&str>]) -> Column {
        let mut b = ColumnBuilder::new("s", DataType::Str);
        for v in vals {
            match v {
                Some(s) => b.push_str(s).unwrap(),
                None => b.push(Value::Null).unwrap(),
            }
        }
        b.finish()
    }

    #[test]
    fn dictionary_round_trip_through_batches() {
        // Storage dict-codes repeated strings; a gathered batch shares the
        // dictionary and every transformation (filter, take, slice)
        // round-trips back to the original values.
        let col = str_column(&[Some("ny"), Some("sf"), None, Some("ny"), Some("ny")]);
        let Column::Str { dict, codes, .. } = &col else {
            panic!("expected dict-coded str column");
        };
        assert!(dict.len() <= 3, "repeats must share codes: {dict:?}");
        assert_eq!(codes.len(), 5);
        assert_eq!(codes[0], codes[3]);
        let cv = ColumnVec::from_column_range(&col, 0, 5);
        if let ColumnData::Str { dict: d2, .. } = &cv.data {
            assert!(Arc::ptr_eq(dict, d2), "batch must share the dictionary");
        }
        let expect = [
            Value::str("ny"),
            Value::str("sf"),
            Value::Null,
            Value::str("ny"),
            Value::str("ny"),
        ];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(cv.value(i), *e);
        }
        let filtered = cv.filter(&[true, false, true, false, true]);
        assert_eq!(filtered.value(0), Value::str("ny"));
        assert_eq!(filtered.value(1), Value::Null);
        assert_eq!(filtered.value(2), Value::str("ny"));
        let taken = cv.take(&[4, 4, 1]);
        assert_eq!(taken.value(0), Value::str("ny"));
        assert_eq!(taken.value(2), Value::str("sf"));
        let sliced = cv.slice(1, 2);
        assert_eq!(sliced.value(0), Value::str("sf"));
        assert_eq!(sliced.value(1), Value::Null);
    }

    #[test]
    fn from_values_round_trips_every_type() {
        for (dt, vals) in [
            (
                DataType::Int,
                vec![Value::Int(1), Value::Null, Value::Int(-3)],
            ),
            (
                DataType::Float,
                vec![Value::Float(0.5), Value::Int(2), Value::Null],
            ),
            (
                DataType::Bool,
                vec![Value::Bool(true), Value::Null, Value::Bool(false)],
            ),
            (
                DataType::Str,
                vec![Value::str("a"), Value::str("a"), Value::Null],
            ),
        ] {
            let cv = ColumnVec::from_values(dt, vals.clone().into_iter());
            for (i, v) in vals.iter().enumerate() {
                let got = cv.value(i);
                let want = match (dt, v) {
                    (DataType::Float, Value::Int(i)) => Value::Float(*i as f64),
                    _ => v.clone(),
                };
                assert_eq!(got, want, "{dt:?}[{i}]");
            }
        }
    }

    #[test]
    fn cell_eq_and_hash_cross_type_numeric() {
        use std::collections::hash_map::DefaultHasher;
        let a = ColumnVec::new(ColumnData::Int(vec![3, 1 << 60]));
        let b = ColumnVec::new(ColumnData::Float(vec![3.0, 7.5]));
        assert!(a.cell_eq(0, &b, 0));
        assert!(!a.cell_eq(1, &b, 1));
        let hash_of = |c: &ColumnVec, row: usize| {
            let mut h = DefaultHasher::new();
            c.hash_cell(row, &mut h);
            std::hash::Hasher::finish(&h)
        };
        // Int 3 and Float 3.0 are equal, so their cell hashes must agree
        // with each other and with Value's own Hash.
        assert_eq!(hash_of(&a, 0), hash_of(&b, 0));
        let value_hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            std::hash::Hash::hash(v, &mut h);
            std::hash::Hasher::finish(&h)
        };
        assert_eq!(hash_of(&a, 0), value_hash(&Value::Int(3)));
        assert_eq!(hash_of(&b, 1), value_hash(&Value::Float(7.5)));
        assert_eq!(hash_of(&a, 1), value_hash(&Value::Int(1 << 60)));
    }

    #[test]
    fn nan_cells_equal_like_value_does() {
        // Value::total_cmp says NaN == NaN (and hash_cell hashes every NaN
        // identically), so cell_eq must agree — a NaN join key matches a
        // NaN build key exactly as the row executor's Value-keyed map does.
        let a = ColumnVec::new(ColumnData::Float(vec![f64::NAN, 0.0, 1.0]));
        assert!(a.cell_eq(0, &a, 0));
        assert!(!a.cell_eq(0, &a, 2));
        // -0.0 == 0.0 under total_cmp too.
        let b = ColumnVec::new(ColumnData::Float(vec![-0.0]));
        assert!(a.cell_eq(1, &b, 0));
        // Int never equals NaN.
        let i = ColumnVec::new(ColumnData::Int(vec![0]));
        assert!(!i.cell_eq(0, &a, 0));
    }

    #[test]
    fn null_cells_never_equal() {
        let a = ColumnVec {
            data: ColumnData::Int(vec![0]),
            validity: Some(vec![false]),
        };
        assert!(!a.cell_eq(0, &a, 0), "NULL join keys must not match");
    }

    #[test]
    fn batch_ops() {
        let b = ColumnarBatch::new(
            vec![
                ColumnVec::new(ColumnData::Int(vec![1, 2, 3])),
                ColumnVec::new(ColumnData::Float(vec![0.1, 0.2, 0.3])),
            ],
            3,
        );
        assert_eq!(b.rows(), 3);
        assert_eq!(b.row_values(1), vec![Value::Int(2), Value::Float(0.2)]);
        let f = b.filter(&[true, false, true]);
        assert_eq!(f.rows(), 2);
        assert_eq!(f.row_values(1), vec![Value::Int(3), Value::Float(0.3)]);
        let t = b.take(&[2, 0, 2]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row_values(0)[0], Value::Int(3));
        let s = b.slice(1, 2);
        assert_eq!(s.row_values(0)[0], Value::Int(2));
        let wide = b.clone().concat_columns(b.clone());
        assert_eq!(wide.columns().len(), 4);
        assert_eq!(wide.rows(), 3);
    }
}
