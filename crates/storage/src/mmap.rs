//! Read-only memory mapping of table files.
//!
//! The mapped read path must not drag in a platform crate, so on unix the
//! mapping goes through a two-symbol `libc` FFI surface (`mmap`/`munmap` —
//! std already links libc). Elsewhere the "mapping" is a plain in-memory
//! copy of the file, which keeps the [`crate::table::TableStore::Mapped`]
//! backend portable at the cost of residency.

use std::fs::File;
use std::ops::Deref;
use std::path::Path;

use crate::error::StorageError;
use crate::Result;

fn io_err(path: &Path, op: &str, message: impl std::fmt::Display) -> StorageError {
    StorageError::Io {
        path: path.display().to_string(),
        message: format!("{op}: {message}"),
    }
}

/// An immutable byte view of a whole file.
///
/// On unix this is a `PROT_READ`/`MAP_SHARED` mapping: pages are faulted in
/// on access and the kernel may evict them again, so a mapped table larger
/// than RAM (or than an rlimit on the heap) still scans. Dropping the value
/// unmaps the region; every reader copies the bytes it needs out of the map
/// before returning, so no gathered batch borrows from it.
pub struct Mmap {
    inner: MapInner,
}

impl Mmap {
    /// Map the file at `path` read-only.
    pub fn open(path: &Path) -> Result<Mmap> {
        let file = File::open(path).map_err(|e| io_err(path, "open", e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err(path, "metadata", e))?
            .len();
        if len == 0 {
            return Err(StorageError::BadFormat {
                path: path.display().to_string(),
                message: "empty file".into(),
            });
        }
        let len = usize::try_from(len).map_err(|_| io_err(path, "map", "file exceeds usize"))?;
        Ok(Mmap {
            inner: MapInner::map(file, len, path)?,
        })
    }

    /// The mapped length in bytes.
    pub fn len(&self) -> usize {
        self.deref().len()
    }

    /// True when the mapping is empty (never the case for a table file).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.inner.bytes()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(unix)]
mod sys {
    use super::*;
    use std::os::unix::io::AsRawFd;

    use core::ffi::c_void;

    const PROT_READ: i32 = 1;
    const MAP_SHARED: i32 = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub struct MapInner {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is PROT_READ and owned for its whole lifetime; shared
    // immutable access from any thread is sound.
    unsafe impl Send for MapInner {}
    unsafe impl Sync for MapInner {}

    impl MapInner {
        pub fn map(file: File, len: usize, path: &Path) -> Result<MapInner> {
            // SAFETY: fd is valid for the duration of the call; the kernel
            // keeps the mapping alive after the fd is closed.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(super::io_err(path, "mmap", "mapping failed"));
            }
            Ok(MapInner { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping we own.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for MapInner {
        fn drop(&mut self) {
            // SAFETY: exactly the region returned by mmap in `map`.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::*;
    use std::io::Read;

    pub struct MapInner {
        buf: Vec<u8>,
    }

    impl MapInner {
        pub fn map(mut file: File, len: usize, path: &Path) -> Result<MapInner> {
            let mut buf = Vec::with_capacity(len);
            file.read_to_end(&mut buf)
                .map_err(|e| super::io_err(path, "read", e))?;
            Ok(MapInner { buf })
        }

        pub fn bytes(&self) -> &[u8] {
            &self.buf
        }
    }
}

use sys::MapInner;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_bytes() {
        let path = std::env::temp_dir().join(format!("sa-mmap-test-{}", std::process::id()));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(b"hello mapped world").unwrap();
        }
        let m = Mmap::open(&path).unwrap();
        assert_eq!(&m[..5], b"hello");
        assert_eq!(m.len(), 18);
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_rejected() {
        let path = std::env::temp_dir().join(format!("sa-mmap-empty-{}", std::process::id()));
        File::create(&path).unwrap();
        assert!(matches!(
            Mmap::open(&path),
            Err(StorageError::BadFormat { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
