//! Typed columnar storage.
//!
//! A [`Column`] stores one attribute of a table in a dense, typed vector with
//! a separate null bitmap. Access is by row index; the executor materializes
//! [`crate::Value`]s on demand.

use std::sync::Arc;

use crate::error::StorageError;
use crate::schema::DataType;
use crate::value::Value;
use crate::Result;

/// A typed column with optional nulls.
///
/// Nulls are represented by a validity vector (`true` = present). For columns
/// with no nulls the validity vector is empty, which keeps scans cheap.
#[derive(Debug, Clone)]
pub enum Column {
    /// Boolean column.
    Bool {
        /// Values (arbitrary where invalid).
        data: Vec<bool>,
        /// Validity; empty means all-valid.
        validity: Vec<bool>,
    },
    /// Integer column.
    Int {
        /// Values (arbitrary where invalid).
        data: Vec<i64>,
        /// Validity; empty means all-valid.
        validity: Vec<bool>,
    },
    /// Float column.
    Float {
        /// Values (arbitrary where invalid).
        data: Vec<f64>,
        /// Validity; empty means all-valid.
        validity: Vec<bool>,
    },
    /// String column, dictionary-coded: the value at `row` is
    /// `dict[codes[row]]`. Repeated strings share one interned entry, and
    /// columnar batches gathered from this column share the dictionary
    /// behind the `Arc` (see [`crate::chunk`]).
    Str {
        /// The dictionary: code → interned string (never empty).
        dict: crate::chunk::StrDict,
        /// Per-row dictionary codes (point at `""` where invalid).
        codes: Vec<u32>,
        /// Validity; empty means all-valid.
        validity: Vec<bool>,
    },
}

impl Column {
    /// The column's [`DataType`].
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool { .. } => DataType::Bool,
            Column::Int { .. } => DataType::Int,
            Column::Float { .. } => DataType::Float,
            Column::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool { data, .. } => data.len(),
            Column::Int { data, .. } => data.len(),
            Column::Float { data, .. } => data.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn valid(validity: &[bool], row: usize) -> bool {
        validity.is_empty() || validity[row]
    }

    /// The value at `row` (panics if out of bounds; the table layer checks).
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Bool { data, validity } => {
                if Self::valid(validity, row) {
                    Value::Bool(data[row])
                } else {
                    Value::Null
                }
            }
            Column::Int { data, validity } => {
                if Self::valid(validity, row) {
                    Value::Int(data[row])
                } else {
                    Value::Null
                }
            }
            Column::Float { data, validity } => {
                if Self::valid(validity, row) {
                    Value::Float(data[row])
                } else {
                    Value::Null
                }
            }
            Column::Str {
                dict,
                codes,
                validity,
            } => {
                if Self::valid(validity, row) {
                    Value::Str(dict[codes[row] as usize].clone())
                } else {
                    Value::Null
                }
            }
        }
    }

    /// The validity of rows `[start, end)` in the batch representation:
    /// `None` when every row in the range is valid.
    pub(crate) fn validity_range(&self, start: usize, end: usize) -> Option<Vec<bool>> {
        let validity = match self {
            Column::Bool { validity, .. }
            | Column::Int { validity, .. }
            | Column::Float { validity, .. }
            | Column::Str { validity, .. } => validity,
        };
        if validity.is_empty() {
            return None;
        }
        let slice = &validity[start..end];
        if slice.iter().all(|&v| v) {
            None
        } else {
            Some(slice.to_vec())
        }
    }

    /// The validity at selected rows in batch form: `None` when every
    /// selected row is valid.
    pub(crate) fn validity_rows(&self, rows: &[usize]) -> Option<Vec<bool>> {
        let validity = match self {
            Column::Bool { validity, .. }
            | Column::Int { validity, .. }
            | Column::Float { validity, .. }
            | Column::Str { validity, .. } => validity,
        };
        if validity.is_empty() {
            return None;
        }
        let v: Vec<bool> = rows.iter().map(|&i| validity[i]).collect();
        if v.iter().all(|&b| b) {
            None
        } else {
            Some(v)
        }
    }

    /// Fast typed access for numeric columns: the value at `row` as `f64`
    /// (ints widen), or `None` for nulls and non-numeric columns.
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int { data, validity } if Self::valid(validity, row) => Some(data[row] as f64),
            Column::Float { data, validity } if Self::valid(validity, row) => Some(data[row]),
            _ => None,
        }
    }
}

/// Incremental builder for a [`Column`] of a fixed [`DataType`]. String
/// columns are dictionary-encoded as they are built: each distinct string
/// is interned once and rows store `u32` codes.
#[derive(Debug)]
pub struct ColumnBuilder {
    name: String,
    data_type: DataType,
    bools: Vec<bool>,
    ints: Vec<i64>,
    floats: Vec<f64>,
    dict: Vec<Arc<str>>,
    dict_index: std::collections::HashMap<Arc<str>, u32>,
    codes: Vec<u32>,
    validity: Vec<bool>,
    has_null: bool,
    len: usize,
}

impl ColumnBuilder {
    /// A builder for a column named `name` of type `data_type`. The name is
    /// only used for error messages.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnBuilder {
            name: name.into(),
            data_type,
            bools: vec![],
            ints: vec![],
            floats: vec![],
            dict: vec![],
            dict_index: Default::default(),
            codes: vec![],
            validity: vec![],
            has_null: false,
            len: 0,
        }
    }

    /// Intern `s` into the dictionary, returning its code.
    fn intern(&mut self, s: Arc<str>) -> u32 {
        if let Some(&code) = self.dict_index.get(&s) {
            return code;
        }
        let code = u32::try_from(self.dict.len()).expect("dictionary exceeds u32 codes");
        self.dict.push(s.clone());
        self.dict_index.insert(s, code);
        code
    }

    /// Reserve capacity for `n` more rows.
    pub fn reserve(&mut self, n: usize) {
        match self.data_type {
            DataType::Bool => self.bools.reserve(n),
            DataType::Int => self.ints.reserve(n),
            DataType::Float => self.floats.reserve(n),
            DataType::Str => self.codes.reserve(n),
        }
        self.validity.reserve(n);
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one value. `Null` is accepted for any type; `Int` widens into a
    /// `Float` column. Anything else must match the declared type.
    pub fn push(&mut self, v: Value) -> Result<()> {
        let mismatch = |got: &Value| StorageError::TypeMismatch {
            column: self.name.clone(),
            expected: self.data_type,
            got: format!("{got:?}"),
        };
        match (&v, self.data_type) {
            (Value::Null, _) => {
                self.has_null = true;
                self.validity.push(false);
                match self.data_type {
                    DataType::Bool => self.bools.push(false),
                    DataType::Int => self.ints.push(0),
                    DataType::Float => self.floats.push(0.0),
                    DataType::Str => {
                        let code = self.intern(Arc::from(""));
                        self.codes.push(code);
                    }
                }
            }
            (Value::Bool(b), DataType::Bool) => {
                self.validity.push(true);
                self.bools.push(*b);
            }
            (Value::Int(i), DataType::Int) => {
                self.validity.push(true);
                self.ints.push(*i);
            }
            (Value::Int(i), DataType::Float) => {
                self.validity.push(true);
                self.floats.push(*i as f64);
            }
            (Value::Float(f), DataType::Float) => {
                self.validity.push(true);
                self.floats.push(*f);
            }
            (Value::Str(s), DataType::Str) => {
                self.validity.push(true);
                let code = self.intern(s.clone());
                self.codes.push(code);
            }
            _ => return Err(mismatch(&v)),
        }
        self.len += 1;
        Ok(())
    }

    /// Convenience: append an `i64` (must be an Int or Float column).
    pub fn push_i64(&mut self, i: i64) -> Result<()> {
        self.push(Value::Int(i))
    }

    /// Convenience: append an `f64` (must be a Float column).
    pub fn push_f64(&mut self, f: f64) -> Result<()> {
        self.push(Value::Float(f))
    }

    /// Convenience: append a string (must be a Str column).
    pub fn push_str(&mut self, s: impl AsRef<str>) -> Result<()> {
        self.push(Value::str(s))
    }

    /// Finish the column. Drops the validity vector when no nulls were seen.
    pub fn finish(self) -> Column {
        let validity = if self.has_null { self.validity } else { vec![] };
        match self.data_type {
            DataType::Bool => Column::Bool {
                data: self.bools,
                validity,
            },
            DataType::Int => Column::Int {
                data: self.ints,
                validity,
            },
            DataType::Float => Column::Float {
                data: self.floats,
                validity,
            },
            DataType::Str => Column::Str {
                dict: Arc::new(if self.dict.is_empty() {
                    vec![Arc::from("")]
                } else {
                    self.dict
                }),
                codes: self.codes,
                validity,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_int_column() {
        let mut b = ColumnBuilder::new("k", DataType::Int);
        b.push_i64(1).unwrap();
        b.push(Value::Null).unwrap();
        b.push_i64(3).unwrap();
        let c = b.finish();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(3));
        assert_eq!(c.f64_at(2), Some(3.0));
        assert_eq!(c.f64_at(1), None);
    }

    #[test]
    fn all_valid_drops_validity() {
        let mut b = ColumnBuilder::new("k", DataType::Float);
        b.push_f64(1.5).unwrap();
        b.push_f64(2.5).unwrap();
        match b.finish() {
            Column::Float { validity, .. } => assert!(validity.is_empty()),
            _ => panic!("wrong column type"),
        }
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut b = ColumnBuilder::new("x", DataType::Float);
        b.push(Value::Int(4)).unwrap();
        let c = b.finish();
        assert_eq!(c.value(0), Value::Float(4.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = ColumnBuilder::new("x", DataType::Int);
        let err = b.push(Value::str("oops")).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn float_into_int_column_rejected() {
        let mut b = ColumnBuilder::new("x", DataType::Int);
        assert!(b.push(Value::Float(1.5)).is_err());
    }

    #[test]
    fn string_column() {
        let mut b = ColumnBuilder::new("s", DataType::Str);
        b.push_str("a").unwrap();
        b.push(Value::Null).unwrap();
        let c = b.finish();
        assert_eq!(c.value(0), Value::str("a"));
        assert!(c.value(1).is_null());
        assert_eq!(c.data_type(), DataType::Str);
    }

    #[test]
    fn bool_column() {
        let mut b = ColumnBuilder::new("b", DataType::Bool);
        b.push(Value::Bool(true)).unwrap();
        let c = b.finish();
        assert_eq!(c.value(0), Value::Bool(true));
        assert!(!c.is_empty());
    }
}
