//! The `.sac` on-disk columnar table format and its memory-mapped reader.
//!
//! One page-aligned file per table:
//!
//! ```text
//! page 0        header: magic, page size, row/block counts, directory pointer
//! page 1..      per-column segments, each aligned to a page boundary:
//!                 data     Int/Float = 8-byte LE per row, Str = 4-byte LE
//!                          dictionary codes per row, Bool = bit-packed
//!                 validity bit-packed, present only when the column has nulls
//!                 dict     (Str only) u32-length-prefixed UTF-8 entries
//! tail          directory: table name, then per column the unqualified
//!               field name, data type and segment (offset, len) triples
//! ```
//!
//! The reader ([`MappedTable`]) keeps the file mapped and gathers row ranges
//! straight out of the map into [`ColumnVec`]s — the same representation the
//! in-RAM backend produces — so the two backends are interchangeable above
//! [`crate::Table::batch_range`]. String dictionaries are decoded once at
//! open (they are small) and shared by every gathered batch.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use crate::chunk::{ColumnData, ColumnVec, StrDict};
use crate::column::Column;
use crate::error::StorageError;
use crate::mmap::Mmap;
use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::Catalog;
use crate::Result;

/// Magic bytes opening every table file.
pub const MAGIC: &[u8; 8] = b"SACTBL01";

/// Segment alignment and header size: one 4 KiB page.
pub const PAGE_SIZE: usize = 4096;

/// File extension used by [`persist_catalog`] / [`open_catalog_dir`].
pub const TABLE_EXT: &str = "sac";

fn io_err(path: &Path, op: &str, e: impl std::fmt::Display) -> StorageError {
    StorageError::Io {
        path: path.display().to_string(),
        message: format!("{op}: {e}"),
    }
}

fn bad(path: &Path, message: impl Into<String>) -> StorageError {
    StorageError::BadFormat {
        path: path.display().to_string(),
        message: message.into(),
    }
}

fn dtype_code(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

fn dtype_from_code(code: u8, path: &Path) -> Result<DataType> {
    Ok(match code {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        other => return Err(bad(path, format!("unknown dtype code {other}"))),
    })
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

#[inline]
fn bit_at(bytes: &[u8], i: usize) -> bool {
    bytes[i / 8] & (1 << (i % 8)) != 0
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct SegmentWriter<W: Write> {
    out: W,
    pos: u64,
}

impl<W: Write> SegmentWriter<W> {
    fn write(&mut self, bytes: &[u8], path: &Path) -> Result<()> {
        self.out
            .write_all(bytes)
            .map_err(|e| io_err(path, "write", e))?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Zero-pad to the next page boundary and return the aligned position.
    fn align(&mut self, path: &Path) -> Result<u64> {
        let rem = (self.pos % PAGE_SIZE as u64) as usize;
        if rem != 0 {
            let pad = vec![0u8; PAGE_SIZE - rem];
            self.write(&pad, path)?;
        }
        Ok(self.pos)
    }
}

struct ColumnDirEntry {
    name: String,
    dtype: DataType,
    data: (u64, u64),
    validity: (u64, u64),
    dict: (u64, u64),
    dict_entries: u64,
}

fn column_validity(col: &Column) -> &[bool] {
    match col {
        Column::Bool { validity, .. }
        | Column::Int { validity, .. }
        | Column::Float { validity, .. }
        | Column::Str { validity, .. } => validity,
    }
}

/// Write `table` to `path` in the `.sac` format. Returns the file length in
/// bytes. Works from either backend (a mapped table is decoded as it is
/// re-encoded).
pub fn write_table_file(table: &Table, path: &Path) -> Result<u64> {
    let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
    let mut w = SegmentWriter {
        out: BufWriter::new(file),
        pos: 0,
    };

    // Header page (directory pointer patched at the end via a second pass
    // would need seeks; instead the directory pointer is written last, so
    // reserve the header and come back with positions known).
    let columns = table.columns();
    let mut entries: Vec<ColumnDirEntry> = Vec::with_capacity(columns.len());

    // Reserve page 0 for the header.
    w.write(&[0u8; PAGE_SIZE], path)?;

    for (field, col) in table.schema().fields().iter().zip(columns.iter()) {
        let data_off = w.align(path)?;
        let data_bytes: Vec<u8> = match col {
            Column::Bool { data, .. } => pack_bits(data),
            Column::Int { data, .. } => data.iter().flat_map(|v| v.to_le_bytes()).collect(),
            Column::Float { data, .. } => data
                .iter()
                .flat_map(|v| v.to_bits().to_le_bytes())
                .collect(),
            Column::Str { codes, .. } => codes.iter().flat_map(|v| v.to_le_bytes()).collect(),
        };
        w.write(&data_bytes, path)?;
        let data = (data_off, data_bytes.len() as u64);

        let validity_bits = column_validity(col);
        let validity = if validity_bits.is_empty() {
            (0, 0)
        } else {
            let off = w.align(path)?;
            let bytes = pack_bits(validity_bits);
            w.write(&bytes, path)?;
            (off, bytes.len() as u64)
        };

        let (dict, dict_entries) = if let Column::Str { dict, .. } = col {
            let off = w.align(path)?;
            let mut bytes = Vec::new();
            for entry in dict.iter() {
                let s = entry.as_bytes();
                bytes.extend_from_slice(&(s.len() as u32).to_le_bytes());
                bytes.extend_from_slice(s);
            }
            w.write(&bytes, path)?;
            ((off, bytes.len() as u64), dict.len() as u64)
        } else {
            ((0, 0), 0)
        };

        entries.push(ColumnDirEntry {
            name: field.name.to_string(),
            dtype: col.data_type(),
            data,
            validity,
            dict,
            dict_entries,
        });
    }

    // Directory.
    let dir_off = w.align(path)?;
    let mut dir = Vec::new();
    let name = table.name().as_bytes();
    dir.extend_from_slice(&(name.len() as u16).to_le_bytes());
    dir.extend_from_slice(name);
    for e in &entries {
        let n = e.name.as_bytes();
        dir.extend_from_slice(&(n.len() as u16).to_le_bytes());
        dir.extend_from_slice(n);
        dir.push(dtype_code(e.dtype));
        for (off, len) in [e.data, e.validity, e.dict] {
            dir.extend_from_slice(&off.to_le_bytes());
            dir.extend_from_slice(&len.to_le_bytes());
        }
        dir.extend_from_slice(&e.dict_entries.to_le_bytes());
    }
    let dir_len = dir.len() as u64;
    w.write(&dir, path)?;
    let file_len = w.pos;
    let mut out = w.out.into_inner().map_err(|e| io_err(path, "flush", e))?;

    // Patch the header in place.
    let mut header = Vec::with_capacity(64);
    header.extend_from_slice(MAGIC);
    for v in [
        PAGE_SIZE as u64,
        table.row_count(),
        table.block_rows() as u64,
        entries.len() as u64,
        dir_off,
        dir_len,
    ] {
        header.extend_from_slice(&v.to_le_bytes());
    }
    use std::io::Seek;
    out.seek(std::io::SeekFrom::Start(0))
        .map_err(|e| io_err(path, "seek", e))?;
    out.write_all(&header)
        .map_err(|e| io_err(path, "write", e))?;
    out.flush().map_err(|e| io_err(path, "flush", e))?;
    Ok(file_len)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One column's segment pointers inside the map, plus its decoded dictionary.
#[derive(Debug, Clone)]
struct MappedCol {
    dtype: DataType,
    /// (offset, len) of the data segment.
    data: (usize, usize),
    /// (offset, len) of the bit-packed validity segment; `None` = no nulls.
    validity: Option<(usize, usize)>,
    /// Decoded dictionary (Str columns; shared by every gathered batch).
    dict: Option<StrDict>,
}

/// A table whose column data lives in a memory-mapped `.sac` file.
///
/// Gathers decode straight from the map into the same [`ColumnVec`] shapes
/// the in-RAM backend produces: values, validity (`None` when the gathered
/// range has no nulls) and dictionary codes are bit-identical across
/// backends — `tests/storage_equivalence.rs` holds both backends to that.
#[derive(Debug, Clone)]
pub struct MappedTable {
    map: Arc<Mmap>,
    row_count: usize,
    cols: Vec<MappedCol>,
    /// Lazily decoded full columns backing the `&Column` accessors
    /// ([`Table::columns`] and friends) for API parity with `InRam`; the
    /// streaming scan path never touches this.
    decoded: Arc<std::sync::OnceLock<Vec<Column>>>,
}

struct DirCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> DirCursor<'a> {
    fn take(&mut self, n: usize, path: &Path) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(bad(path, "truncated directory"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, path: &Path) -> Result<u8> {
        Ok(self.take(1, path)?[0])
    }

    fn u16(&mut self, path: &Path) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, path)?.try_into().unwrap()))
    }

    fn u64(&mut self, path: &Path) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, path)?.try_into().unwrap()))
    }

    fn str(&mut self, path: &Path) -> Result<String> {
        let n = self.u16(path)? as usize;
        let bytes = self.take(n, path)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad(path, "non-utf8 name in directory"))
    }
}

fn segment<'m>(map: &'m Mmap, off: usize, len: usize, path: &Path) -> Result<&'m [u8]> {
    map.get(off..off + len)
        .ok_or_else(|| bad(path, format!("segment [{off}, {}) out of file", off + len)))
}

/// Expected byte length of a column's data segment.
fn data_len_for(dtype: DataType, rows: usize) -> usize {
    match dtype {
        DataType::Bool => rows.div_ceil(8),
        DataType::Int | DataType::Float => rows * 8,
        DataType::Str => rows * 4,
    }
}

impl MappedTable {
    /// Open the `.sac` file at `path`, returning the rebuilt [`Table`]
    /// metadata alongside the mapped store: `(name, schema fields, block
    /// rows, row count, store)`.
    fn open(path: &Path) -> Result<(String, Vec<Field>, usize, u64, MappedTable)> {
        let map = Mmap::open(path)?;
        if map.len() < 56 || &map[0..8] != MAGIC {
            return Err(bad(path, "missing magic"));
        }
        let word = |i: usize| -> u64 {
            u64::from_le_bytes(map[8 + 8 * i..16 + 8 * i].try_into().unwrap())
        };
        let page_size = word(0);
        if page_size != PAGE_SIZE as u64 {
            return Err(bad(path, format!("unsupported page size {page_size}")));
        }
        let row_count = word(1);
        let block_rows = word(2) as usize;
        let column_count = word(3) as usize;
        let dir_off = word(4) as usize;
        let dir_len = word(5) as usize;
        if block_rows == 0 {
            return Err(bad(path, "zero block size"));
        }
        let rows = usize::try_from(row_count).map_err(|_| bad(path, "row count overflow"))?;
        let dir_bytes = segment(&map, dir_off, dir_len, path)?;
        let mut cur = DirCursor {
            bytes: dir_bytes,
            pos: 0,
        };
        let name = cur.str(path)?;
        let mut fields = Vec::with_capacity(column_count);
        let mut cols = Vec::with_capacity(column_count);
        for _ in 0..column_count {
            let col_name = cur.str(path)?;
            let dtype = dtype_from_code(cur.u8(path)?, path)?;
            let mut spans = [(0usize, 0usize); 3];
            for s in &mut spans {
                let off = cur.u64(path)? as usize;
                let len = cur.u64(path)? as usize;
                *s = (off, len);
            }
            let dict_entries = cur.u64(path)? as usize;
            let [data, validity, dict_span] = spans;
            if data.1 != data_len_for(dtype, rows) {
                return Err(bad(
                    path,
                    format!("column `{col_name}`: data segment length"),
                ));
            }
            segment(&map, data.0, data.1, path)?;
            let validity = if validity.1 == 0 {
                None
            } else {
                if validity.1 != rows.div_ceil(8) {
                    return Err(bad(path, format!("column `{col_name}`: validity length")));
                }
                segment(&map, validity.0, validity.1, path)?;
                Some(validity)
            };
            let dict = if dtype == DataType::Str {
                let bytes = segment(&map, dict_span.0, dict_span.1, path)?;
                let mut entries: Vec<Arc<str>> = Vec::with_capacity(dict_entries);
                let mut pos = 0usize;
                for _ in 0..dict_entries {
                    if pos + 4 > bytes.len() {
                        return Err(bad(path, "truncated dictionary"));
                    }
                    let n = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                    pos += 4;
                    let s = bytes
                        .get(pos..pos + n)
                        .ok_or_else(|| bad(path, "truncated dictionary entry"))?;
                    pos += n;
                    entries.push(Arc::from(
                        std::str::from_utf8(s).map_err(|_| bad(path, "non-utf8 dictionary"))?,
                    ));
                }
                Some(Arc::new(entries))
            } else {
                None
            };
            fields.push(Field::new(col_name, dtype));
            cols.push(MappedCol {
                dtype,
                data,
                validity,
                dict,
            });
        }
        Ok((
            name,
            fields,
            block_rows,
            row_count,
            MappedTable {
                map: Arc::new(map),
                row_count: rows,
                cols,
                decoded: Arc::new(std::sync::OnceLock::new()),
            },
        ))
    }

    fn dict(&self, col: usize) -> &StrDict {
        self.cols[col].dict.as_ref().expect("str column has a dict")
    }

    /// Validity of `[start, end)` in batch form: `None` when all valid.
    fn validity_range(&self, col: usize, start: usize, end: usize) -> Option<Vec<bool>> {
        let (off, len) = self.cols[col].validity?;
        let bytes = &self.map[off..off + len];
        let v: Vec<bool> = (start..end).map(|i| bit_at(bytes, i)).collect();
        if v.iter().all(|&b| b) {
            None
        } else {
            Some(v)
        }
    }

    /// Validity at selected `rows`: `None` when all selected rows are valid.
    fn validity_rows(&self, col: usize, rows: &[usize]) -> Option<Vec<bool>> {
        let (off, len) = self.cols[col].validity?;
        let bytes = &self.map[off..off + len];
        let v: Vec<bool> = rows.iter().map(|&i| bit_at(bytes, i)).collect();
        if v.iter().all(|&b| b) {
            None
        } else {
            Some(v)
        }
    }

    #[inline]
    fn i64_at(bytes: &[u8], i: usize) -> i64 {
        i64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap())
    }

    #[inline]
    fn f64_at(bytes: &[u8], i: usize) -> f64 {
        f64::from_bits(u64::from_le_bytes(
            bytes[8 * i..8 * i + 8].try_into().unwrap(),
        ))
    }

    #[inline]
    fn u32_at(bytes: &[u8], i: usize) -> u32 {
        u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap())
    }

    fn data_bytes(&self, col: usize) -> &[u8] {
        let (off, len) = self.cols[col].data;
        &self.map[off..off + len]
    }

    /// Gather `[start, end)` of one column out of the map.
    pub(crate) fn gather_range(&self, col: usize, start: usize, end: usize) -> ColumnVec {
        let bytes = self.data_bytes(col);
        let data = match self.cols[col].dtype {
            DataType::Bool => ColumnData::Bool((start..end).map(|i| bit_at(bytes, i)).collect()),
            DataType::Int => {
                ColumnData::Int((start..end).map(|i| Self::i64_at(bytes, i)).collect())
            }
            DataType::Float => {
                ColumnData::Float((start..end).map(|i| Self::f64_at(bytes, i)).collect())
            }
            DataType::Str => ColumnData::Str {
                dict: self.dict(col).clone(),
                codes: (start..end).map(|i| Self::u32_at(bytes, i)).collect(),
            },
        };
        ColumnVec {
            data,
            validity: self.validity_range(col, start, end),
        }
    }

    /// Gather one column at selected `rows` (ascending, in bounds).
    pub(crate) fn gather_rows(&self, col: usize, rows: &[usize]) -> ColumnVec {
        let bytes = self.data_bytes(col);
        let data = match self.cols[col].dtype {
            DataType::Bool => ColumnData::Bool(rows.iter().map(|&i| bit_at(bytes, i)).collect()),
            DataType::Int => {
                ColumnData::Int(rows.iter().map(|&i| Self::i64_at(bytes, i)).collect())
            }
            DataType::Float => {
                ColumnData::Float(rows.iter().map(|&i| Self::f64_at(bytes, i)).collect())
            }
            DataType::Str => ColumnData::Str {
                dict: self.dict(col).clone(),
                codes: rows.iter().map(|&i| Self::u32_at(bytes, i)).collect(),
            },
        };
        ColumnVec {
            data,
            validity: self.validity_rows(col, rows),
        }
    }

    /// The value at (`row`, `col`), decoded directly from the map.
    pub(crate) fn value(&self, row: usize, col: usize) -> Value {
        if let Some((off, len)) = self.cols[col].validity {
            if !bit_at(&self.map[off..off + len], row) {
                return Value::Null;
            }
        }
        let bytes = self.data_bytes(col);
        match self.cols[col].dtype {
            DataType::Bool => Value::Bool(bit_at(bytes, row)),
            DataType::Int => Value::Int(Self::i64_at(bytes, row)),
            DataType::Float => Value::Float(Self::f64_at(bytes, row)),
            DataType::Str => Value::Str(self.dict(col)[Self::u32_at(bytes, row) as usize].clone()),
        }
    }

    /// Full columns decoded out of the map, for the `&Column` accessor
    /// surface. Decoded once per table (all columns) and cached.
    pub(crate) fn decoded_columns(&self) -> &[Column] {
        self.decoded.get_or_init(|| {
            (0..self.cols.len())
                .map(|c| self.decode_column(c))
                .collect()
        })
    }

    fn decode_column(&self, col: usize) -> Column {
        let n = self.row_count;
        let bytes = self.data_bytes(col);
        let validity = match self.cols[col].validity {
            None => vec![],
            Some((off, len)) => {
                let v = &self.map[off..off + len];
                (0..n).map(|i| bit_at(v, i)).collect()
            }
        };
        match self.cols[col].dtype {
            DataType::Bool => Column::Bool {
                data: (0..n).map(|i| bit_at(bytes, i)).collect(),
                validity,
            },
            DataType::Int => Column::Int {
                data: (0..n).map(|i| Self::i64_at(bytes, i)).collect(),
                validity,
            },
            DataType::Float => Column::Float {
                data: (0..n).map(|i| Self::f64_at(bytes, i)).collect(),
                validity,
            },
            DataType::Str => Column::Str {
                dict: self.dict(col).clone(),
                codes: (0..n).map(|i| Self::u32_at(bytes, i)).collect(),
                validity,
            },
        }
    }

    /// Number of columns.
    pub(crate) fn column_count(&self) -> usize {
        self.cols.len()
    }
}

/// Open the `.sac` file at `path` as a memory-mapped [`Table`].
pub fn open_table_file(path: &Path) -> Result<Table> {
    let (name, fields, block_rows, row_count, mapped) = MappedTable::open(path)?;
    let schema = Schema::new(fields)?.qualify_all(&name);
    Ok(Table::from_mapped(
        name, schema, block_rows, row_count, mapped,
    ))
}

/// Persist every table of `catalog` into `dir` as `<table>.sac` files.
/// Returns `(table name, file bytes)` per table, in catalog order.
pub fn persist_catalog(catalog: &Catalog, dir: &Path) -> Result<Vec<(String, u64)>> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create_dir_all", e))?;
    let mut out = Vec::new();
    for (name, table) in catalog.iter() {
        let path = dir.join(format!("{name}.{TABLE_EXT}"));
        let bytes = write_table_file(table, &path)?;
        out.push((name.to_string(), bytes));
    }
    Ok(out)
}

/// Open every `*.sac` file under `dir` as a mapped table and register them
/// in a fresh [`Catalog`].
pub fn open_catalog_dir(dir: &Path) -> Result<Catalog> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| io_err(dir, "read_dir", e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(TABLE_EXT))
        .collect();
    paths.sort();
    let mut catalog = Catalog::new();
    for p in &paths {
        catalog.register(open_table_file(p)?)?;
    }
    Ok(catalog)
}
