//! The `.sac` on-disk columnar table format and its memory-mapped reader.
//!
//! One page-aligned file per table:
//!
//! ```text
//! page 0        header: magic, page size, row/block counts, directory and
//!               checksum-segment pointers, directory checksum, and a header
//!               self-checksum (format version 2, magic `SACTBL02`)
//! page 1..      per-column segments, each aligned to a page boundary:
//!                 data     Int/Float = 8-byte LE per row, Str = 4-byte LE
//!                          dictionary codes per row, Bool = bit-packed
//!                 validity bit-packed, present only when the column has nulls
//!                 dict     (Str only) u32-length-prefixed UTF-8 entries
//! sums          one u64 checksum per data page (file pages 1..sums), page
//!               aligned; every column segment must lie inside the
//!               checksummed region
//! tail          directory: table name, then per column the unqualified
//!               field name, data type and segment (offset, len) triples
//! ```
//!
//! The reader ([`MappedTable`]) keeps the file mapped and gathers row ranges
//! straight out of the map into [`ColumnVec`]s — the same representation the
//! in-RAM backend produces — so the two backends are interchangeable above
//! [`crate::Table::batch_range`]. String dictionaries are decoded once at
//! open (they are small) and shared by every gathered batch.
//!
//! ## Corruption detection
//!
//! Structural damage (bad magic, truncated segments, dangling offsets, a
//! flipped header or directory byte) fails at **open** with
//! [`StorageError::BadFormat`] — the header and directory carry their own
//! checksums, so a file either opens with a trustworthy layout or not at
//! all. Damage to *data* pages is detected lazily at **gather**: the first
//! time a gather touches a page its stored checksum is verified (and the
//! verdict cached in a per-open atomic bitmap, so steady-state scans pay
//! one extra pass per page, not per chunk). A mismatch surfaces as the
//! typed [`StorageError::CorruptPage`] — a gather never returns wrong
//! bytes. Dictionary pages are verified eagerly at open, since dictionaries
//! are decoded there.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::chunk::{ColumnData, ColumnVec, StrDict};
use crate::column::Column;
use crate::error::StorageError;
use crate::mmap::Mmap;
use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::Catalog;
use crate::Result;

/// Magic bytes opening every table file (format version 2: per-page
/// checksums, header/directory self-checksums).
pub const MAGIC: &[u8; 8] = b"SACTBL02";

/// The magic of the checksum-less v1 format, recognized only to reject it
/// with a clear message.
const MAGIC_V1: &[u8; 8] = b"SACTBL01";

/// Segment alignment and header size: one 4 KiB page.
pub const PAGE_SIZE: usize = 4096;

/// Header layout: magic + 10 LE u64 words (page size, row count, block
/// rows, column count, dir off/len, checksum-segment off/page count,
/// directory checksum, header self-checksum).
const HEADER_WORDS: usize = 10;
/// Byte length of the v2 header (the rest of page 0 is zero padding).
pub const HEADER_LEN: usize = 8 + 8 * HEADER_WORDS;

/// File extension used by [`persist_catalog`] / [`open_catalog_dir`].
pub const TABLE_EXT: &str = "sac";

/// Word-at-a-time mixing checksum (xor-multiply-shift over 8-byte words,
/// with a length-tweaked tail). Not cryptographic — it exists to catch
/// torn writes and bit rot, and any single flipped bit changes the sum.
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    const MULT: u64 = 0x2545_f491_4f6c_dd1d;
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().unwrap())).wrapping_mul(MULT);
        h ^= h >> 32;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(MULT);
        h ^= h >> 32;
        h ^= rem.len() as u64;
    }
    h
}

/// Process-wide count of transient page-read faults that were retried
/// (injected via `sa-fault`; real mapped reads cannot report transient
/// failure, they SIGBUS — so in production this stays 0).
static RETRIES: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of corrupt pages detected (checksum mismatches and
/// injected torn pages).
static CORRUPT_PAGES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn note_retry() {
    RETRIES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_corrupt_page() {
    CORRUPT_PAGES.fetch_add(1, Ordering::Relaxed);
}

/// Total transient page-read faults retried by this process (see
/// [`StorageError::Io`] for the give-up shape). Polled by the
/// observability layer.
pub fn retries_total() -> u64 {
    RETRIES.load(Ordering::Relaxed)
}

/// Total corrupt pages this process has detected (checksum mismatches and
/// injected torn pages). Polled by the observability layer.
pub fn corrupt_pages_total() -> u64 {
    CORRUPT_PAGES.load(Ordering::Relaxed)
}

fn io_err(path: &Path, op: &str, e: impl std::fmt::Display) -> StorageError {
    StorageError::Io {
        path: path.display().to_string(),
        message: format!("{op}: {e}"),
    }
}

fn bad(path: &Path, message: impl Into<String>) -> StorageError {
    StorageError::BadFormat {
        path: path.display().to_string(),
        message: message.into(),
    }
}

fn dtype_code(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

fn dtype_from_code(code: u8, path: &Path) -> Result<DataType> {
    Ok(match code {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        other => return Err(bad(path, format!("unknown dtype code {other}"))),
    })
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

#[inline]
fn bit_at(bytes: &[u8], i: usize) -> bool {
    bytes[i / 8] & (1 << (i % 8)) != 0
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Zero-pad `buf` to the next page boundary and return the aligned length.
fn align(buf: &mut Vec<u8>) -> u64 {
    let rem = buf.len() % PAGE_SIZE;
    if rem != 0 {
        buf.resize(buf.len() + PAGE_SIZE - rem, 0);
    }
    buf.len() as u64
}

struct ColumnDirEntry {
    name: String,
    dtype: DataType,
    data: (u64, u64),
    validity: (u64, u64),
    dict: (u64, u64),
    dict_entries: u64,
}

fn column_validity(col: &Column) -> &[bool] {
    match col {
        Column::Bool { validity, .. }
        | Column::Int { validity, .. }
        | Column::Float { validity, .. }
        | Column::Str { validity, .. } => validity,
    }
}

/// Write `table` to `path` in the `.sac` format. Returns the file length in
/// bytes. Works from either backend (a mapped table is decoded as it is
/// re-encoded). The file is assembled in memory so every data page's
/// checksum, the directory checksum and the header self-checksum can be
/// computed before a byte reaches disk — a torn or partial write therefore
/// cannot produce a file that both opens and gathers clean.
pub fn write_table_file(table: &Table, path: &Path) -> Result<u64> {
    let columns = table.columns()?;
    let mut entries: Vec<ColumnDirEntry> = Vec::with_capacity(columns.len());

    // Reserve page 0 for the header.
    let mut buf = vec![0u8; PAGE_SIZE];

    for (field, col) in table.schema().fields().iter().zip(columns.iter()) {
        let data_off = align(&mut buf);
        let data_bytes: Vec<u8> = match col {
            Column::Bool { data, .. } => pack_bits(data),
            Column::Int { data, .. } => data.iter().flat_map(|v| v.to_le_bytes()).collect(),
            Column::Float { data, .. } => data
                .iter()
                .flat_map(|v| v.to_bits().to_le_bytes())
                .collect(),
            Column::Str { codes, .. } => codes.iter().flat_map(|v| v.to_le_bytes()).collect(),
        };
        buf.extend_from_slice(&data_bytes);
        let data = (data_off, data_bytes.len() as u64);

        let validity_bits = column_validity(col);
        let validity = if validity_bits.is_empty() {
            (0, 0)
        } else {
            let off = align(&mut buf);
            let bytes = pack_bits(validity_bits);
            buf.extend_from_slice(&bytes);
            (off, bytes.len() as u64)
        };

        let (dict, dict_entries) = if let Column::Str { dict, .. } = col {
            let off = align(&mut buf);
            let mut bytes = Vec::new();
            for entry in dict.iter() {
                let s = entry.as_bytes();
                bytes.extend_from_slice(&(s.len() as u32).to_le_bytes());
                bytes.extend_from_slice(s);
            }
            buf.extend_from_slice(&bytes);
            ((off, bytes.len() as u64), dict.len() as u64)
        } else {
            ((0, 0), 0)
        };

        entries.push(ColumnDirEntry {
            name: field.name.to_string(),
            dtype: col.data_type(),
            data,
            validity,
            dict,
            dict_entries,
        });
    }

    // Checksum segment: one u64 per data page (file pages 1..sums).
    let sum_off = align(&mut buf);
    let sum_count = (sum_off as usize / PAGE_SIZE - 1) as u64;
    for page in 1..=sum_count as usize {
        let sum = checksum(&buf[page * PAGE_SIZE..(page + 1) * PAGE_SIZE]);
        buf.extend_from_slice(&sum.to_le_bytes());
    }

    // Directory.
    let dir_off = align(&mut buf);
    let mut dir = Vec::new();
    let name = table.name().as_bytes();
    dir.extend_from_slice(&(name.len() as u16).to_le_bytes());
    dir.extend_from_slice(name);
    for e in &entries {
        let n = e.name.as_bytes();
        dir.extend_from_slice(&(n.len() as u16).to_le_bytes());
        dir.extend_from_slice(n);
        dir.push(dtype_code(e.dtype));
        for (off, len) in [e.data, e.validity, e.dict] {
            dir.extend_from_slice(&off.to_le_bytes());
            dir.extend_from_slice(&len.to_le_bytes());
        }
        dir.extend_from_slice(&e.dict_entries.to_le_bytes());
    }
    let dir_len = dir.len() as u64;
    let dir_sum = checksum(&dir);
    buf.extend_from_slice(&dir);

    // Header, self-checksummed over everything before the final word.
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(MAGIC);
    for v in [
        PAGE_SIZE as u64,
        table.row_count(),
        table.block_rows() as u64,
        entries.len() as u64,
        dir_off,
        dir_len,
        sum_off,
        sum_count,
        dir_sum,
    ] {
        header.extend_from_slice(&v.to_le_bytes());
    }
    let head_sum = checksum(&header);
    header.extend_from_slice(&head_sum.to_le_bytes());
    debug_assert_eq!(header.len(), HEADER_LEN);
    buf[..HEADER_LEN].copy_from_slice(&header);

    let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
    let mut out = BufWriter::new(file);
    out.write_all(&buf).map_err(|e| io_err(path, "write", e))?;
    out.flush().map_err(|e| io_err(path, "flush", e))?;
    Ok(buf.len() as u64)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One column's segment pointers inside the map, plus its decoded dictionary.
#[derive(Debug, Clone)]
struct MappedCol {
    dtype: DataType,
    /// (offset, len) of the data segment.
    data: (usize, usize),
    /// (offset, len) of the bit-packed validity segment; `None` = no nulls.
    validity: Option<(usize, usize)>,
    /// Decoded dictionary (Str columns; shared by every gathered batch).
    dict: Option<StrDict>,
}

/// A table whose column data lives in a memory-mapped `.sac` file.
///
/// Gathers decode straight from the map into the same [`ColumnVec`] shapes
/// the in-RAM backend produces: values, validity (`None` when the gathered
/// range has no nulls) and dictionary codes are bit-identical across
/// backends — `tests/storage_equivalence.rs` holds both backends to that.
#[derive(Debug, Clone)]
pub struct MappedTable {
    map: Arc<Mmap>,
    /// The backing file, kept for error reporting.
    path: Arc<str>,
    row_count: usize,
    cols: Vec<MappedCol>,
    /// Offset of the per-page checksum segment and the number of
    /// checksummed data pages (file pages `1..=sum_count`).
    sums: (usize, usize),
    /// One bit per data page, set once its checksum has verified against
    /// this map. Verification is per-open and lock-free: a page is
    /// re-summed at most a handful of times under racing gathers, then
    /// every later gather sees the cached bit.
    verified: Arc<Vec<AtomicU64>>,
    /// Lazily decoded full columns backing the `&Column` accessors
    /// ([`Table::columns`] and friends) for API parity with `InRam`; the
    /// streaming scan path never touches this.
    decoded: Arc<std::sync::OnceLock<Vec<Column>>>,
}

struct DirCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> DirCursor<'a> {
    fn take(&mut self, n: usize, path: &Path) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(bad(path, "truncated directory"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, path: &Path) -> Result<u8> {
        Ok(self.take(1, path)?[0])
    }

    fn u16(&mut self, path: &Path) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, path)?.try_into().unwrap()))
    }

    fn u64(&mut self, path: &Path) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, path)?.try_into().unwrap()))
    }

    fn str(&mut self, path: &Path) -> Result<String> {
        let n = self.u16(path)? as usize;
        let bytes = self.take(n, path)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad(path, "non-utf8 name in directory"))
    }
}

fn segment<'m>(map: &'m Mmap, off: usize, len: usize, path: &Path) -> Result<&'m [u8]> {
    off.checked_add(len)
        .and_then(|end| map.get(off..end))
        .ok_or_else(|| bad(path, format!("segment [{off}, +{len}) out of file")))
}

/// Check one data page (1-based file page index) against its stored
/// checksum at `sum_off + 8 * (page - 1)`.
fn verify_page_against(map: &Mmap, sum_off: usize, page: usize, path: &Path) -> Result<()> {
    let at = sum_off + 8 * (page - 1);
    let stored = u64::from_le_bytes(map[at..at + 8].try_into().unwrap());
    let got = checksum(&map[page * PAGE_SIZE..(page + 1) * PAGE_SIZE]);
    if got != stored {
        note_corrupt_page();
        return Err(StorageError::CorruptPage {
            path: path.display().to_string(),
            page: page as u64,
            message: format!("checksum mismatch (stored {stored:#018x}, computed {got:#018x})"),
        });
    }
    Ok(())
}

/// Expected byte length of a column's data segment.
fn data_len_for(dtype: DataType, rows: usize) -> usize {
    match dtype {
        DataType::Bool => rows.div_ceil(8),
        DataType::Int | DataType::Float => rows * 8,
        DataType::Str => rows * 4,
    }
}

impl MappedTable {
    /// Open the `.sac` file at `path`, returning the rebuilt [`Table`]
    /// metadata alongside the mapped store: `(name, schema fields, block
    /// rows, row count, store)`.
    fn open(path: &Path) -> Result<(String, Vec<Field>, usize, u64, MappedTable)> {
        let map = Mmap::open(path)?;
        if map.len() >= 8 && &map[0..8] == MAGIC_V1 {
            return Err(bad(
                path,
                "unsupported format version SACTBL01 (re-persist with this build)",
            ));
        }
        if map.len() < HEADER_LEN || &map[0..8] != MAGIC {
            return Err(bad(path, "missing magic"));
        }
        let word = |i: usize| -> u64 {
            u64::from_le_bytes(map[8 + 8 * i..16 + 8 * i].try_into().unwrap())
        };
        // The header carries its own checksum in the final word; a file
        // whose header does not self-verify is rejected before any of its
        // offsets are trusted.
        if checksum(&map[0..HEADER_LEN - 8]) != word(HEADER_WORDS - 1) {
            return Err(bad(path, "header checksum mismatch"));
        }
        let page_size = word(0);
        if page_size != PAGE_SIZE as u64 {
            return Err(bad(path, format!("unsupported page size {page_size}")));
        }
        let row_count = word(1);
        let block_rows = word(2) as usize;
        let column_count = word(3) as usize;
        let dir_off = word(4) as usize;
        let dir_len = word(5) as usize;
        let sum_off = word(6) as usize;
        let sum_count = word(7) as usize;
        let dir_sum = word(8);
        if block_rows == 0 {
            return Err(bad(path, "zero block size"));
        }
        let rows = usize::try_from(row_count).map_err(|_| bad(path, "row count overflow"))?;
        if !sum_off.is_multiple_of(PAGE_SIZE) || sum_off / PAGE_SIZE != sum_count + 1 {
            return Err(bad(path, "checksum segment not covering the data region"));
        }
        let sums_len = sum_count
            .checked_mul(8)
            .ok_or_else(|| bad(path, "checksum segment overflow"))?;
        segment(&map, sum_off, sums_len, path)?;
        let dir_bytes = segment(&map, dir_off, dir_len, path)?;
        if dir_off < sum_off + sums_len {
            return Err(bad(path, "directory overlaps the checksummed region"));
        }
        if checksum(dir_bytes) != dir_sum {
            return Err(bad(path, "directory checksum mismatch"));
        }
        let mut cur = DirCursor {
            bytes: dir_bytes,
            pos: 0,
        };
        let name = cur.str(path)?;
        let mut fields = Vec::with_capacity(column_count);
        let mut cols = Vec::with_capacity(column_count);
        for _ in 0..column_count {
            let col_name = cur.str(path)?;
            let dtype = dtype_from_code(cur.u8(path)?, path)?;
            let mut spans = [(0usize, 0usize); 3];
            for s in &mut spans {
                let off = cur.u64(path)? as usize;
                let len = cur.u64(path)? as usize;
                *s = (off, len);
            }
            let dict_entries = cur.u64(path)? as usize;
            let [data, validity, dict_span] = spans;
            // Every column segment must lie inside the checksummed data
            // region `[PAGE_SIZE, sum_off)` — anything else is a forged
            // directory (the directory checksum already verified, so this
            // only trips on a corrupted writer).
            let in_data_region = |(off, len): (usize, usize)| {
                len == 0
                    || (off >= PAGE_SIZE && off.checked_add(len).is_some_and(|end| end <= sum_off))
            };
            if !in_data_region(data) || !in_data_region(validity) || !in_data_region(dict_span) {
                return Err(bad(
                    path,
                    format!("column `{col_name}`: segment outside the checksummed region"),
                ));
            }
            if data.1 != data_len_for(dtype, rows) {
                return Err(bad(
                    path,
                    format!("column `{col_name}`: data segment length"),
                ));
            }
            segment(&map, data.0, data.1, path)?;
            let validity = if validity.1 == 0 {
                None
            } else {
                if validity.1 != rows.div_ceil(8) {
                    return Err(bad(path, format!("column `{col_name}`: validity length")));
                }
                segment(&map, validity.0, validity.1, path)?;
                Some(validity)
            };
            let dict = if dtype == DataType::Str {
                // Dictionaries are decoded here at open, so their pages are
                // verified eagerly (data/validity pages verify lazily at
                // first gather).
                if dict_span.1 > 0 {
                    let first = dict_span.0 / PAGE_SIZE;
                    let last = (dict_span.0 + dict_span.1 - 1) / PAGE_SIZE;
                    for page in first..=last {
                        verify_page_against(&map, sum_off, page, path)?;
                    }
                }
                let bytes = segment(&map, dict_span.0, dict_span.1, path)?;
                let mut entries: Vec<Arc<str>> = Vec::with_capacity(dict_entries);
                let mut pos = 0usize;
                for _ in 0..dict_entries {
                    if pos + 4 > bytes.len() {
                        return Err(bad(path, "truncated dictionary"));
                    }
                    let n = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                    pos += 4;
                    let s = bytes
                        .get(pos..pos + n)
                        .ok_or_else(|| bad(path, "truncated dictionary entry"))?;
                    pos += n;
                    entries.push(Arc::from(
                        std::str::from_utf8(s).map_err(|_| bad(path, "non-utf8 dictionary"))?,
                    ));
                }
                Some(Arc::new(entries))
            } else {
                None
            };
            fields.push(Field::new(col_name, dtype));
            cols.push(MappedCol {
                dtype,
                data,
                validity,
                dict,
            });
        }
        let words = sum_count.div_ceil(64);
        Ok((
            name,
            fields,
            block_rows,
            row_count,
            MappedTable {
                map: Arc::new(map),
                path: Arc::from(path.display().to_string().as_str()),
                row_count: rows,
                cols,
                sums: (sum_off, sum_count),
                verified: Arc::new((0..words).map(|_| AtomicU64::new(0)).collect()),
                decoded: Arc::new(std::sync::OnceLock::new()),
            },
        ))
    }

    /// Verify the checksum of one data page (1-based file page index),
    /// consulting and updating the per-open verified bitmap.
    fn verify_page(&self, page: usize) -> Result<()> {
        let idx = page - 1;
        let word = &self.verified[idx / 64];
        let bit = 1u64 << (idx % 64);
        if word.load(Ordering::Acquire) & bit != 0 {
            return Ok(());
        }
        verify_page_against(&self.map, self.sums.0, page, Path::new(&*self.path))?;
        word.fetch_or(bit, Ordering::AcqRel);
        Ok(())
    }

    /// Verify every data page overlapping the byte span `[off, off+len)`.
    /// Open-time validation pinned all column segments inside the
    /// checksummed region, so the page indices are always in range.
    fn verify_span(&self, off: usize, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        for page in off / PAGE_SIZE..=(off + len - 1) / PAGE_SIZE {
            self.verify_page(page)?;
        }
        Ok(())
    }

    /// Byte span of rows `[start, end)` within column `col`'s data segment,
    /// then every covering page verified. Also covers the validity bytes.
    fn verify_cell_range(&self, col: usize, start: usize, end: usize) -> Result<()> {
        if start >= end {
            return Ok(());
        }
        let c = &self.cols[col];
        let (b0, b1) = match c.dtype {
            DataType::Bool => (start / 8, end.div_ceil(8)),
            DataType::Int | DataType::Float => (8 * start, 8 * end),
            DataType::Str => (4 * start, 4 * end),
        };
        self.verify_span(c.data.0 + b0, b1 - b0)?;
        if let Some((voff, _)) = c.validity {
            self.verify_span(voff + start / 8, end.div_ceil(8) - start / 8)?;
        }
        Ok(())
    }

    fn dict(&self, col: usize) -> &StrDict {
        self.cols[col].dict.as_ref().expect("str column has a dict")
    }

    /// Validity of `[start, end)` in batch form: `None` when all valid.
    fn validity_range(&self, col: usize, start: usize, end: usize) -> Option<Vec<bool>> {
        let (off, len) = self.cols[col].validity?;
        let bytes = &self.map[off..off + len];
        let v: Vec<bool> = (start..end).map(|i| bit_at(bytes, i)).collect();
        if v.iter().all(|&b| b) {
            None
        } else {
            Some(v)
        }
    }

    /// Validity at selected `rows`: `None` when all selected rows are valid.
    fn validity_rows(&self, col: usize, rows: &[usize]) -> Option<Vec<bool>> {
        let (off, len) = self.cols[col].validity?;
        let bytes = &self.map[off..off + len];
        let v: Vec<bool> = rows.iter().map(|&i| bit_at(bytes, i)).collect();
        if v.iter().all(|&b| b) {
            None
        } else {
            Some(v)
        }
    }

    #[inline]
    fn i64_at(bytes: &[u8], i: usize) -> i64 {
        i64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap())
    }

    #[inline]
    fn f64_at(bytes: &[u8], i: usize) -> f64 {
        f64::from_bits(u64::from_le_bytes(
            bytes[8 * i..8 * i + 8].try_into().unwrap(),
        ))
    }

    #[inline]
    fn u32_at(bytes: &[u8], i: usize) -> u32 {
        u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap())
    }

    fn data_bytes(&self, col: usize) -> &[u8] {
        let (off, len) = self.cols[col].data;
        &self.map[off..off + len]
    }

    /// Gather `[start, end)` of one column out of the map. Pages touched
    /// for the first time are verified against their stored checksums.
    pub(crate) fn gather_range(&self, col: usize, start: usize, end: usize) -> Result<ColumnVec> {
        self.verify_cell_range(col, start, end)?;
        let bytes = self.data_bytes(col);
        let data = match self.cols[col].dtype {
            DataType::Bool => ColumnData::Bool((start..end).map(|i| bit_at(bytes, i)).collect()),
            DataType::Int => {
                ColumnData::Int((start..end).map(|i| Self::i64_at(bytes, i)).collect())
            }
            DataType::Float => {
                ColumnData::Float((start..end).map(|i| Self::f64_at(bytes, i)).collect())
            }
            DataType::Str => ColumnData::Str {
                dict: self.dict(col).clone(),
                codes: (start..end).map(|i| Self::u32_at(bytes, i)).collect(),
            },
        };
        Ok(ColumnVec {
            data,
            validity: self.validity_range(col, start, end),
        })
    }

    /// Gather one column at selected `rows` (ascending, in bounds). The
    /// page span from the first to the last selected row is verified —
    /// selected rows always come from one bounded chunk, so the span is
    /// small.
    pub(crate) fn gather_rows(&self, col: usize, rows: &[usize]) -> Result<ColumnVec> {
        if let (Some(&first), Some(&last)) = (rows.first(), rows.last()) {
            self.verify_cell_range(col, first, last + 1)?;
        }
        let bytes = self.data_bytes(col);
        let data = match self.cols[col].dtype {
            DataType::Bool => ColumnData::Bool(rows.iter().map(|&i| bit_at(bytes, i)).collect()),
            DataType::Int => {
                ColumnData::Int(rows.iter().map(|&i| Self::i64_at(bytes, i)).collect())
            }
            DataType::Float => {
                ColumnData::Float(rows.iter().map(|&i| Self::f64_at(bytes, i)).collect())
            }
            DataType::Str => ColumnData::Str {
                dict: self.dict(col).clone(),
                codes: rows.iter().map(|&i| Self::u32_at(bytes, i)).collect(),
            },
        };
        Ok(ColumnVec {
            data,
            validity: self.validity_rows(col, rows),
        })
    }

    /// The value at (`row`, `col`), decoded directly from the map (its page
    /// checksum verified first).
    pub(crate) fn value(&self, row: usize, col: usize) -> Result<Value> {
        self.verify_cell_range(col, row, row + 1)?;
        if let Some((off, len)) = self.cols[col].validity {
            if !bit_at(&self.map[off..off + len], row) {
                return Ok(Value::Null);
            }
        }
        let bytes = self.data_bytes(col);
        Ok(match self.cols[col].dtype {
            DataType::Bool => Value::Bool(bit_at(bytes, row)),
            DataType::Int => Value::Int(Self::i64_at(bytes, row)),
            DataType::Float => Value::Float(Self::f64_at(bytes, row)),
            DataType::Str => Value::Str(self.dict(col)[Self::u32_at(bytes, row) as usize].clone()),
        })
    }

    /// Full columns decoded out of the map, for the `&Column` accessor
    /// surface. Decoded once per table (all columns) and cached; every
    /// column's pages are verified before the cache is populated.
    pub(crate) fn decoded_columns(&self) -> Result<&[Column]> {
        if let Some(cols) = self.decoded.get() {
            return Ok(cols);
        }
        let cols: Vec<Column> = (0..self.cols.len())
            .map(|c| self.decode_column(c))
            .collect::<Result<_>>()?;
        Ok(self.decoded.get_or_init(|| cols))
    }

    fn decode_column(&self, col: usize) -> Result<Column> {
        let n = self.row_count;
        self.verify_cell_range(col, 0, n)?;
        let bytes = self.data_bytes(col);
        let validity = match self.cols[col].validity {
            None => vec![],
            Some((off, len)) => {
                let v = &self.map[off..off + len];
                (0..n).map(|i| bit_at(v, i)).collect()
            }
        };
        Ok(match self.cols[col].dtype {
            DataType::Bool => Column::Bool {
                data: (0..n).map(|i| bit_at(bytes, i)).collect(),
                validity,
            },
            DataType::Int => Column::Int {
                data: (0..n).map(|i| Self::i64_at(bytes, i)).collect(),
                validity,
            },
            DataType::Float => Column::Float {
                data: (0..n).map(|i| Self::f64_at(bytes, i)).collect(),
                validity,
            },
            DataType::Str => Column::Str {
                dict: self.dict(col).clone(),
                codes: (0..n).map(|i| Self::u32_at(bytes, i)).collect(),
                validity,
            },
        })
    }

    /// Number of columns.
    pub(crate) fn column_count(&self) -> usize {
        self.cols.len()
    }
}

/// Open the `.sac` file at `path` as a memory-mapped [`Table`].
pub fn open_table_file(path: &Path) -> Result<Table> {
    let (name, fields, block_rows, row_count, mapped) = MappedTable::open(path)?;
    let schema = Schema::new(fields)?.qualify_all(&name);
    Ok(Table::from_mapped(
        name, schema, block_rows, row_count, mapped,
    ))
}

/// Persist every table of `catalog` into `dir` as `<table>.sac` files.
/// Returns `(table name, file bytes)` per table, in catalog order.
pub fn persist_catalog(catalog: &Catalog, dir: &Path) -> Result<Vec<(String, u64)>> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create_dir_all", e))?;
    let mut out = Vec::new();
    for (name, table) in catalog.iter() {
        let path = dir.join(format!("{name}.{TABLE_EXT}"));
        let bytes = write_table_file(table, &path)?;
        out.push((name.to_string(), bytes));
    }
    Ok(out)
}

/// Open every `*.sac` file under `dir` as a mapped table and register them
/// in a fresh [`Catalog`].
pub fn open_catalog_dir(dir: &Path) -> Result<Catalog> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| io_err(dir, "read_dir", e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(TABLE_EXT))
        .collect();
    paths.sort();
    let mut catalog = Catalog::new();
    for p in &paths {
        catalog.register(open_table_file(p)?)?;
    }
    Ok(catalog)
}
