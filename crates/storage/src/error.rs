//! Error type for the storage layer.

use std::fmt;

/// Errors produced by schema construction, table building and catalog lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column name was referenced that does not exist in the schema.
    UnknownColumn {
        /// The name as written by the caller (possibly qualified).
        name: String,
    },
    /// A table name was referenced that is not registered in the catalog.
    UnknownTable {
        /// The missing table's name.
        name: String,
    },
    /// A value of the wrong [`crate::DataType`] was supplied for a column.
    TypeMismatch {
        /// Column that rejected the value.
        column: String,
        /// The column's declared type.
        expected: crate::DataType,
        /// A rendering of the offending value.
        got: String,
    },
    /// Columns of unequal length were assembled into one table.
    RaggedColumns {
        /// Name of the table being built.
        table: String,
        /// Observed column lengths, for diagnostics.
        lengths: Vec<usize>,
    },
    /// A duplicate column or table name was registered.
    DuplicateName {
        /// The name registered twice.
        name: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: u64,
        /// Table length.
        len: u64,
    },
    /// An I/O failure on the persisted-table path (message keeps the
    /// underlying `io::Error` text; the error itself stays `Clone`).
    Io {
        /// File or directory involved.
        path: String,
        /// Operation and OS error text.
        message: String,
    },
    /// A table file failed structural validation (bad magic, truncated
    /// segment, dangling directory offset, …).
    BadFormat {
        /// The offending file.
        path: String,
        /// What was wrong.
        message: String,
    },
    /// A data page failed its checksum at gather time (bit rot, torn
    /// write, or an injected fault). The file opened clean — header and
    /// directory self-verify at open — but this page's bytes cannot be
    /// trusted, so the gather refuses to return them.
    CorruptPage {
        /// The offending file (or table name, for an injected fault on the
        /// in-RAM backend).
        path: String,
        /// File page index (0 when the fault was injected rather than
        /// detected by a real checksum).
        page: u64,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            StorageError::UnknownTable { name } => write!(f, "unknown table `{name}`"),
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {got}"
            ),
            StorageError::RaggedColumns { table, lengths } => write!(
                f,
                "columns of table `{table}` have unequal lengths: {lengths:?}"
            ),
            StorageError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            StorageError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds (table has {len} rows)")
            }
            StorageError::Io { path, message } => write!(f, "io error on `{path}`: {message}"),
            StorageError::BadFormat { path, message } => {
                write!(f, "bad table file `{path}`: {message}")
            }
            StorageError::CorruptPage {
                path,
                page,
                message,
            } => {
                write!(f, "corrupt page {page} in `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownColumn {
            name: "l_tax".into(),
        };
        assert!(e.to_string().contains("l_tax"));
        let e = StorageError::TypeMismatch {
            column: "o_totalprice".into(),
            expected: crate::DataType::Float,
            got: "Str(\"x\")".into(),
        };
        assert!(e.to_string().contains("o_totalprice"));
        assert!(e.to_string().contains("Float"));
    }
}
