//! Std-only observability layer: atomic counters and gauges, log-scaled
//! latency histograms with quantile readout, and a ring-buffered
//! structured-event journal.
//!
//! The design contract is that **metrics must never perturb the measured
//! system**:
//!
//! - A *disabled* [`Registry`] (the default for a bare `Engine`) hands out
//!   handles whose every operation is a single branch on a `None` — no
//!   allocation, no atomics, no locks.
//! - An *enabled* registry's hot-path operations are single relaxed atomic
//!   RMWs on pre-registered cells. Registration (the only locking path)
//!   happens at construction time, never per row or per chunk.
//! - Nothing in this crate touches the sampling stream: instrumented runs
//!   must produce byte-identical realized samples and estimates
//!   (pinned by `tests/observability.rs` in the workspace root).
//!
//! Handles are cheap `Arc` clones deduplicated by name: registering
//! `sa_rows_consumed_total` twice (e.g. from two shared-scan hubs) yields
//! two handles on the *same* cell, so totals aggregate naturally and every
//! series exists from construction (a scrape never misses a series just
//! because nothing incremented it yet).

mod histogram;
mod journal;
mod render;

pub use histogram::{HistogramSnapshot, QUANTILES};
pub use journal::{Event, EventKind};
pub use render::{CounterSnapshot, GaugeSnapshot, MetricsSnapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use histogram::HistogramCell;
use journal::Journal;

/// The shared state behind an enabled registry: name-keyed metric cells
/// plus the event journal. `BTreeMap` keeps snapshots and renders in a
/// stable, sorted order without a sort at read time.
struct Inner {
    epoch: Instant,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCell>>>,
    journal: Journal,
}

/// A handle to a metrics registry. Cloning is cheap (an `Arc` bump); all
/// clones observe and feed the same cells. A [`Registry::disabled`]
/// registry is a `None` inside — every handle it creates is a no-op.
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::disabled()
    }
}

impl Registry {
    /// An enabled registry with an empty metric set and event journal.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                journal: Journal::new(journal::DEFAULT_CAPACITY),
            })),
        }
    }

    /// A registry whose handles are all no-ops. This is the default: an
    /// uninstrumented engine pays one untaken branch per would-be metric
    /// update.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the registry was created (the journal's
    /// timestamp base). 0 when disabled.
    pub fn now_micros(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Register (or look up) a monotonic counter. Same name → same cell.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                let mut map = inner.counters.lock().expect("counter registry poisoned");
                Arc::clone(map.entry(name).or_default())
            }),
        }
    }

    /// Register (or look up) a gauge — a signed instantaneous value.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|inner| {
                let mut map = inner.gauges.lock().expect("gauge registry poisoned");
                Arc::clone(map.entry(name).or_default())
            }),
        }
    }

    /// Register (or look up) a log-scaled histogram. Use unit-suffixed
    /// names (`_us`, `_permille`) — the histogram stores integers.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram {
            cell: self.inner.as_ref().map(|inner| {
                let mut map = inner
                    .histograms
                    .lock()
                    .expect("histogram registry poisoned");
                Arc::clone(map.entry(name).or_default())
            }),
        }
    }

    /// Append a structured event to the ring journal (dropping the oldest
    /// event once the ring is full). No-op when disabled.
    pub fn record(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner.journal.push(Event {
                at_micros: inner.epoch.elapsed().as_micros() as u64,
                kind,
            });
        }
    }

    /// The journal contents, oldest first, plus how many events the ring
    /// dropped. Empty when disabled.
    pub fn events(&self) -> (Vec<Event>, u64) {
        match &self.inner {
            Some(inner) => inner.journal.drain_copy(),
            None => (Vec::new(), 0),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, cell)| CounterSnapshot {
                name,
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(name, cell)| GaugeSnapshot {
                name,
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(name, cell)| cell.snapshot(name))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            events_dropped: inner.journal.dropped(),
        }
    }

    /// Render the current metrics in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// A monotonic counter handle. All operations are relaxed atomics (or
/// no-ops on a disabled registry).
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1)
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Whether this handle records anywhere (false for handles from a
    /// disabled registry).
    pub fn enabled(&self) -> bool {
        self.cell.is_some()
    }
}

/// A signed gauge handle for instantaneous quantities (active queries,
/// attached cursors).
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

impl Gauge {
    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A log-scaled histogram handle: 4 buckets per power-of-two octave
/// (≤ 25% relative error). Records are relaxed atomic adds on fixed-size
/// bucket arrays.
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.count())
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.record(value);
        }
    }

    /// Number of observations so far (0 when disabled).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map(|c| c.count()).unwrap_or(0)
    }

    /// Whether this handle records anywhere. Guard `Instant::now()` calls
    /// that exist only to feed this histogram behind it.
    pub fn enabled(&self) -> bool {
        self.cell.is_some()
    }
}

/// Time a closure and record its wall duration in microseconds into
/// `hist`. On a disabled registry the only overhead is the untaken
/// branch inside [`Histogram::record`] — `Instant::now` is still called,
/// so do not use this inside per-row loops (per-chunk and coarser only).
pub fn time_us<T>(hist: &Histogram, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    hist.record(start.elapsed().as_micros() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.enabled());
        let c = reg.counter("sa_test_total");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = reg.gauge("sa_test_gauge");
        g.add(5);
        g.set(-3);
        assert_eq!(g.get(), 0);
        let h = reg.histogram("sa_test_us");
        h.record(123);
        assert_eq!(h.count(), 0);
        reg.record(EventKind::QueryStarted {
            session: 1,
            query: 1,
        });
        assert!(reg.events().0.is_empty());
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert_eq!(reg.render_prometheus(), "");
    }

    #[test]
    fn counters_dedupe_by_name() {
        let reg = Registry::new();
        let a = reg.counter("sa_shared_total");
        let b = reg.counter("sa_shared_total");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 5);
    }

    #[test]
    fn gauges_go_up_and_down() {
        let reg = Registry::new();
        let g = reg.gauge("sa_active");
        g.add(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn registry_clones_share_cells() {
        let reg = Registry::new();
        let c1 = reg.counter("sa_x_total");
        let reg2 = reg.clone();
        let c2 = reg2.counter("sa_x_total");
        c1.inc();
        c2.inc();
        assert_eq!(reg.snapshot().counters[0].value, 2);
    }

    #[test]
    fn time_us_records_once() {
        let reg = Registry::new();
        let h = reg.histogram("sa_t_us");
        let v = time_us(&h, || 42);
        assert_eq!(v, 42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn events_carry_monotonic_timestamps() {
        let reg = Registry::new();
        reg.record(EventKind::QueryStarted {
            session: 1,
            query: 1,
        });
        reg.record(EventKind::SnapshotEmitted { query: 1, rows: 64 });
        reg.record(EventKind::RuleFired {
            query: 1,
            reason: "exhausted",
            scan_permille: 1000,
        });
        let (events, dropped) = reg.events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 3);
        for pair in events.windows(2) {
            assert!(pair[0].at_micros <= pair[1].at_micros);
        }
        assert!(matches!(
            events[2].kind,
            EventKind::RuleFired {
                reason: "exhausted",
                ..
            }
        ));
    }
}
