//! A log-scaled histogram over `u64` observations.
//!
//! Bucket layout: values 0–3 get their own bucket (indexes 0–3); from 4
//! up, each power-of-two octave is split into 4 sub-buckets, so the
//! relative quantile error is bounded by ~25% while the whole `u64` range
//! fits in [`BUCKETS`] fixed slots. For a value `v ≥ 4` with
//! `h = floor(log2 v)`, the index is `4*(h-1) + ((v >> (h-2)) & 3)` —
//! the two bits below the leading bit select the sub-bucket.
//!
//! Recording is one relaxed `fetch_add` on the bucket plus relaxed
//! updates of count/sum/max — no locks, safe from any thread. Reads
//! (quantiles) walk the bucket array and are approximate in the usual
//! log-histogram way: a quantile lands in a bucket and reports the
//! bucket's representative (lower-bound) value.

use std::sync::atomic::{AtomicU64, Ordering};

/// 4 singleton buckets + 4 sub-buckets for each octave `2^2..2^63`.
pub(crate) const BUCKETS: usize = 4 + 4 * 62;

/// The quantiles every snapshot and render reports.
pub const QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let h = 63 - v.leading_zeros() as usize; // floor(log2 v) >= 2
    4 * (h - 1) + ((v >> (h - 2)) & 3) as usize
}

/// The lower bound of bucket `i` — the value the quantile readout reports
/// for observations that landed there.
fn bucket_floor(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let h = i / 4 + 1;
    let sub = (i % 4) as u64;
    (1u64 << h) + (sub << (h - 2))
}

pub(crate) struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCell {
    #[inline]
    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self, name: &'static str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Concurrent recorders may land between the bucket reads and the
        // count read; derive the count from the buckets we actually saw so
        // the quantile walk is self-consistent.
        let count: u64 = buckets.iter().sum();
        let quantiles = QUANTILES.map(|q| quantile_from(&buckets, count, q));
        HistogramSnapshot {
            name,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            quantiles,
        }
    }
}

/// Walk the bucket counts to the first bucket whose cumulative count
/// reaches `q * count`, and report that bucket's floor.
fn quantile_from(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return bucket_floor(i);
        }
    }
    bucket_floor(BUCKETS - 1)
}

/// A point-in-time readout of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered metric name (unit-suffixed, e.g. `sa_query_duration_us`).
    pub name: &'static str,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Values at [`QUANTILES`] (p50/p95/p99), as bucket lower bounds.
    pub quantiles: [u64; 3],
}

impl HistogramSnapshot {
    /// The p50/p95/p99 readout.
    pub fn p50(&self) -> u64 {
        self.quantiles[0]
    }
    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantiles[1]
    }
    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantiles[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn floors_invert_indexes() {
        // Every bucket's floor maps back to that bucket, and indexes are
        // monotone in the value.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "bucket {i}");
        }
        let mut last = 0;
        for v in [0u64, 1, 3, 4, 5, 7, 8, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(bucket_floor(i) <= v);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // The bucket floor is within 25% below the true value for v >= 4.
        for v in [4u64, 9, 17, 100, 999, 4096, 123_456, 1 << 40] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v);
            assert!((v - floor) as f64 / v as f64 <= 0.25, "v={v} floor={floor}");
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let cell = HistogramCell::default();
        // 100 observations: 1..=100 microseconds.
        for v in 1..=100u64 {
            cell.record(v);
        }
        let snap = cell.snapshot("t_us");
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        // p50 of 1..=100 is 50; the bucket holding 50 spans [48, 56).
        assert!(snap.p50() >= 38 && snap.p50() <= 50, "p50={}", snap.p50());
        assert!(snap.p95() >= 72 && snap.p95() <= 95, "p95={}", snap.p95());
        assert!(snap.p99() >= 75 && snap.p99() <= 99, "p99={}", snap.p99());
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let cell = HistogramCell::default();
        let snap = cell.snapshot("t_us");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p99(), 0);
    }
}
