//! A bounded ring journal of structured engine events.
//!
//! The journal is a diagnostic trace, not a metric: it answers "what did
//! query 3 do, in order?" rather than "how many queries ran?". It is
//! intentionally off the hot path — events fire at query/session/cursor
//! granularity (never per chunk except `SnapshotEmitted`, never per row),
//! so one short mutexed push per event is cheap relative to the work the
//! event marks. When the ring fills, the oldest event is dropped and a
//! counter records the loss.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub(crate) const DEFAULT_CAPACITY: usize = 1024;

/// What happened. Fields are small copies (ids, counts, static strings) —
/// an event never borrows engine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A query began executing (after admission).
    QueryStarted {
        /// Owning session id.
        session: u64,
        /// Engine-wide query ordinal.
        query: u64,
    },
    /// A progress snapshot was delivered to the caller.
    SnapshotEmitted {
        /// Engine-wide query ordinal.
        query: u64,
        /// Rows consumed at the snapshot.
        rows: u64,
    },
    /// A stopping rule fired (or the stream drained / the caller
    /// cancelled) — the query is over.
    RuleFired {
        /// Engine-wide query ordinal.
        query: u64,
        /// The stop reason's display form (`"ci-converged"`, …).
        reason: &'static str,
        /// Scan fraction at stop, in permille of the driving relation.
        scan_permille: u64,
    },
    /// A cursor attached to a shared scan hub.
    CursorAttached {
        /// Hub head position (rows) at attach.
        head: u64,
        /// Cursors attached after this one.
        attached: u64,
    },
    /// The engine rejected a query at admission (`Error::Busy`).
    SessionRejected {
        /// Owning session id.
        session: u64,
        /// Queries active at rejection.
        active: u64,
    },
}

/// One journal entry: a kind plus a monotonic timestamp (microseconds
/// since the registry's epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since [`crate::Registry`] creation.
    pub at_micros: u64,
    /// What happened.
    pub kind: EventKind,
}

pub(crate) struct Journal {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Journal {
    pub(crate) fn new(capacity: usize) -> Journal {
        Journal {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn push(&self, event: Event) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Copy out the ring, oldest first, with the drop count. The ring is
    /// left intact (reads are cheap and repeatable).
    pub(crate) fn drain_copy(&self) -> (Vec<Event>, u64) {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        (
            ring.iter().copied().collect(),
            self.dropped.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(query: u64) -> Event {
        Event {
            at_micros: query,
            kind: EventKind::SnapshotEmitted { query, rows: 0 },
        }
    }

    #[test]
    fn ring_drops_oldest_past_capacity() {
        let j = Journal::new(3);
        for q in 0..5 {
            j.push(ev(q));
        }
        let (events, dropped) = j.drain_copy();
        assert_eq!(dropped, 2);
        let qs: Vec<u64> = events.iter().map(|e| e.at_micros).collect();
        assert_eq!(qs, vec![2, 3, 4]);
    }

    #[test]
    fn reads_do_not_consume() {
        let j = Journal::new(8);
        j.push(ev(1));
        assert_eq!(j.drain_copy().0.len(), 1);
        assert_eq!(j.drain_copy().0.len(), 1);
    }
}
