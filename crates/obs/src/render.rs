//! Point-in-time metric snapshots and their text renderings
//! (Prometheus exposition format and JSON).
//!
//! Metric names may carry inline Prometheus labels
//! (`sa_queries_finished_total{reason="exhausted"}`); the renderer groups
//! `# TYPE` comments by the base name before the `{`, so labeled variants
//! of one family share a single type declaration.

use crate::histogram::HistogramSnapshot;

/// One counter's point-in-time value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered name, possibly with inline labels.
    pub name: &'static str,
    /// Value at the snapshot.
    pub value: u64,
}

/// One gauge's point-in-time value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Registered name, possibly with inline labels.
    pub name: &'static str,
    /// Value at the snapshot.
    pub value: i64,
}

/// A full point-in-time copy of a [`crate::Registry`]'s metrics, sorted
/// by name within each kind. A disabled registry snapshots to the empty
/// default.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All registered counters.
    pub counters: Vec<CounterSnapshot>,
    /// All registered gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All registered histograms, with quantile readouts.
    pub histograms: Vec<HistogramSnapshot>,
    /// Events the ring journal had to drop.
    pub events_dropped: u64,
}

/// The metric family name before any `{label}` suffix.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

impl MetricsSnapshot {
    /// Look up a counter by exact registered name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge by exact registered name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Look up a histogram by exact registered name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Render in Prometheus text exposition format: counters and gauges
    /// as single samples, histograms as summaries with p50/p95/p99
    /// quantile samples plus `_sum`/`_count`. An empty snapshot renders
    /// to the empty string.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = "";
        for c in &self.counters {
            let base = base_name(c.name);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} counter\n"));
                last_base = base;
            }
            out.push_str(&format!("{} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            let base = base_name(g.name);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} gauge\n"));
                last_base = base;
            }
            out.push_str(&format!("{} {}\n", g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!("# TYPE {} summary\n", h.name));
            for (q, v) in crate::QUANTILES.iter().zip(h.quantiles) {
                out.push_str(&format!("{}{{quantile=\"{q}\"}} {v}\n", h.name));
            }
            out.push_str(&format!("{}_sum {}\n", h.name, h.sum));
            out.push_str(&format!("{}_count {}\n", h.name, h.count));
        }
        out
    }

    /// Render as one JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name:
    /// {count, sum, max, p50, p95, p99}}, "events_dropped": n}`.
    /// Hand-rolled (metric names are static identifiers, so no escaping
    /// beyond quotes is needed).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{:?}:{}", c.name, c.value));
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{:?}:{}", g.name, g.value));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{:?}:{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.name,
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p95(),
                h.p99(),
            ));
        }
        out.push_str(&format!("}},\"events_dropped\":{}}}", self.events_dropped));
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn prometheus_groups_labeled_counters_under_one_type() {
        let reg = Registry::new();
        reg.counter("sa_queries_finished_total{reason=\"exhausted\"}")
            .add(3);
        reg.counter("sa_queries_finished_total{reason=\"ci-converged\"}")
            .add(2);
        reg.gauge("sa_active_queries").set(1);
        reg.histogram("sa_query_duration_us").record(100);
        let text = reg.render_prometheus();
        assert_eq!(
            text.matches("# TYPE sa_queries_finished_total counter")
                .count(),
            1
        );
        assert!(text.contains("sa_queries_finished_total{reason=\"ci-converged\"} 2"));
        assert!(text.contains("sa_queries_finished_total{reason=\"exhausted\"} 3"));
        assert!(text.contains("# TYPE sa_active_queries gauge"));
        assert!(text.contains("sa_active_queries 1"));
        assert!(text.contains("# TYPE sa_query_duration_us summary"));
        assert!(text.contains("sa_query_duration_us{quantile=\"0.5\"}"));
        assert!(text.contains("sa_query_duration_us{quantile=\"0.99\"}"));
        assert!(text.contains("sa_query_duration_us_sum 100"));
        assert!(text.contains("sa_query_duration_us_count 1"));
    }

    #[test]
    fn json_round_trips_the_shape() {
        let reg = Registry::new();
        reg.counter("sa_a_total").add(7);
        reg.gauge("sa_g").set(-2);
        reg.histogram("sa_h_us").record(50);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"sa_a_total\":7"));
        assert!(json.contains("\"sa_g\":-2"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"events_dropped\":0"));
    }

    #[test]
    fn snapshot_lookups_find_metrics() {
        let reg = Registry::new();
        reg.counter("sa_a_total").add(4);
        reg.gauge("sa_g").set(9);
        reg.histogram("sa_h_us").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sa_a_total"), Some(4));
        assert_eq!(snap.gauge("sa_g"), Some(9));
        assert_eq!(snap.histogram("sa_h_us").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }
}
