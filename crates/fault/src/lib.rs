//! # sa-fault — seeded, deterministic fault injection
//!
//! A process-global failpoint registry for chaos-testing the serving stack.
//! Production code paths name injection *sites* (plain `&'static str` keys
//! such as `storage.page_read.io`) and ask [`hit`] whether the fault fires
//! on this evaluation. With no faults installed the query is a single
//! relaxed atomic load of a `false` flag — one untaken branch — so the
//! hooks can live on hot paths (page gathers, chunk boundaries, socket
//! writes) without measurable cost.
//!
//! Faults are installed from a spec string (the `--fault` flag on `sa` and
//! `sa-server`):
//!
//! ```text
//! site=spec[,site=spec…]
//!   spec := <probability>   e.g. storage.page_read.io=0.05
//!         | hit:<n>         e.g. worker.chunk.panic=hit:3   (fires on the
//!                           n-th evaluation of that site, exactly once)
//! ```
//!
//! Probability triggers draw from a per-site splitmix64 stream seeded by
//! `(seed, site name)`, so a fault schedule is fully determined by
//! `(spec, seed)` and the sequence of site evaluations — rerunning a
//! deterministic workload replays the identical faults. The registry keeps
//! per-site evaluation/fired counters (see [`snapshot`]) so the
//! observability layer can report what was actually injected.
//!
//! What *happens* when a site fires is the caller's business: the storage
//! layer maps `storage.page_read.io` to a synthetic I/O error,
//! `storage.page_read.torn` to a checksum-failing page image,
//! `worker.chunk.panic` to a real `panic!`, and so on. This crate only
//! decides *whether* the fault fires.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Canonical site names. Using these constants (rather than ad-hoc string
/// literals) keeps the spec grammar, the injection hooks, and the docs in
/// agreement.
pub mod sites {
    /// Synthetic I/O error while gathering a `.sac` page (transient —
    /// the storage layer retries with backoff).
    pub const STORAGE_PAGE_IO: &str = "storage.page_read.io";
    /// Torn / bit-flipped `.sac` page image (non-transient — surfaces as
    /// `StorageError::CorruptPage`).
    pub const STORAGE_PAGE_TORN: &str = "storage.page_read.torn";
    /// Added latency on a `.sac` page gather.
    pub const STORAGE_PAGE_LATENCY: &str = "storage.page_read.latency";
    /// Panic at a worker chunk boundary (contained by the parallel pool;
    /// the query finishes `reason=degraded`).
    pub const WORKER_PANIC: &str = "worker.chunk.panic";
    /// Stall at a worker chunk boundary.
    pub const WORKER_STALL: &str = "worker.chunk.stall";
    /// Drop a server connection mid-stream.
    pub const SERVER_CONN_DROP: &str = "server.conn.drop";
    /// Slow down a server response write.
    pub const SERVER_CONN_SLOW: &str = "server.conn.slow_write";
}

/// All site names this build knows about (used to validate specs).
const KNOWN_SITES: &[&str] = &[
    sites::STORAGE_PAGE_IO,
    sites::STORAGE_PAGE_TORN,
    sites::STORAGE_PAGE_LATENCY,
    sites::WORKER_PANIC,
    sites::WORKER_STALL,
    sites::SERVER_CONN_DROP,
    sites::SERVER_CONN_SLOW,
];

/// Fast-path flag: `false` means the registry is empty and [`hit`] is one
/// untaken branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

static REGISTRY: Mutex<Vec<Site>> = Mutex::new(Vec::new());

#[derive(Debug, Clone)]
struct Site {
    name: String,
    trigger: Trigger,
    /// splitmix64 state for probability triggers.
    rng: u64,
    evals: u64,
    fired: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire on each evaluation with this probability.
    Probability(f64),
    /// Fire on exactly the n-th evaluation (1-based), once.
    Nth(u64),
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the site name, to derive a per-site RNG stream from one seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn registry() -> std::sync::MutexGuard<'static, Vec<Site>> {
    // The registry holds plain counters and RNG state; a panic while the
    // lock is held (e.g. from a worker.chunk.panic site evaluated inside
    // it — which cannot happen, but belt and braces) leaves it usable.
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Parse and install a fault spec, arming the registry. Replaces any
/// previously installed spec. `seed` determines every probability trigger's
/// draw sequence. Returns a human-readable message on a malformed spec.
pub fn install(spec: &str, seed: u64) -> Result<(), String> {
    let mut sites = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, val) = part
            .split_once('=')
            .ok_or_else(|| format!("fault spec `{part}`: expected site=spec"))?;
        let name = name.trim();
        let val = val.trim();
        if !KNOWN_SITES.contains(&name) {
            return Err(format!(
                "fault spec: unknown site `{name}` (known: {})",
                KNOWN_SITES.join(", ")
            ));
        }
        let trigger = if let Some(n) = val.strip_prefix("hit:") {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("fault spec `{part}`: bad hit count `{n}`"))?;
            if n == 0 {
                return Err(format!("fault spec `{part}`: hit count must be >= 1"));
            }
            Trigger::Nth(n)
        } else {
            let p: f64 = val
                .parse()
                .map_err(|_| format!("fault spec `{part}`: bad probability `{val}`"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "fault spec `{part}`: probability must be in [0, 1]"
                ));
            }
            Trigger::Probability(p)
        };
        sites.push(Site {
            name: name.to_string(),
            trigger,
            rng: seed ^ fnv1a(name),
            evals: 0,
            fired: 0,
        });
    }
    let armed = !sites.is_empty();
    *registry() = sites;
    ENABLED.store(armed, Ordering::SeqCst);
    Ok(())
}

/// Disarm and clear the registry: every subsequent [`hit`] is one untaken
/// branch again, and [`snapshot`] is empty.
pub fn reset() {
    ENABLED.store(false, Ordering::SeqCst);
    registry().clear();
}

/// Whether any failpoints are armed. A `false` answer is a single relaxed
/// atomic load.
#[inline(always)]
pub fn armed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Evaluate a failpoint site. Returns `true` when the installed fault
/// fires on this evaluation. With nothing armed this is one untaken branch.
#[inline]
pub fn hit(site: &str) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    hit_slow(site)
}

#[cold]
fn hit_slow(site: &str) -> bool {
    let mut reg = registry();
    let Some(s) = reg.iter_mut().find(|s| s.name == site) else {
        return false;
    };
    s.evals += 1;
    let fires = match s.trigger {
        Trigger::Probability(p) => {
            // 53-bit uniform in [0, 1), same construction as vendor/rand.
            let u = (splitmix64(&mut s.rng) >> 11) as f64 / (1u64 << 53) as f64;
            u < p
        }
        Trigger::Nth(n) => s.evals == n,
    };
    if fires {
        s.fired += 1;
    }
    fires
}

/// Per-site `(name, evaluations, fired)` counters for every installed site,
/// in spec order.
pub fn snapshot() -> Vec<(String, u64, u64)> {
    registry()
        .iter()
        .map(|s| (s.name.clone(), s.evals, s.fired))
        .collect()
}

/// Total faults fired across all sites since the last [`install`].
pub fn total_fired() -> u64 {
    registry().iter().map(|s| s.fired).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry state is process-global; serialize the tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_registry_never_fires() {
        let _g = guard();
        reset();
        assert!(!armed());
        for _ in 0..1000 {
            assert!(!hit(sites::STORAGE_PAGE_IO));
        }
        assert_eq!(total_fired(), 0);
    }

    #[test]
    fn nth_hit_fires_exactly_once_on_the_nth_evaluation() {
        let _g = guard();
        install("worker.chunk.panic=hit:3", 0).unwrap();
        assert!(!hit(sites::WORKER_PANIC));
        assert!(!hit(sites::WORKER_PANIC));
        assert!(hit(sites::WORKER_PANIC));
        for _ in 0..10 {
            assert!(!hit(sites::WORKER_PANIC));
        }
        assert_eq!(total_fired(), 1);
        reset();
    }

    #[test]
    fn probability_stream_is_deterministic_in_the_seed() {
        let _g = guard();
        let run = |seed: u64| -> Vec<bool> {
            install("storage.page_read.io=0.25", seed).unwrap();
            (0..64).map(|_| hit(sites::STORAGE_PAGE_IO)).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay the same fault schedule");
        assert_ne!(a, c, "different seeds should differ (for this spec)");
        assert!(a.iter().any(|&f| f), "p=0.25 over 64 draws should fire");
        assert!(!a.iter().all(|&f| f));
        reset();
    }

    #[test]
    fn unknown_sites_and_bad_specs_are_rejected() {
        let _g = guard();
        assert!(install("no.such.site=0.5", 0).is_err());
        assert!(install("storage.page_read.io", 0).is_err());
        assert!(install("storage.page_read.io=nan", 0).is_err());
        assert!(install("storage.page_read.io=1.5", 0).is_err());
        assert!(install("worker.chunk.panic=hit:0", 0).is_err());
        // A rejected spec must not leave the registry armed.
        assert!(!armed());
        reset();
    }

    #[test]
    fn probability_zero_and_one_are_exact() {
        let _g = guard();
        install("storage.page_read.io=0.0,storage.page_read.torn=1.0", 7).unwrap();
        for _ in 0..100 {
            assert!(!hit(sites::STORAGE_PAGE_IO));
            assert!(hit(sites::STORAGE_PAGE_TORN));
        }
        let snap = snapshot();
        assert_eq!(snap[0], ("storage.page_read.io".into(), 100, 0));
        assert_eq!(snap[1], ("storage.page_read.torn".into(), 100, 100));
        reset();
    }
}
