//! Logical query plans with sampling operators.
//!
//! A [`LogicalPlan`] is the tree the user (or the SQL front-end) writes:
//! scans, `TABLESAMPLE` operators, filters, joins, projections and a final
//! aggregate. It is *executed* as written — the SOA rewriter
//! ([`crate::rewrite()`]) never changes what runs, it only derives the
//! statistics needed to analyze the result (the paper is explicit that the
//! transformation "does not provide a better alternative to the execution
//! plan").

use std::fmt;
use std::sync::Arc;

use sa_expr::Expr;
use sa_sampling::SamplingMethod;
use sa_storage::{Catalog, Schema, SchemaRef};

use crate::error::PlanError;
use crate::Result;

/// Aggregate functions supported by the estimator.
///
/// `Sum`/`Count` are the linear cases of Theorem 1; `Avg` is estimated by
/// the delta method (Section 9). `MIN`/`MAX`/`DISTINCT` are out of scope, as
/// in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM(expr)`.
    Sum,
    /// `COUNT(*)` (or `COUNT(expr)` counting non-NULL rows).
    Count,
    /// `AVG(expr)` — delta-method ratio of two SUM estimators.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
        })
    }
}

/// One output column of an aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression; `None` only for `COUNT(*)`.
    pub expr: Option<Expr>,
    /// When set, report the `QUANTILE(agg, q)` bound instead of the point
    /// estimate (the paper's `CREATE VIEW APPROX` syntax).
    pub quantile: Option<f64>,
    /// Output column name.
    pub alias: String,
}

impl AggSpec {
    /// `SUM(expr)`.
    pub fn sum(expr: Expr, alias: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Sum,
            expr: Some(expr),
            quantile: None,
            alias: alias.into(),
        }
    }

    /// `COUNT(*)`.
    pub fn count_star(alias: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            expr: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    /// `AVG(expr)`.
    pub fn avg(expr: Expr, alias: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Avg,
            expr: Some(expr),
            quantile: None,
            alias: alias.into(),
        }
    }

    /// Wrap this aggregate in a `QUANTILE(…, q)` bound.
    pub fn with_quantile(mut self, q: f64) -> AggSpec {
        self.quantile = Some(q);
        self
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = match &self.expr {
            Some(e) => format!("{}({e})", self.func),
            None => format!("{}(*)", self.func),
        };
        match self.quantile {
            Some(q) => write!(f, "QUANTILE({inner}, {q})"),
            None => write!(f, "{inner}"),
        }
    }
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a base table, registered in the lineage schema under `alias`
    /// (defaults to the table name).
    Scan {
        /// Catalog table name.
        table: String,
        /// Lineage alias (must be unique per plan).
        alias: String,
    },
    /// A sampling operator over its input.
    Sample {
        /// The sampling method.
        method: SamplingMethod,
        /// Input (must be a base relation, possibly already sampled).
        input: Box<LogicalPlan>,
    },
    /// Relational selection σ.
    Filter {
        /// Boolean predicate.
        predicate: Expr,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Inner join (θ-join when `condition` is set, cross product otherwise).
    Join {
        /// Join predicate; `None` for a cross product.
        condition: Option<Expr>,
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Projection π.
    Project {
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Final aggregation.
    Aggregate {
        /// Output aggregates.
        aggs: Vec<AggSpec>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Union of two **independent samples of the same expression**
    /// (Proposition 7) — both children must be structurally identical after
    /// stripping sampling operators; result tuples are deduplicated by
    /// lineage ("the filter behavior required the removal of duplicates in
    /// Proposition 7").
    UnionSamples {
        /// First sampling of the expression.
        left: Box<LogicalPlan>,
        /// Second, independent sampling of the same expression.
        right: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Scan with alias = table name.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        let table = table.into();
        LogicalPlan::Scan {
            alias: table.clone(),
            table,
        }
    }

    /// Scan under an explicit lineage alias.
    pub fn scan_as(table: impl Into<String>, alias: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            alias: alias.into(),
        }
    }

    /// Apply a sampling operator.
    pub fn sample(self, method: SamplingMethod) -> LogicalPlan {
        LogicalPlan::Sample {
            method,
            input: Box::new(self),
        }
    }

    /// Apply a filter.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            predicate,
            input: Box::new(self),
        }
    }

    /// Equi-/θ-join with `other`.
    pub fn join_on(self, other: LogicalPlan, condition: Expr) -> LogicalPlan {
        LogicalPlan::Join {
            condition: Some(condition),
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Cross product with `other`.
    pub fn cross(self, other: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Join {
            condition: None,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Project to the given expressions.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            exprs,
            input: Box::new(self),
        }
    }

    /// Aggregate with the given output specs.
    pub fn aggregate(self, aggs: Vec<AggSpec>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            aggs,
            input: Box::new(self),
        }
    }

    /// Union with an independent sampling of the same expression
    /// (Proposition 7). Both sides must strip to the same relational core.
    pub fn union_samples(self, other: LogicalPlan) -> LogicalPlan {
        LogicalPlan::UnionSamples {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// This plan with every sampling operator removed (for comparing union
    /// branches and for documentation display).
    pub fn strip_samples(&self) -> LogicalPlan {
        match self {
            LogicalPlan::Scan { .. } => self.clone(),
            LogicalPlan::Sample { input, .. } => input.strip_samples(),
            LogicalPlan::Filter { predicate, input } => LogicalPlan::Filter {
                predicate: predicate.clone(),
                input: Box::new(input.strip_samples()),
            },
            LogicalPlan::Join {
                condition,
                left,
                right,
            } => LogicalPlan::Join {
                condition: condition.clone(),
                left: Box::new(left.strip_samples()),
                right: Box::new(right.strip_samples()),
            },
            LogicalPlan::Project { exprs, input } => LogicalPlan::Project {
                exprs: exprs.clone(),
                input: Box::new(input.strip_samples()),
            },
            LogicalPlan::Aggregate { aggs, input } => LogicalPlan::Aggregate {
                aggs: aggs.clone(),
                input: Box::new(input.strip_samples()),
            },
            // Both branches strip to the same core (validated); keep one.
            LogicalPlan::UnionSamples { left, .. } => left.strip_samples(),
        }
    }

    /// The base-relation aliases of the plan, in left-to-right scan order —
    /// the plan's lineage schema `L(R)`.
    pub fn base_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_scans(&mut |alias, _| out.push(alias));
        out
    }

    /// `(alias, table)` pairs in scan order.
    pub fn scan_bindings(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        self.visit_scans(&mut |alias, table| out.push((alias, table)));
        out
    }

    fn visit_scans<'a>(&'a self, f: &mut impl FnMut(&'a str, &'a str)) {
        match self {
            LogicalPlan::Scan { table, alias } => f(alias, table),
            LogicalPlan::Sample { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.visit_scans(f),
            LogicalPlan::Join { left, right, .. } => {
                left.visit_scans(f);
                right.visit_scans(f);
            }
            // Union branches reference the SAME relations; count them once.
            LogicalPlan::UnionSamples { left, .. } => left.visit_scans(f),
        }
    }

    /// The sampling methods applied to each base relation, aligned with
    /// [`LogicalPlan::base_relations`] (innermost first when stacked).
    pub fn sampling_per_relation(&self) -> Vec<Vec<&SamplingMethod>> {
        fn rec<'a>(plan: &'a LogicalPlan, out: &mut Vec<Vec<&'a SamplingMethod>>) {
            match plan {
                LogicalPlan::Scan { .. } => out.push(Vec::new()),
                LogicalPlan::Sample { method, input } => {
                    let before = out.len();
                    rec(input, out);
                    // A sample node annotates the single relation beneath it
                    // (validated by the rewriter; tolerated here).
                    if out.len() == before + 1 {
                        out.last_mut().expect("just pushed").push(method);
                    }
                }
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Aggregate { input, .. } => rec(input, out),
                LogicalPlan::Join { left, right, .. } => {
                    rec(left, out);
                    rec(right, out);
                }
                LogicalPlan::UnionSamples { left, .. } => rec(left, out),
            }
        }
        let mut out = Vec::new();
        rec(self, &mut out);
        out
    }

    /// Output schema of this plan against `catalog`.
    pub fn schema(&self, catalog: &Catalog) -> Result<SchemaRef> {
        Ok(match self {
            LogicalPlan::Scan { table, alias } => {
                let t = catalog.get(table)?;
                if alias == table {
                    t.schema().clone()
                } else {
                    Arc::new(t.schema().qualify_all(alias))
                }
            }
            LogicalPlan::Sample { input, .. } | LogicalPlan::Filter { input, .. } => {
                input.schema(catalog)?
            }
            LogicalPlan::Join { left, right, .. } => {
                let l = left.schema(catalog)?;
                let r = right.schema(catalog)?;
                Arc::new(l.join(&r)?)
            }
            LogicalPlan::Project { exprs, input } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let dt =
                        sa_expr::data_type(e, &in_schema)?.unwrap_or(sa_storage::DataType::Float);
                    fields.push(sa_storage::Field::new(name, dt));
                }
                Arc::new(Schema::new(fields)?)
            }
            LogicalPlan::Aggregate { aggs, input } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::with_capacity(aggs.len());
                for a in aggs {
                    // Validate argument expressions eagerly.
                    if let Some(e) = &a.expr {
                        sa_expr::bind(e, &in_schema)?;
                    }
                    fields.push(sa_storage::Field::new(
                        &a.alias,
                        sa_storage::DataType::Float,
                    ));
                }
                Arc::new(Schema::new(fields)?)
            }
            LogicalPlan::UnionSamples { left, .. } => left.schema(catalog)?,
        })
    }

    /// Validate plan shape: unique aliases, known tables, samples on base
    /// relations, aggregate only at the root, WOR not stacked over samplers.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        // Unique aliases.
        let rels = self.base_relations();
        for (i, a) in rels.iter().enumerate() {
            if rels[..i].contains(a) {
                return Err(PlanError::DuplicateAlias {
                    alias: a.to_string(),
                });
            }
        }
        // Known tables + schema check (also binds expressions).
        self.schema(catalog)?;
        // Structural checks.
        self.validate_structure(true)
    }

    fn validate_structure(&self, is_root: bool) -> Result<()> {
        match self {
            LogicalPlan::Scan { .. } => Ok(()),
            LogicalPlan::Sample { method, input } => {
                // Samples must sit on scans, possibly through other samples.
                let mut node: &LogicalPlan = input;
                let mut below_sampler = false;
                loop {
                    match node {
                        LogicalPlan::Scan { .. } => break,
                        LogicalPlan::Sample { input, .. } => {
                            below_sampler = true;
                            node = input;
                        }
                        other => {
                            return Err(PlanError::SampleNotOnBaseRelation {
                                subtree: other.node_label(),
                            })
                        }
                    }
                }
                if below_sampler && matches!(method, SamplingMethod::Wor { .. }) {
                    return Err(PlanError::WorOverRandomInput);
                }
                input.validate_structure(false)
            }
            LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
                input.validate_structure(false)
            }
            LogicalPlan::Join { left, right, .. } => {
                left.validate_structure(false)?;
                right.validate_structure(false)
            }
            LogicalPlan::Aggregate { aggs, input } => {
                if !is_root {
                    return Err(PlanError::Malformed(
                        "aggregate must be the root of the plan".into(),
                    ));
                }
                if aggs.is_empty() {
                    return Err(PlanError::Malformed("aggregate with no outputs".into()));
                }
                input.validate_structure(false)
            }
            LogicalPlan::UnionSamples { left, right } => {
                if left.strip_samples() != right.strip_samples() {
                    return Err(PlanError::Malformed(
                        "UnionSamples branches must be the same expression up to sampling \
                         operators (Proposition 7 unions independent samples of one \
                         expression)"
                            .into(),
                    ));
                }
                // Lineage granularity must agree per relation (block-level
                // SYSTEM in one branch and row-level in the other would mix
                // lineage units).
                let sys = |p: &LogicalPlan| -> Vec<bool> {
                    p.sampling_per_relation()
                        .iter()
                        .map(|stack| {
                            stack
                                .iter()
                                .any(|m| matches!(m, SamplingMethod::System { .. }))
                        })
                        .collect()
                };
                if sys(left) != sys(right) {
                    return Err(PlanError::Malformed(
                        "UnionSamples branches disagree on SYSTEM (block-level) sampling; \
                         lineage granularity must match across the union"
                            .into(),
                    ));
                }
                left.validate_structure(false)?;
                right.validate_structure(false)
            }
        }
    }

    /// Short label of this node for error messages and tree display.
    pub fn node_label(&self) -> String {
        match self {
            LogicalPlan::Scan { table, alias } if table == alias => table.clone(),
            LogicalPlan::Scan { table, alias } => format!("{table} AS {alias}"),
            LogicalPlan::Sample { method, .. } => format!("{method}"),
            LogicalPlan::Filter { predicate, .. } => format!("σ[{predicate}]"),
            LogicalPlan::Join {
                condition: Some(c), ..
            } => format!("⋈[{c}]"),
            LogicalPlan::Join {
                condition: None, ..
            } => "×".to_string(),
            LogicalPlan::Project { exprs, .. } => {
                let names: Vec<&str> = exprs.iter().map(|(_, n)| n.as_str()).collect();
                format!("π[{}]", names.join(", "))
            }
            LogicalPlan::Aggregate { aggs, .. } => {
                let parts: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                parts.join(", ")
            }
            LogicalPlan::UnionSamples { .. } => "∪ (independent samples)".to_string(),
        }
    }

    /// Render the plan as an indented tree (the paper's figure style).
    pub fn display_tree(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, "", true);
        out
    }

    fn render(&self, out: &mut String, prefix: &str, is_last: bool) {
        let connector = if prefix.is_empty() {
            ""
        } else if is_last {
            "└─ "
        } else {
            "├─ "
        };
        out.push_str(prefix);
        out.push_str(connector);
        out.push_str(&self.node_label());
        out.push('\n');
        let child_prefix = if prefix.is_empty() {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "│  " })
        };
        let children: Vec<&LogicalPlan> = match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Sample { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::UnionSamples { left, right } => {
                vec![left, right]
            }
        };
        let n = children.len();
        for (i, c) in children.into_iter().enumerate() {
            let p = if prefix.is_empty() && n > 0 {
                // Root's children get a minimal prefix.
                String::new()
            } else {
                child_prefix.clone()
            };
            // For the root we still want connectors on children.
            let p = if p.is_empty() { " ".to_string() } else { p };
            c.render(out, &p, i == n - 1);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_expr::{col, lit};

    fn catalog() -> Catalog {
        use sa_storage::{DataType, Field, TableBuilder, Value};
        let mut c = Catalog::new();
        for (name, cols) in [
            ("lineitem", vec!["l_orderkey", "l_price"]),
            ("orders", vec!["o_orderkey", "o_total"]),
        ] {
            let schema =
                Schema::new(cols.iter().map(|n| Field::new(*n, DataType::Int)).collect()).unwrap();
            let mut b = TableBuilder::new(name, schema);
            b.push_row(&[Value::Int(1), Value::Int(10)]).unwrap();
            c.register(b.finish().unwrap()).unwrap();
        }
        c
    }

    fn query1_plan() -> LogicalPlan {
        LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.1 })
            .join_on(
                LogicalPlan::scan("orders").sample(SamplingMethod::Wor { size: 1 }),
                col("l_orderkey").eq(col("o_orderkey")),
            )
            .filter(col("l_price").gt(lit(0i64)))
            .aggregate(vec![AggSpec::sum(col("l_price"), "s")])
    }

    #[test]
    fn base_relations_in_scan_order() {
        let p = query1_plan();
        assert_eq!(p.base_relations(), vec!["lineitem", "orders"]);
        assert_eq!(
            p.scan_bindings(),
            vec![("lineitem", "lineitem"), ("orders", "orders")]
        );
    }

    #[test]
    fn aliased_scan() {
        let p = LogicalPlan::scan_as("lineitem", "l1");
        assert_eq!(p.base_relations(), vec!["l1"]);
    }

    #[test]
    fn validate_accepts_query1() {
        query1_plan().validate(&catalog()).unwrap();
    }

    #[test]
    fn self_join_rejected_without_alias() {
        let p = LogicalPlan::scan("lineitem")
            .join_on(
                LogicalPlan::scan("lineitem"),
                col("lineitem.l_orderkey").eq(col("lineitem.l_orderkey")),
            )
            .aggregate(vec![AggSpec::count_star("c")]);
        assert!(matches!(
            p.validate(&catalog()),
            Err(PlanError::DuplicateAlias { .. })
        ));
    }

    #[test]
    fn sample_above_join_rejected() {
        let p = LogicalPlan::scan("lineitem")
            .join_on(
                LogicalPlan::scan("orders"),
                col("l_orderkey").eq(col("o_orderkey")),
            )
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .aggregate(vec![AggSpec::count_star("c")]);
        assert!(matches!(
            p.validate(&catalog()),
            Err(PlanError::SampleNotOnBaseRelation { .. })
        ));
    }

    #[test]
    fn stacked_bernoulli_allowed_wor_on_top_rejected() {
        let ok = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .aggregate(vec![AggSpec::count_star("c")]);
        ok.validate(&catalog()).unwrap();
        let bad = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .sample(SamplingMethod::Wor { size: 1 })
            .aggregate(vec![AggSpec::count_star("c")]);
        assert!(matches!(
            bad.validate(&catalog()),
            Err(PlanError::WorOverRandomInput)
        ));
    }

    #[test]
    fn aggregate_below_root_rejected() {
        let inner = LogicalPlan::scan("lineitem").aggregate(vec![AggSpec::count_star("c")]);
        let p = inner.filter(lit(true));
        assert!(matches!(
            p.validate(&catalog()),
            Err(PlanError::Malformed(_))
        ));
    }

    #[test]
    fn union_validation_errors_render_without_embedded_indentation() {
        // Mismatched branches: different base expressions under the union.
        let mismatched = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .union_samples(LogicalPlan::scan("orders").sample(SamplingMethod::Bernoulli { p: 0.5 }))
            .aggregate(vec![AggSpec::count_star("c")]);
        // Mismatched lineage granularity: SYSTEM in one branch only.
        let mixed_system = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::System { p: 0.5 })
            .union_samples(
                LogicalPlan::scan("lineitem").sample(SamplingMethod::Bernoulli { p: 0.5 }),
            )
            .aggregate(vec![AggSpec::count_star("c")]);
        for plan in [mismatched, mixed_system] {
            let msg = plan.validate(&catalog()).unwrap_err().to_string();
            assert!(
                !msg.contains("  "),
                "plan error leaks source indentation: {msg:?}"
            );
        }
    }

    #[test]
    fn schema_of_join_concatenates() {
        let p = LogicalPlan::scan("lineitem").join_on(
            LogicalPlan::scan("orders"),
            col("l_orderkey").eq(col("o_orderkey")),
        );
        let s = p.schema(&catalog()).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.index_of("lineitem.l_price").is_ok());
        assert!(s.index_of("orders.o_total").is_ok());
    }

    #[test]
    fn schema_of_project_renames() {
        let p = LogicalPlan::scan("lineitem")
            .project(vec![(col("l_price").mul(lit(2i64)), "double_price".into())]);
        let s = p.schema(&catalog()).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.index_of("double_price").is_ok());
    }

    #[test]
    fn unknown_table_rejected() {
        let p = LogicalPlan::scan("nope");
        assert!(p.schema(&catalog()).is_err());
    }

    #[test]
    fn sampling_per_relation_collects_stack() {
        let p = query1_plan();
        let per = p.sampling_per_relation();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].len(), 1); // B0.1 on lineitem
        assert_eq!(per[1].len(), 1); // WOR on orders
        let p2 = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .sample(SamplingMethod::Bernoulli { p: 0.25 });
        assert_eq!(p2.sampling_per_relation()[0].len(), 2);
    }

    #[test]
    fn display_tree_contains_structure() {
        let t = query1_plan().display_tree();
        assert!(t.contains("SUM"), "{t}");
        assert!(t.contains("B0.1"), "{t}");
        assert!(t.contains("WOR1"), "{t}");
        assert!(t.contains("⋈"), "{t}");
        assert!(t.contains("lineitem"), "{t}");
    }

    #[test]
    fn agg_spec_display() {
        assert_eq!(
            AggSpec::sum(col("x"), "s").with_quantile(0.95).to_string(),
            "QUANTILE(SUM(x), 0.95)"
        );
        assert_eq!(AggSpec::count_star("c").to_string(), "COUNT(*)");
        assert_eq!(AggSpec::avg(col("x"), "a").to_string(), "AVG(x)");
    }
}
