//! Needed-column analysis for projection pushdown.
//!
//! A scan only has to gather the columns the rest of the plan can observe:
//! the union of every projected expression, filter predicate, join condition
//! and aggregate argument — plus *all* of its columns when the scan's own
//! schema escapes to the plan's output (no `Project`/`Aggregate` above it).
//! Lineage needs no column at all: row ids travel beside the batch.
//!
//! The analysis is deliberately conservative. Referenced names are collected
//! globally (a bare name used against one relation may also select a
//! same-named column of another) and any shape the walk does not understand
//! keeps every column. Over-approximation only costs gather work; it can
//! never change a result — and because pruning drops only columns nothing
//! downstream can read, the realized sample and every estimate are identical
//! with and without pushdown (pinned by `tests/storage_equivalence.rs`).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use sa_storage::Schema;

use crate::plan::LogicalPlan;

/// What a scan must gather.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanCols {
    /// The scan's schema escapes to the root: gather every column.
    All,
    /// Only columns matching one of these referenced names are observable.
    Names(Arc<BTreeSet<String>>),
}

/// Per-scan-alias needed-column sets for one plan.
#[derive(Debug, Clone, Default)]
pub struct ScanColumnMap {
    per_alias: HashMap<String, ScanCols>,
}

impl ScanColumnMap {
    /// Analyze `plan` top-down. The root's full output is assumed observed
    /// (whoever opened the stream reads every output column).
    pub fn analyze(plan: &LogicalPlan) -> ScanColumnMap {
        Self::analyze_with(plan, &[])
    }

    /// [`Self::analyze`] plus `also_observed`: expressions the consumer
    /// evaluates over the plan's output beyond what the plan itself
    /// mentions — e.g. the online driver's GROUP BY keys, which are
    /// compiled against the streamed input's schema, not planned as a
    /// `Project`.
    pub fn analyze_with(plan: &LogicalPlan, also_observed: &[sa_expr::Expr]) -> ScanColumnMap {
        let mut refs: BTreeSet<String> = BTreeSet::new();
        note_exprs(also_observed, &mut refs);
        let mut exposed_by_alias: HashMap<String, bool> = HashMap::new();
        walk(plan, true, &mut refs, &mut exposed_by_alias);
        let refs = Arc::new(refs);
        let per_alias = exposed_by_alias
            .into_iter()
            .map(|(alias, exposed)| {
                let cols = if exposed {
                    ScanCols::All
                } else {
                    ScanCols::Names(refs.clone())
                };
                (alias, cols)
            })
            .collect();
        ScanColumnMap { per_alias }
    }

    /// The needs of scan `alias` (unknown aliases keep every column).
    pub fn needs(&self, alias: &str) -> ScanCols {
        self.per_alias.get(alias).cloned().unwrap_or(ScanCols::All)
    }

    /// Resolve the needs of `alias` against its (alias-qualified) scan
    /// schema: `None` = gather all columns, `Some(indices)` = gather exactly
    /// those (ascending schema order).
    pub fn project_indices(&self, alias: &str, schema: &Schema) -> Option<Vec<usize>> {
        let names = match self.needs(alias) {
            ScanCols::All => return None,
            ScanCols::Names(names) => names,
        };
        let indices: Vec<usize> = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| names.iter().any(|n| f.matches(n)))
            .map(|(i, _)| i)
            .collect();
        if indices.len() == schema.fields().len() {
            None
        } else {
            Some(indices)
        }
    }
}

fn note_exprs<'a>(exprs: impl IntoIterator<Item = &'a sa_expr::Expr>, refs: &mut BTreeSet<String>) {
    for e in exprs {
        for name in e.columns_used() {
            refs.insert(name.to_string());
        }
    }
}

fn walk(
    plan: &LogicalPlan,
    exposed: bool,
    refs: &mut BTreeSet<String>,
    out: &mut HashMap<String, bool>,
) {
    match plan {
        LogicalPlan::Scan { alias, .. } => {
            // A relation scanned in several positions (union branches) keeps
            // every column as soon as any position exposes its schema.
            let e = out.entry(alias.clone()).or_insert(false);
            *e = *e || exposed;
        }
        LogicalPlan::Sample { input, .. } => walk(input, exposed, refs, out),
        LogicalPlan::Filter { predicate, input } => {
            note_exprs([predicate], refs);
            walk(input, exposed, refs, out);
        }
        LogicalPlan::Join {
            condition,
            left,
            right,
        } => {
            note_exprs(condition.iter(), refs);
            walk(left, exposed, refs, out);
            walk(right, exposed, refs, out);
        }
        LogicalPlan::Project { exprs, input } => {
            note_exprs(exprs.iter().map(|(e, _)| e), refs);
            walk(input, false, refs, out);
        }
        LogicalPlan::Aggregate { aggs, input } => {
            note_exprs(aggs.iter().filter_map(|a| a.expr.as_ref()), refs);
            walk(input, false, refs, out);
        }
        LogicalPlan::UnionSamples { left, right } => {
            walk(left, exposed, refs, out);
            walk(right, exposed, refs, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggSpec;
    use sa_expr::{col, lit};
    use sa_sampling::SamplingMethod;
    use sa_storage::{DataType, Field};

    fn wide_schema(alias: &str, n: usize) -> Schema {
        Schema::new(
            (0..n)
                .map(|i| Field::new(format!("c{i}"), DataType::Int))
                .collect(),
        )
        .unwrap()
        .qualify_all(alias)
    }

    #[test]
    fn aggregate_prunes_to_referenced_columns() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .filter(col("c3").gt(lit(0i64)))
            .aggregate(vec![AggSpec::sum(col("c1"), "s")]);
        let map = ScanColumnMap::analyze(&plan);
        let schema = wide_schema("t", 16);
        let idx = map.project_indices("t", &schema).expect("pruned");
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn bare_scan_root_keeps_all() {
        let plan = LogicalPlan::scan("t").filter(col("c0").gt(lit(0i64)));
        let map = ScanColumnMap::analyze(&plan);
        assert_eq!(map.needs("t"), ScanCols::All);
        assert_eq!(map.project_indices("t", &wide_schema("t", 4)), None);
    }

    #[test]
    fn project_hides_unreferenced_columns() {
        let plan = LogicalPlan::scan("t").project(vec![(col("c2"), "x".into())]);
        let map = ScanColumnMap::analyze(&plan);
        let idx = map.project_indices("t", &wide_schema("t", 5)).unwrap();
        assert_eq!(idx, vec![2]);
    }

    #[test]
    fn join_condition_counts_for_both_sides() {
        let plan = LogicalPlan::scan("a")
            .join_on(LogicalPlan::scan("b"), col("a.c0").eq(col("b.c1")))
            .aggregate(vec![AggSpec::sum(col("a.c2"), "s")]);
        let map = ScanColumnMap::analyze(&plan);
        assert_eq!(
            map.project_indices("a", &wide_schema("a", 8)).unwrap(),
            vec![0, 2]
        );
        assert_eq!(
            map.project_indices("b", &wide_schema("b", 8)).unwrap(),
            vec![1]
        );
    }

    #[test]
    fn qualified_names_do_not_leak_across_aliases() {
        // `a.c0` must not select column c0 of alias b; the bare `c1` matches
        // both sides (conservative).
        let plan = LogicalPlan::scan("a")
            .join_on(LogicalPlan::scan("b"), col("a.c0").eq(col("c1")))
            .aggregate(vec![AggSpec::count_star("n")]);
        let map = ScanColumnMap::analyze(&plan);
        assert_eq!(
            map.project_indices("b", &wide_schema("b", 4)).unwrap(),
            vec![1]
        );
    }

    #[test]
    fn count_star_needs_no_columns() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .aggregate(vec![AggSpec::count_star("n")]);
        let map = ScanColumnMap::analyze(&plan);
        let idx = map.project_indices("t", &wide_schema("t", 3)).unwrap();
        assert!(idx.is_empty(), "COUNT(*) observes no columns: {idx:?}");
    }

    #[test]
    fn all_columns_referenced_means_no_pruning() {
        let plan =
            LogicalPlan::scan("t").project(vec![(col("c0"), "a".into()), (col("c1"), "b".into())]);
        let map = ScanColumnMap::analyze(&plan);
        assert_eq!(map.project_indices("t", &wide_schema("t", 2)), None);
    }

    #[test]
    fn union_branches_share_alias_needs() {
        let b = |p: f64| {
            LogicalPlan::scan("t")
                .sample(SamplingMethod::Bernoulli { p })
                .filter(col("c1").gt(lit(0i64)))
        };
        let plan = b(0.5)
            .union_samples(b(0.25))
            .aggregate(vec![AggSpec::sum(col("c1"), "s")]);
        let map = ScanColumnMap::analyze(&plan);
        assert_eq!(
            map.project_indices("t", &wide_schema("t", 6)).unwrap(),
            vec![1]
        );
    }

    #[test]
    fn unknown_alias_defaults_to_all() {
        let map = ScanColumnMap::default();
        assert_eq!(map.needs("nope"), ScanCols::All);
    }
}
